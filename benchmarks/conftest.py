"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure at the configured
:class:`ExperimentScale` (env ``REPRO_SCALE`` / ``REPRO_SEEDS``),
prints the resulting rows/series, and writes them under
``benchmarks/out/`` so EXPERIMENTS.md can reference the artifacts.

Seed sweeps inside the figure modules go through ``run_many``, which
honours the ``REPRO_WORKERS`` knob — ``REPRO_WORKERS=4 pytest
benchmarks/`` fans each sweep over four worker processes with results
bit-identical to serial (docs/PERF.md).
"""

import pathlib

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.parallel import resolve_workers

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The session's experiment scale (env-configurable)."""
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def workers() -> int:
    """The session's worker count (env ``REPRO_WORKERS``; 1 = serial)."""
    return resolve_workers()


@pytest.fixture(scope="session", autouse=True)
def _report_workers(workers):
    """Surface the effective worker count in the benchmark header so
    recorded timings are never compared across unequal fan-outs by
    accident."""
    print(f"\n[benchmarks: REPRO_WORKERS resolved to {workers}]")


@pytest.fixture(scope="session")
def artifact():
    """Writer for rendered figure text: artifact(name, text)."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return write


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
