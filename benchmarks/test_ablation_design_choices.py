"""Ablations of T-Chain's design choices (DESIGN.md §5).

Each ablation switches off (or sweeps) one mechanism and measures
what the paper says it buys:

* flow-control window k (paper fixes k = 2): balances smoothing vs
  overload; the system must work across k;
* opportunistic seeding: keeps upload capacity busy under churn;
* indirect reciprocity: rescues asymmetric-interest meetings;
* newcomer both-need bootstrapping: cheap entry without altruism.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.experiments.runner import run_many, seeds_for


def _mct(scale, label, **kwargs):
    seeds = seeds_for(label, scale.root_seed, scale.seeds)
    results = run_many(seeds, protocol="tchain", leechers=40,
                       pieces=24, **kwargs)
    mct = summarize([r.mean_completion_time() for r in results])
    rate = sum(r.completion_rate("leecher")
               for r in results) / len(results)
    return mct.mean if mct else float("nan"), rate


def test_ablation_flow_control_k(benchmark, scale, artifact):
    def run():
        return {k: _mct(scale, f"abl-k/{k}", flow_control_k=k)
                for k in (1, 2, 4, 8)}

    by_k = run_once(benchmark, run)
    artifact("ablation_flow_k", format_table(
        ["k", "mean completion (s)", "completion rate"],
        [(k, v[0], v[1]) for k, v in sorted(by_k.items())],
        title="Ablation: flow-control window k"))

    for k, (mct, rate) in by_k.items():
        assert rate == 1.0, f"k={k} broke completion"
    # The paper's k=2 is within 35 % of the best k.
    best = min(v[0] for v in by_k.values())
    assert by_k[2][0] <= 1.35 * best


def test_ablation_mechanism_switches(benchmark, scale, artifact):
    def run():
        return {
            "full": _mct(scale, "abl-full"),
            "no opportunistic seeding":
                _mct(scale, "abl-noos", opportunistic_seeding=False),
            "direct reciprocity only":
                _mct(scale, "abl-direct", indirect_reciprocity=False),
            "no newcomer bootstrap rule":
                _mct(scale, "abl-noboot", newcomer_bootstrap=False),
        }

    variants = run_once(benchmark, run)
    artifact("ablation_mechanisms", format_table(
        ["variant", "mean completion (s)", "completion rate"],
        [(name, v[0], v[1]) for name, v in variants.items()],
        title="Ablation: T-Chain mechanism switches"))

    # Everything still completes (robustness)...
    for name, (mct, rate) in variants.items():
        assert rate == 1.0, name
    # ...and the full design is at least as fast as the no-
    # opportunistic-seeding variant (it exists to fill idle capacity).
    full = variants["full"][0]
    assert full <= 1.1 * variants["no opportunistic seeding"][0]
    # Dropping indirect reciprocity may not beat the full design by
    # much either (it exists for asymmetric interests).
    assert full <= 1.35 * variants["direct reciprocity only"][0]
