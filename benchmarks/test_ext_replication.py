"""Extension benchmark: replica preservation (Sec. VI).

Shape checks: with everyone compliant, both altruistic hosting and
T-Chain reach high durability; with 30 % free-riders, altruistic
hosting hands them durable replicas at honest peers' expense while
T-Chain gives them none — and honest durability under T-Chain holds
up.  Over a long horizon, churn destroys free-riders' unreplicated
objects, the preservation incentive with teeth.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.replication import ReplicationConfig, ReplicationSystem


def _run(mode, fraction, seed, duration=1200.0):
    config = ReplicationConfig(mode=mode, freerider_fraction=fraction,
                               duration_s=duration, seed=seed)
    return ReplicationSystem(config).run()


def test_replication_extension(benchmark, scale, artifact):
    def run():
        seed = scale.root_seed
        return {
            ("altruistic", 0.0): _run("altruistic", 0.0, seed),
            ("altruistic", 0.3): _run("altruistic", 0.3, seed),
            ("tchain", 0.0): _run("tchain", 0.0, seed),
            ("tchain", 0.3): _run("tchain", 0.3, seed),
        }

    reports = run_once(benchmark, run)
    artifact("ext_replication", format_table(
        ["scheme", "free-riders", "compliant durability",
         "compliant replication", "FR durability", "objects lost"],
        [(mode, f"{fr:.0%}", r.compliant_durability,
          r.mean_compliant_replication, r.freerider_durability,
          r.objects_lost)
         for (mode, fr), r in reports.items()],
        title="Replica preservation under churn (Sec. VI extension)"))

    # Clean networks: both schemes preserve compliant data well.
    assert reports[("altruistic", 0.0)].compliant_durability > 0.85
    assert reports[("tchain", 0.0)].compliant_durability > 0.8

    # Free-riders: durable replicas under altruism, none under T-Chain.
    assert reports[("altruistic", 0.3)].freerider_durability > 0.5
    assert reports[("tchain", 0.3)].freerider_durability == 0.0

    # Honest durability under attack: T-Chain at least matches the
    # altruistic scheme (whose capacity free-riders consume).
    assert reports[("tchain", 0.3)].compliant_durability >= \
        0.95 * reports[("altruistic", 0.3)].compliant_durability

    # Churn destroys only the non-reciprocators' objects over time.
    assert reports[("tchain", 0.3)].objects_lost >= \
        reports[("tchain", 0.0)].objects_lost
