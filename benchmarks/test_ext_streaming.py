"""Extension benchmark: streaming QoE (the paper's Sec. VI direction).

Shape checks: viewers finish playback with high continuity under both
protocols when everyone is compliant; with 30 % free-riders in the
audience T-Chain's continuity holds up (its incentives protect the
playhead); and the sliding-window policy beats plain LRF on stalls —
the design choice that makes streaming viable at all.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.attacks import FreeRiderOptions, make_freerider
from repro.bt.config import SwarmConfig
from repro.bt.protocols import PROTOCOLS
from repro.bt.swarm import Swarm
from repro.streaming import make_streaming, streaming_metrics
from repro.streaming.peers import StreamingConfig
from repro.workloads.arrivals import flash_crowd, schedule_arrivals

VIEWERS = 24
PIECES = 36
PLAYBACK = StreamingConfig(piece_duration_s=1.5, startup_buffer=3,
                           window=8)
NO_WINDOW = StreamingConfig(piece_duration_s=1.5, startup_buffer=3,
                            window=0)


def _run(protocol, fraction, seed, playback=PLAYBACK):
    config = SwarmConfig(n_pieces=PIECES, piece_size_kb=64.0,
                         seed=seed)
    swarm = Swarm(config)
    seeder_cls, leecher_cls = PROTOCOLS[protocol]
    seeder_cls(swarm).join()
    viewer_cls = make_streaming(leecher_cls, playback)
    freerider_cls = make_freerider(leecher_cls, FreeRiderOptions())
    viewers = []

    def viewer_factory():
        viewer = viewer_cls(swarm)
        viewers.append(viewer)
        return viewer

    n_free = round(fraction * VIEWERS)
    factories = [viewer_factory] * (VIEWERS - n_free) \
        + [lambda: freerider_cls(swarm)] * n_free
    swarm.sim.rng.shuffle(factories)
    schedule_arrivals(swarm, flash_crowd(factories, swarm.sim.rng))
    swarm.run(max_time=3000.0)
    return streaming_metrics(viewers, swarm.sim.now)


def test_streaming_qoe(benchmark, scale, artifact):
    def run():
        seed = scale.root_seed
        return {
            ("bittorrent", 0.0): _run("bittorrent", 0.0, seed),
            ("bittorrent", 0.3): _run("bittorrent", 0.3, seed),
            ("tchain", 0.0): _run("tchain", 0.0, seed),
            ("tchain", 0.3): _run("tchain", 0.3, seed),
            ("tchain-lrf", 0.0): _run("tchain", 0.0, seed,
                                      playback=NO_WINDOW),
        }

    reports = run_once(benchmark, run)
    artifact("ext_streaming", format_table(
        ["scenario", "free-riders", "finished", "startup (s)",
         "stalls", "continuity"],
        [(name, f"{fr:.0%}", f"{r.finished}/{r.viewers}",
          r.mean_startup_s, r.mean_stalls, r.mean_continuity)
         for (name, fr), r in reports.items()],
        title="Streaming QoE (Sec. VI extension)"))

    # Everyone finishes playback in every scenario.
    for report in reports.values():
        assert report.finished == report.viewers

    # Compliant-audience continuity is high for both protocols.
    assert reports[("bittorrent", 0.0)].mean_continuity > 0.85
    assert reports[("tchain", 0.0)].mean_continuity > 0.85

    # T-Chain holds continuity under a 30% free-riding audience.
    assert reports[("tchain", 0.3)].mean_continuity > 0.8

    # The sliding window earns its keep on *startup latency*: without
    # it LRF effectively downloads the bulk of the file before the
    # first pieces happen to be contiguous (few stalls, but the viewer
    # waits much longer to press play).
    assert reports[("tchain", 0.0)].mean_startup_s < \
        reports[("tchain-lrf", 0.0)].mean_startup_s
    # And stalls stay bounded: under 10% of the stream duration.
    stream_s = PIECES * PLAYBACK.piece_duration_s
    assert reports[("tchain", 0.0)].mean_stall_time_s < 0.1 * stream_s
