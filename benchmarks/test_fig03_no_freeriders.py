"""Figure 3: completion time and uplink utilization, no free-riders.

Shape checks (paper Sec. IV-B): every protocol completes near the
fluid optimum; times stay roughly flat across swarm sizes
(scalability); T-Chain's uplink utilization is at least on par with
BitTorrent's and its completion times are competitive.
"""

from conftest import run_once

from repro.analysis.charts import line_plot
from repro.experiments import fig3


def test_fig3_completion_and_utilization(benchmark, scale, artifact):
    rows = run_once(benchmark, lambda: fig3.run(scale))
    protocols = sorted({r.protocol for r in rows})
    series = [
        (protocol, [(r.swarm_size, r.mean_completion_s)
                    for r in rows if r.protocol == protocol])
        for protocol in protocols
    ]
    artifact("fig03", fig3.render(rows) + "\n\n" + line_plot(
        series, title="Fig. 3(a) (plot)", x_label="swarm size",
        y_label="mean completion (s)"))

    mct = fig3.mean_by_protocol(rows, "mean_completion_s")
    util = fig3.mean_by_protocol(rows, "mean_utilization")

    # Everyone finishes in sane time: within 12x of optimal.
    for row in rows:
        assert row.mean_completion_s <= 12.0 * row.optimal_s
        assert row.mean_completion_s >= 0.8 * row.optimal_s

    # T-Chain utilization >= BitTorrent's (the paper's Fig. 3(b)).
    assert util["tchain"] >= 0.9 * util["bittorrent"]

    # T-Chain completion competitive with BitTorrent (Fig. 3(a)).
    assert mct["tchain"] <= 1.25 * mct["bittorrent"]

    # Scalability: per-protocol completion roughly flat in swarm size
    # (largest within 2x of smallest).
    for protocol in {r.protocol for r in rows}:
        series = sorted([(r.swarm_size, r.mean_completion_s)
                         for r in rows if r.protocol == protocol])
        small, large = series[0][1], series[-1][1]
        assert large <= 2.5 * small
