"""Figure 4: file-size and swarm-size scaling of T-Chain.

Shape checks: completion time grows ~linearly with file size
(R² close to 1); completion time converges as the swarm grows
(largest swarm within a small factor of the mid-size ones) and small
seeder-dominated swarms are fastest.
"""

from conftest import run_once

from repro.experiments import fig4


def test_fig4_file_and_swarm_size(benchmark, scale, artifact):
    def both():
        return fig4.run_file_size(scale), fig4.run_swarm_size(scale)

    file_rows, swarm_rows = run_once(benchmark, both)
    artifact("fig04", fig4.render(file_rows, swarm_rows))

    # (a) linear growth with file size.
    assert fig4.linearity_r2(file_rows) >= 0.9
    times = [r.mean_completion_s for r in file_rows]
    assert times == sorted(times)  # monotone in file size

    # (b) convergence: the two largest swarms differ by < 50 %.
    swarm_rows.sort(key=lambda r: r.swarm_size)
    last, prev = swarm_rows[-1], swarm_rows[-2]
    assert last.mean_completion_s <= 1.5 * prev.mean_completion_s

    # (b) seeder-dominated small swarms complete fastest.
    assert swarm_rows[0].mean_completion_s <= \
        min(r.mean_completion_s for r in swarm_rows[2:])
