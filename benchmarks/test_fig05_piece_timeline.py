"""Figure 5: per-piece encrypted/decrypted timelines.

Shape checks: the slow (lowest-capacity) leecher's decryption keys
lag its encrypted pieces more than the fast leecher's do — the
decrypted line's slope is bound by the leecher's own upload rate
(reciprocation), the encrypted line's by its neighbors'.
"""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_piece_timelines(benchmark, scale, artifact):
    timelines = run_once(benchmark, lambda: fig5.run(scale))
    artifact("fig05", fig5.render(timelines))

    slow, fast = timelines["slow"], timelines["fast"]
    assert slow.capacity_kbps < fast.capacity_kbps

    # Both received and eventually decrypted pieces.
    assert len(slow.encrypted) > 0 and len(slow.decrypted) > 0
    assert len(fast.encrypted) > 0 and len(fast.decrypted) > 0

    # Keys never precede their count of encrypted arrivals by much:
    # decrypted count at any time <= encrypted count + terminations.
    # (Checked via cumulative monotonicity.)
    for tl in (slow, fast):
        counts = [c for _, c in tl.decrypted]
        assert counts == sorted(counts)

    # The slow leecher's key lag dominates the fast one's (Fig. 5(a)
    # vs 5(b): the 400 Kbps leecher's lines diverge).
    assert slow.mean_key_lag_s() >= 0.8 * fast.mean_key_lag_s()
