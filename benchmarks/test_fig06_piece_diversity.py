"""Figure 6: piece diversity (crawler) and initial-piece effects.

Shape checks: (a) neighbors differ in a substantial fraction of
pieces throughout the swarm's life (the paper's 612/2808 ≈ 22 %
average), so chains can always grow; (b) completion time falls
monotonically (≈ linearly) as leechers start with more pre-seeded
pieces, vanishing at 100 %.
"""

from conftest import run_once

from repro.experiments import fig6
from repro.experiments.config import ExperimentScale


def test_fig6_diversity_and_initial_pieces(benchmark, scale, artifact):
    def both():
        return fig6.run_crawler(scale), fig6.run_initial_pieces(scale)

    samples, rows = run_once(benchmark, both)
    n_pieces = ExperimentScale.pieces(scale, fig6.BASE_PIECES_A)
    artifact("fig06", fig6.render(samples, rows, n_pieces))

    # (a) pairs differ in a healthy share of pieces mid-swarm.
    assert samples
    peak = max(s.mean_difference for s in samples)
    assert peak >= 0.15 * n_pieces

    # (b) more initial pieces -> faster completion, ~0 at 100 %.
    times = [r.mean_completion_s for r in rows]
    assert all(b <= a * 1.15 for a, b in zip(times, times[1:]))
    assert times[-1] <= 0.25 * times[0]
