"""Figure 7: 25 % free-riders with large-view + whitewashing.

Shape checks (paper Sec. IV-C): free-riders complete their downloads
under BitTorrent, PropShare and FairTorrent but not a single one
completes under T-Chain; compliant T-Chain leechers are protected —
their slowdown against the no-free-rider baseline stays well below
the worst baseline's.
"""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_freeriding(benchmark, scale, artifact):
    rows = run_once(benchmark, lambda: fig7.run(scale))
    artifact("fig07", fig7.render(rows))

    by_protocol = {}
    for row in rows:
        by_protocol.setdefault(row.protocol, []).append(row)

    # (b) free-riders succeed against every baseline...
    for protocol in ("bittorrent", "propshare", "fairtorrent"):
        rates = [r.freerider_completion_rate
                 for r in by_protocol[protocol]]
        assert sum(rates) / len(rates) > 0.5, protocol

    # ...and never against T-Chain (no T-Chain line in Fig. 7(b)).
    for row in by_protocol["tchain"]:
        assert row.freerider_completion_rate == 0.0
        assert row.freerider_completion_s is None

    # (a) compliant leechers still finish everywhere in sane time.
    for row in rows:
        assert row.compliant_completion_s > 0

    # (a) T-Chain compliant times competitive with the baselines.
    tchain_mean = sum(r.compliant_completion_s
                      for r in by_protocol["tchain"]) / \
        len(by_protocol["tchain"])
    bt_mean = sum(r.compliant_completion_s
                  for r in by_protocol["bittorrent"]) / \
        len(by_protocol["bittorrent"])
    assert tchain_mean <= 1.3 * bt_mean
