"""Figure 8: collusion against T-Chain.

Shape checks (paper Sec. IV-D): with false reception reports,
colluding free-riders *can* decrypt pieces — unlike Fig. 7's
free-riders — but completing the file remains impractical: wherever
they do finish they are a large multiple slower than compliant
leechers (the paper reports ~40× at swarm 1000, dominated by the
seeder-bound trickle; the multiple grows with scale), and under every
baseline plain free-riders do far better than colluders do under
T-Chain.  Compliant T-Chain leechers are barely affected relative to
Fig. 7.
"""

from conftest import run_once

from repro.experiments import fig7, fig8


def test_fig8_collusion(benchmark, scale, artifact):
    rows = run_once(benchmark, lambda: fig8.run(scale))
    artifact("fig08", fig8.render(rows))

    tchain_rows = [r for r in rows if r.protocol == "tchain"]

    # Collusion buys decryption progress (unlike Fig. 7)...
    mean_progress = sum(r.freerider_progress for r in tchain_rows) \
        / len(tchain_rows)
    assert mean_progress > 0.2

    # ...but not practical downloads: where colluders finish they are
    # much slower than compliant leechers, and overall they complete
    # far less reliably than baseline free-riders do.
    finished = [r for r in tchain_rows
                if r.freerider_completion_s is not None]
    for row in finished:
        # Mean-over-finishers is biased toward the luckiest colluders
        # (few finish at all — see the rate check below), so only the
        # weak ordering is scale-robust here; the big multiples emerge
        # with swarm size as the seeder-bound trickle dominates.
        assert row.freerider_completion_s >= \
            row.compliant_completion_s
    tchain_rate = sum(r.freerider_completion_rate
                      for r in tchain_rows) / len(tchain_rows)
    for protocol in ("bittorrent", "propshare", "fairtorrent"):
        base_rows = [r for r in rows if r.protocol == protocol]
        base_rate = sum(r.freerider_completion_rate
                        for r in base_rows) / len(base_rows)
        assert base_rate >= tchain_rate + 0.3, protocol

    # Compliant leechers' times stay sane under collusion.
    for row in tchain_rows:
        assert row.compliant_completion_s > 0
        assert row.compliant_completion_s <= \
            5.0 * min(r.compliant_completion_s for r in rows
                      if r.swarm_size == row.swarm_size)
