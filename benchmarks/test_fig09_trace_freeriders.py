"""Figure 9: compliant completion vs free-rider share, trace arrivals.

Shape checks: all methods are comparable at 0 % free-riders; as the
share grows, T-Chain's compliant completion time stays nearly flat
while the baselines degrade — at 50 % the worst baseline is a clear
multiple of T-Chain.
"""

from conftest import run_once

from repro.analysis.charts import line_plot
from repro.experiments import fig9


def test_fig9_trace_freeriders(benchmark, scale, artifact):
    rows = run_once(benchmark, lambda: fig9.run(scale))
    series = [
        (protocol,
         [(r.freerider_fraction * 100, r.compliant_completion_s)
          for r in rows if r.protocol == protocol])
        for protocol in fig9.PROTOCOLS
    ]
    artifact("fig09", fig9.render(rows) + "\n\n" + line_plot(
        series, title="Fig. 9 (plot)", x_label="free-rider %",
        y_label="compliant completion (s)"))

    # Comparable starting points at 0 % free-riders.
    base = {p: fig9.value(rows, p, 0.0) for p in fig9.PROTOCOLS}
    for protocol, value in base.items():
        assert value <= 2.0 * min(base.values()), protocol

    # T-Chain stays nearly flat up to 50 %.
    tchain_growth = fig9.value(rows, "tchain", 0.5) / base["tchain"]
    assert tchain_growth <= 2.0

    # The baselines degrade more than T-Chain does.
    for protocol in ("bittorrent", "propshare", "fairtorrent"):
        growth = fig9.value(rows, protocol, 0.5) / base[protocol]
        assert growth >= tchain_growth * 0.9, protocol

    # At 50 % free-riders T-Chain beats every baseline outright.
    tchain_50 = fig9.value(rows, "tchain", 0.5)
    for protocol in ("bittorrent", "propshare", "fairtorrent"):
        assert fig9.value(rows, protocol, 0.5) >= tchain_50, protocol
