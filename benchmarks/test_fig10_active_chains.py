"""Figure 10: active chains over time.

Shape checks: under a flash crowd the chain count climbs well above
its starting level, then collapses as leechers finish and depart
(termination tracks departure); under the continuous trace the chain
count moves with the active-leecher count.
"""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_active_chains(benchmark, scale, artifact):
    def both():
        return (fig10.run(scale, arrival="flash"),
                fig10.run(scale, arrival="trace"))

    flash, trace = run_once(benchmark, both)
    artifact("fig10", fig10.render(flash, trace))

    # (a) chains ramp up then die with the swarm.
    assert flash.peak_chains() >= 5
    assert flash.chains_at_end() <= 0.2 * flash.peak_chains()

    # (a) the peak occurs while leechers are still present.
    peak_time = max(flash.samples, key=lambda s: s[1])[0]
    last_time = flash.samples[-1][0]
    assert peak_time < last_time

    # (b) chains and leechers correlate positively over the trace.
    chains = [c for _, c, _ in trace.samples]
    leechers = [l for _, _, l in trace.samples]
    assert _pearson(chains, leechers) > 0.3


def _pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / (sxx * syy) ** 0.5
