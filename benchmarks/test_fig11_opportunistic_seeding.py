"""Figure 11: opportunistic seeding.

Shape checks: (a) in a flash crowd, leechers initiate a burst of
chains early (the seeder alone cannot feed the crowd) and the
leecher-initiated rate then falls off — most late chains come from
reciprocation, not initiation; (b) under the trace, the fraction of
opportunistically-created chains grows with the free-rider share.
"""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_opportunistic_seeding(benchmark, scale, artifact):
    def both():
        return (fig11.run_cumulative(scale),
                fig11.run_opportunistic_fraction(scale))

    cumulative, rows = run_once(benchmark, both)
    artifact("fig11", fig11.render(cumulative, rows))

    # (a) leechers do initiate chains...
    seeder_total, leecher_total = cumulative.final_counts()
    assert leecher_total > 0
    assert seeder_total > 0

    # ...mostly early: at least half of all leecher-initiated chains
    # exist by the first third of the run.
    samples = cumulative.samples
    third = samples[max(1, len(samples) // 3)]
    assert third[2] >= 0.3 * leecher_total

    # (b) opportunistic share grows with the free-rider share.
    shares = [r.opportunistic_fraction for r in rows]
    assert shares[-1] > shares[0]
    assert shares[-1] >= max(shares) * 0.6  # roughly increasing
