"""Figure 12: fairness-factor CDFs.

Shape checks: with no free-riders all four protocols produce tight
fairness distributions; with 25 % free-riders T-Chain's distribution
stays tight (steep CDF near 1) while the baselines spread out —
T-Chain's p10–p90 spread is the smallest of the four.
"""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_fairness(benchmark, scale, artifact):
    curves = run_once(benchmark, lambda: fig12.run(scale))
    artifact("fig12", fig12.render(curves))

    clean = {c.protocol: c for c in curves[0.0]}
    attacked = {c.protocol: c for c in curves[0.25]}

    # Everyone produced data.
    for c in list(clean.values()) + list(attacked.values()):
        assert len(c.factors) > 5, c.protocol

    # (a) no free-riders: medians in a sane band around 1 (allowing
    # the seeder's contribution to lift them).
    for c in clean.values():
        assert 0.6 <= c.median() <= 2.5, c.protocol

    # (b) under attack T-Chain has the tightest distribution.
    tchain_spread = attacked["tchain"].spread()
    for protocol in ("bittorrent", "propshare", "fairtorrent"):
        assert tchain_spread <= attacked[protocol].spread() * 1.1, \
            protocol

    # T-Chain's spread should not blow up under attack.
    assert tchain_spread <= 2.5 * max(clean["tchain"].spread(), 0.2)
