"""Figure 13: small files under replacement churn.

Shape checks: with very few pieces and no free-riders T-Chain's
throughput beats the choking-based baselines (forced reciprocation
vs no reciprocation opportunities); with 50 % free-riders T-Chain
wins across file sizes; and Random BitTorrent is competitive without
free-riders but collapses with them.
"""

from conftest import run_once

from repro.analysis.charts import line_plot
from repro.experiments import fig13


def test_fig13_small_files(benchmark, scale, artifact):
    rows = run_once(benchmark, lambda: fig13.run(scale))
    plots = []
    for fraction in sorted({r.freerider_fraction for r in rows}):
        series = [
            (protocol,
             [(r.n_pieces, r.mean_throughput_kbps) for r in rows
              if r.protocol == protocol
              and r.freerider_fraction == fraction])
            for protocol in fig13.PROTOCOLS
        ]
        plots.append(line_plot(
            series,
            title=f"Fig. 13 (plot, {int(fraction * 100)}% "
                  f"free-riders)",
            x_label="pieces", y_label="throughput (Kbps)"))
    artifact("fig13", fig13.render(rows) + "\n\n"
             + "\n\n".join(plots))

    def v(protocol, pieces, fraction):
        return fig13.value(rows, protocol, pieces, fraction)

    # Tiny files, no free-riders: T-Chain above BitTorrent/PropShare.
    for pieces in (1, 2, 3):
        assert v("tchain", pieces, 0.0) >= \
            0.9 * v("bittorrent", pieces, 0.0), pieces
        assert v("tchain", pieces, 0.0) >= \
            0.9 * v("propshare", pieces, 0.0), pieces

    # 50 % free-riders: T-Chain strictly dominates for very small
    # files (the regime the paper's argument centers on — forced
    # reciprocation is the only thing that works when there is almost
    # nothing to trade)...
    for pieces in (1, 2):
        tchain = v("tchain", pieces, 0.5)
        for protocol in ("random", "bittorrent", "propshare",
                         "fairtorrent"):
            assert tchain >= v(protocol, pieces, 0.5), \
                (pieces, protocol)
    for pieces in (3,):
        tchain = v("tchain", pieces, 0.5)
        for protocol in ("random", "bittorrent", "propshare",
                         "fairtorrent"):
            assert tchain >= 0.9 * v(protocol, pieces, 0.5), \
                (pieces, protocol)
    # ...and stays at-or-near the best everywhere else.  (The paper
    # reports strict wins at all sizes; at bench scale the seeder is a
    # large capacity share and props the baselines up mid-range.)
    wins = 0
    comparisons = 0
    for pieces in fig13.PIECE_COUNTS:
        tchain = v("tchain", pieces, 0.5)
        for protocol in ("random", "bittorrent", "propshare",
                         "fairtorrent"):
            comparisons += 1
            if tchain >= 0.9 * v(protocol, pieces, 0.5):
                wins += 1
    assert wins >= 0.6 * comparisons

    # Free-riders hurt Random BitTorrent much more than T-Chain.
    random_drop = v("random", 10, 0.5) / max(v("random", 10, 0.0), 1.0)
    tchain_drop = v("tchain", 10, 0.5) / max(v("tchain", 10, 0.0), 1.0)
    assert tchain_drop >= random_drop
