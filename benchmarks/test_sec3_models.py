"""Section III analytical results: bootstrapping dynamics (Fig. 2 /
Propositions III.1–III.2), collusion probability (Sec. III-A4), and
the overhead accounting (Sec. III-C) with the real cipher.
"""

from conftest import run_once

from repro.analysis.reporting import format_series, format_table
from repro.models import (
    BitTorrentLikeModel,
    OverheadModel,
    TChainModel,
    collusion_success_probability,
    measure_encryption_rate,
    proposition_iii1_holds,
    proposition_iii2_holds,
    simulate_collusion_probability,
)


def test_sec3b_bootstrap_dynamics(benchmark, artifact):
    """Flash-crowd bootstrapping: T-Chain's un-bootstrapped count
    falls faster than BitTorrent's under the paper's parameters."""
    n, x0, steps = 500, 400.0, 40

    def run():
        bt = BitTorrentLikeModel(n=n, delta=0.2).trajectory(x0, steps)
        tc = TChainModel(n=n, k_chains=2.0,
                         n_pieces=100).trajectory(x0, steps)
        return bt, tc

    bt, tc = run_once(benchmark, run)
    text = format_series(
        "Sec. III-B un-bootstrapped peers over time "
        "(n=500, flash crowd of 400)",
        [(t, f"BT {bt[t].unbootstrapped:.1f}  "
             f"T-Chain {tc[t].unbootstrapped:.1f}")
         for t in range(0, steps + 1, 4)],
        x_label="timeslot", y_label="x+y")
    artifact("sec3b_bootstrap", text)

    # T-Chain bootstraps faster while a meaningful fraction is still
    # un-bootstrapped (Proposition III.1's flash-crowd regime).  At
    # K=2, n_pieces=100 the long-term condition Kω″ > δ does NOT hold
    # (2·0.046 < 0.2), so once both curves approach zero the
    # BitTorrent-like model may edge ahead — exactly what
    # Proposition III.2's condition predicts.
    for t in (5, 10, 20):
        assert tc[t].unbootstrapped <= bt[t].unbootstrapped
    crossover_floor = 0.01 * x0
    for t in range(steps):
        if tc[t].unbootstrapped > crossover_floor:
            assert tc[t + 1].unbootstrapped <= \
                bt[t + 1].unbootstrapped * 1.05

    # The propositions' sufficient conditions at the paper's example
    # parameters.
    assert proposition_iii1_holds(n=n, x_t=x0, y_t=0.0, x_b=x0,
                                  k_chains=2.0, delta=0.2,
                                  n_pieces=100)
    # III.2 holds once K is large enough for Kω″ > δ(1−ν)/(1−μ)...
    assert proposition_iii2_holds(n=n, mu=0.2, nu=0.6, k_chains=10.0,
                                  delta=0.2, n_pieces=100)
    # ...and fails at K=2 with these piece counts, matching the
    # trajectory crossover observed above.
    assert not proposition_iii2_holds(n=n, mu=0.2, nu=0.2,
                                      k_chains=2.0, delta=0.2,
                                      n_pieces=100)


def test_sec3a_collusion_probability(benchmark, artifact):
    """P_s is negligible for small colluder sets and the closed form
    matches Monte Carlo."""
    params = [(1000, m, 50) for m in (2, 5, 10, 25, 50, 100)]

    def run():
        return [(m, collusion_success_probability(n, m, b),
                 simulate_collusion_probability(n, m, b, trials=30000))
                for n, m, b in params]

    rows = run_once(benchmark, run)
    artifact("sec3a_collusion", format_table(
        ["colluders m", "closed-form P_s", "Monte Carlo"],
        rows, title="Sec. III-A4 collusion success probability "
                    "(N=1000, b=50)"))

    for m, closed, mc in rows:
        assert closed <= (m / 1000.0) ** 2 * 1.01
        assert mc <= closed * 2.0 + 2e-3
    # m=10 of 1000: well under 1e-3 (the paper's "very small").
    assert dict((m, c) for m, c, _ in rows)[10] < 1e-3


def test_sec3c_overhead(benchmark, artifact):
    """Encryption, report and space overheads are all tiny; the
    measured cipher rate keeps the encryption overhead in the same
    regime the paper reports (< a few percent of transfer time)."""
    def run():
        rate = measure_encryption_rate(piece_kb=128, repetitions=3)
        model = OverheadModel(cipher_rate_kb_per_s=rate)
        return rate, model

    rate, model = run_once(benchmark, run)
    paper_model = OverheadModel()  # paper-reported cipher speed
    artifact("sec3c_overhead", format_table(
        ["quantity", "value"],
        [("measured cipher rate (KB/s)", rate),
         ("encryption overhead (measured cipher)",
          model.encryption_overhead),
         ("encryption overhead (paper cipher)",
          paper_model.encryption_overhead),
         ("space overhead", model.space_overhead),
         ("report+key bytes per piece fraction",
          model.report_overhead()),
         ("chain slots for 100 transactions",
          model.chain_completion_slots(100))],
        title="Sec. III-C overhead accounting"))

    assert paper_model.encryption_overhead < 0.012  # paper: <1.2 %
    assert model.space_overhead < 0.001             # paper: 0.02 %
    assert model.report_overhead() < 0.01
    # Our pure-Python cipher is slower than hardware AES, but the
    # overhead must stay within one order of magnitude of transfer.
    assert model.encryption_overhead < 10.0
