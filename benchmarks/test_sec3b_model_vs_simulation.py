"""Section III-B cross-validation: analytical model vs simulator.

The paper derives the bootstrapping comparison (T-Chain vs a
BitTorrent-like protocol) analytically and separately simulates whole
swarms, but never checks one against the other.  We can — in the
regime the model actually describes: *newcomers joining an
established swarm*, where BitTorrent spends only its optimistic share
δ on peers with no history while T-Chain's chains keep designating
un-bootstrapped peers as payees.

(A flash crowd is explicitly NOT that regime: with no upload history
anywhere, BitTorrent's rechoke fills all its slots randomly —
effectively δ ≈ 1 — and bootstraps newcomers at full speed.  The
model's premise, and hence its prediction, applies once an economy of
established reciprocators exists.)

Measured: first-usable-piece latency of a newcomer batch injected at
t = 60 s into a 40-leecher swarm, versus the model's
timeslots-to-bootstrap with the corresponding parameters.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.analysis.stats import mean, percentile
from repro.bt.protocols import PROTOCOLS
from repro.bt.swarm import Swarm
from repro.experiments.runner import build_config, seeds_for
from repro.models import BitTorrentLikeModel, TChainModel
from repro.workloads.arrivals import flash_crowd, schedule_arrivals

BASE_SWARM = 40
NEWCOMERS = 10
PIECES = 32
INJECT_AT_S = 60.0


def _late_newcomer_latencies(protocol, seed):
    config = build_config(protocol, pieces=PIECES, seed=seed)
    swarm = Swarm(config)
    seeder_cls, leecher_cls = PROTOCOLS[protocol]
    seeder_cls(swarm).join()
    base = [lambda: leecher_cls(swarm) for _ in range(BASE_SWARM)]
    schedule_arrivals(swarm, flash_crowd(base, swarm.sim.rng))
    newcomers = []

    def inject():
        swarm.note_arrival_happened()
        peer = leecher_cls(swarm)
        newcomers.append(peer)
        peer.join()

    for i in range(NEWCOMERS):
        swarm.note_arrival_scheduled()
        swarm.sim.schedule_at(INJECT_AT_S + 0.5 * i, inject)
    swarm.run(max_time=2500.0)
    return [peer.first_piece_at - peer.join_time
            for peer in newcomers if peer.first_piece_at is not None]


def test_model_vs_simulation_bootstrap_ordering(benchmark, scale,
                                                artifact):
    def run():
        out = {}
        for protocol in ("bittorrent", "tchain"):
            latencies = []
            for seed in seeds_for(f"sec3bx/{protocol}",
                                  scale.root_seed, scale.seeds):
                latencies.extend(
                    _late_newcomer_latencies(protocol, seed))
            out[protocol] = latencies
        return out

    latencies = run_once(benchmark, run)
    assert latencies["bittorrent"] and latencies["tchain"]

    # Model predictions: a small un-bootstrapped minority inside an
    # established population.
    n = BASE_SWARM + NEWCOMERS
    x0 = float(NEWCOMERS)
    bt_model = BitTorrentLikeModel(n=n, delta=0.2).trajectory(x0, 80)
    tc_model = TChainModel(n=n, k_chains=2.0,
                           n_pieces=PIECES).trajectory(x0, 80)

    def slots_to_half(states):
        for state in states:
            if state.unbootstrapped <= x0 / 2:
                return state.t
        return states[-1].t

    rows = [
        ("model: timeslots to bootstrap half the newcomers",
         slots_to_half(bt_model), slots_to_half(tc_model)),
        ("simulation: mean first-usable-piece latency (s)",
         mean(latencies["bittorrent"]), mean(latencies["tchain"])),
        ("simulation: median latency (s)",
         percentile(latencies["bittorrent"], 50),
         percentile(latencies["tchain"], 50)),
        ("simulation: p90 latency (s)",
         percentile(latencies["bittorrent"], 90),
         percentile(latencies["tchain"], 90)),
    ]
    artifact("sec3b_model_vs_sim", format_table(
        ["quantity", "bittorrent-like", "t-chain"], rows,
        title="Sec. III-B cross-validation "
              "(late newcomers into an established swarm)"))

    # The model's ordering: T-Chain bootstraps at least as fast.
    assert slots_to_half(tc_model) <= slots_to_half(bt_model)
    # The simulator agrees in the same regime.  Tolerance covers what
    # the model abstracts away: a T-Chain "bootstrap" costs two piece
    # transfers (encrypted receipt + reciprocation) before the key,
    # vs one for BitTorrent.
    assert mean(latencies["tchain"]) <= \
        2.0 * mean(latencies["bittorrent"])
    assert percentile(latencies["tchain"], 90) <= \
        2.0 * percentile(latencies["bittorrent"], 90)