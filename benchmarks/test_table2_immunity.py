"""Table II: the incentive-comparison matrix, measured.

Shape checks against the paper's verdicts: T-Chain measures *good*
on every attack column; BitTorrent is exploitable through altruism
and the large-view exploit; FairTorrent falls to whitewashing; and
every measured verdict lands within one grade of the paper's.
"""

from conftest import run_once

from repro.experiments import table2


def test_table2_immunity_matrix(benchmark, scale, artifact):
    table = run_once(benchmark, lambda: table2.run(scale))
    artifact("table2", table2.render(table))

    # T-Chain: good across all measured attack columns.
    for feature in ("exploiting altruism", "large-view exploit",
                    "whitewashing", "fairness"):
        assert table.verdict(feature, "tchain") == table2.GOOD, feature

    # Collusion: not free for T-Chain's colluders either — at worst
    # medium (paper: limited opportunities).
    assert table.verdict("collusion", "tchain") in (table2.GOOD,
                                                    table2.MEDIUM)

    # BitTorrent's altruism is exploitable.
    assert table.verdict("exploiting altruism", "bittorrent") \
        != table2.GOOD
    assert table.verdict("large-view exploit", "bittorrent") \
        != table2.GOOD

    # FairTorrent falls to whitewashing.
    assert table.verdict("whitewashing", "fairtorrent") != table2.GOOD

    # Overall agreement with the paper's matrix.
    agreeing = sum(1 for c in table.cells if c.agrees)
    assert agreeing >= 0.75 * len(table.cells)
