"""Table II, indirect-reciprocity columns: EigenTrust and Dandelion
versus T-Chain.

The paper's Table II credits reputation schemes (EigenTrust) with
immunity to altruism exploitation and the large-view exploit, but
marks them down for false praise and inflexible newcomer
bootstrapping; credit schemes (Dandelion) are fair but carry a
central server and a fixed bootstrap subsidy; T-Chain is good across
the board.  This benchmark measures those cells head-to-head:

* plain free-riders against EigenTrust survive on the 10 % newcomer
  budget; a false-praise ring fully rehabilitates them;
* plain free-riders against Dandelion starve on their grant, but
  whitewashing refreshes it and defeats the scheme;
* the same attackers against T-Chain stay starved either way.
"""

from conftest import run_once

from repro.analysis.reporting import format_table
from repro.attacks import FreeRiderOptions
from repro.experiments.runner import run_many, seeds_for

LEECHERS = 30
PIECES = 16


def _cell(scale, protocol, options, label):
    seeds = seeds_for(f"t2i/{label}/{protocol}", scale.root_seed,
                      scale.seeds)
    results = run_many(seeds, protocol=protocol, leechers=LEECHERS,
                       pieces=PIECES, freerider_fraction=0.25,
                       freerider_options=options, max_time=6000.0)
    fr_rate = sum(r.completion_rate("freerider")
                  for r in results) / len(results)
    fr_times = [r.mean_completion_time("freerider") for r in results]
    fr_times = [t for t in fr_times if t is not None]
    compliant = [r.mean_completion_time("leecher") for r in results]
    return {
        "fr_rate": fr_rate,
        "fr_time": (sum(fr_times) / len(fr_times)) if fr_times
        else None,
        "compliant": sum(t for t in compliant if t) / len(compliant),
    }


def test_table2_indirect_reciprocity(benchmark, scale, artifact):
    plain = FreeRiderOptions(large_view=True, whitewash=False)
    praise = FreeRiderOptions(large_view=True, whitewash=False,
                              collude=True)
    whitewash = FreeRiderOptions(large_view=True, whitewash=True)

    def run():
        return {
            ("eigentrust", "plain"): _cell(scale, "eigentrust", plain,
                                           "plain"),
            ("eigentrust", "false praise"): _cell(scale, "eigentrust",
                                                  praise, "praise"),
            ("dandelion", "plain"): _cell(scale, "dandelion", plain,
                                          "plain"),
            ("dandelion", "whitewash"): _cell(scale, "dandelion",
                                              whitewash, "whitewash"),
            ("tchain", "plain"): _cell(scale, "tchain", plain,
                                       "plain"),
            ("tchain", "false praise"): _cell(scale, "tchain", praise,
                                              "praise"),
            ("tchain", "whitewash"): _cell(scale, "tchain", whitewash,
                                           "whitewash"),
        }

    cells = run_once(benchmark, run)
    artifact("table2_indirect", format_table(
        ["protocol", "attack", "FR completion rate",
         "FR completion (s)", "compliant (s)"],
        [(proto, attack, c["fr_rate"], c["fr_time"], c["compliant"])
         for (proto, attack), c in cells.items()],
        title="Table II (indirect reciprocity): EigenTrust vs "
              "T-Chain under free-riding"))

    eigen_plain = cells[("eigentrust", "plain")]
    eigen_praise = cells[("eigentrust", "false praise")]
    tchain_plain = cells[("tchain", "plain")]
    tchain_praise = cells[("tchain", "false praise")]

    # EigenTrust: free-riders survive on the newcomer budget...
    assert eigen_plain["fr_rate"] > 0.5
    # ...and false praise makes the attack cheap (at least as fast as
    # without it).
    assert eigen_praise["fr_time"] is not None
    if eigen_plain["fr_time"] is not None:
        assert eigen_praise["fr_time"] <= 1.1 * eigen_plain["fr_time"]

    # Dandelion: unforgeable credit starves plain free-riders, but a
    # fresh identity refreshes the grant — whitewashing defeats the
    # fixed bootstrap subsidy (the paper's critique of such schemes).
    assert cells[("dandelion", "plain")]["fr_rate"] == 0.0
    assert cells[("dandelion", "whitewash")]["fr_rate"] > 0.5

    # T-Chain: plain free-riders never finish, the same praise ring
    # gains no purchase (no reputation aggregate to poison; only the
    # bounded collusion trickle remains), and whitewashing resets
    # nothing worth resetting.
    assert tchain_plain["fr_rate"] == 0.0
    assert tchain_praise["fr_rate"] <= 0.5
    assert cells[("tchain", "whitewash")]["fr_rate"] == 0.0

    # Compliant leechers stay functional in every cell.
    for cell in cells.values():
        assert cell["compliant"] > 0
