#!/usr/bin/env python3
"""The paper's analytical side (Section III), runnable.

* Bootstrapping dynamics (Sec. III-B): iterate the population models
  of Fig. 2 and watch T-Chain out-bootstrap a BitTorrent-like system
  after a flash crowd, exactly as Propositions III.1/III.2 predict.
* Collusion probability (Sec. III-A4): P_s for growing colluder sets,
  closed form vs Monte Carlo.
* Overhead (Sec. III-C): encryption/report/space overhead with both
  the paper's cipher speed and this machine's measured rate.

Run:  python examples/analytical_models.py
"""

from repro.analysis.reporting import format_series, format_table
from repro.models import (
    BitTorrentLikeModel,
    OverheadModel,
    TChainModel,
    collusion_success_probability,
    measure_encryption_rate,
    proposition_iii1_holds,
    simulate_collusion_probability,
)


def bootstrap_dynamics() -> None:
    n, x0, steps = 500, 400.0, 30
    bt = BitTorrentLikeModel(n=n, delta=0.2).trajectory(x0, steps)
    tc = TChainModel(n=n, k_chains=2.0, n_pieces=100).trajectory(
        x0, steps)
    print(format_series(
        "Sec. III-B: un-bootstrapped peers after a flash crowd "
        "(n=500, 400 newcomers)",
        [(t, f"BitTorrent-like {bt[t].unbootstrapped:6.1f}   "
             f"T-Chain {tc[t].unbootstrapped:6.1f}")
         for t in range(0, steps + 1, 3)],
        x_label="timeslot", y_label="x+y"))
    holds = proposition_iii1_holds(n=n, x_t=x0, y_t=0.0, x_b=x0,
                                   k_chains=2.0, delta=0.2,
                                   n_pieces=100)
    print(f"Proposition III.1 sufficient condition holds: {holds}\n")


def collusion_probability() -> None:
    rows = []
    for m in (2, 10, 50, 100, 250):
        closed = collusion_success_probability(1000, m, 50)
        mc = simulate_collusion_probability(1000, m, 50, trials=20000)
        rows.append((m, f"{closed:.3g}", f"{mc:.3g}"))
    print(format_table(
        ["colluders m", "P_s (closed form)", "P_s (Monte Carlo)"],
        rows,
        title="Sec. III-A4: collusion success probability "
              "(N=1000, b=50 neighbors)"))
    print()


def overhead() -> None:
    measured = measure_encryption_rate(piece_kb=128, repetitions=3)
    ours = OverheadModel(cipher_rate_kb_per_s=measured)
    paper = OverheadModel()  # the paper's 0.715 ms / 128 KB figure
    print(format_table(
        ["quantity", "paper cipher", "this machine"],
        [("cipher rate (MB/s)",
          round(paper.cipher_rate_kb_per_s / 1024, 1),
          round(measured / 1024, 1)),
         ("encryption overhead",
          f"{paper.encryption_overhead:.2%}",
          f"{ours.encryption_overhead:.2%}"),
         ("space overhead", f"{paper.space_overhead:.3%}",
          f"{ours.space_overhead:.3%}"),
         ("report+key bytes / piece",
          f"{paper.report_overhead():.3%}",
          f"{ours.report_overhead():.3%}")],
        title="Sec. III-C: T-Chain overhead for a 1 GB file at 8 Mbps"))


if __name__ == "__main__":
    bootstrap_dynamics()
    collusion_probability()
    overhead()
