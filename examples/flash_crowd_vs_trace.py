#!/usr/bin/env python3
"""Workload study: flash crowd vs continuous-trace arrivals.

The paper evaluates both regimes: a release-day flash crowd
(everyone joins within 10 s) and a RedHat-9-like continuous stream.
This example runs T-Chain under both, prints completion statistics,
and shows the chain dynamics that drive them (Figs. 10 and 11):
active chains tracking the leecher population, and opportunistic
seeding concentrated where the seeder cannot keep up.

Run:  python examples/flash_crowd_vs_trace.py
"""

from repro.analysis.reporting import format_series
from repro.experiments import run_swarm
from repro.sim.events import PeriodicTask

LEECHERS = 50
PIECES = 32
SEED = 23


def run_with_chain_sampling(arrival: str):
    samples = []

    def setup(swarm):
        def sample():
            state = getattr(swarm, "_tchain_state", None)
            chains = state.registry.active_count if state else 0
            samples.append((swarm.sim.now, chains,
                            swarm.active_leechers))
        PeriodicTask(swarm.sim, 10.0, sample, first_delay=0.0)

    result = run_swarm(protocol="tchain", leechers=LEECHERS,
                       pieces=PIECES, seed=SEED, arrival=arrival,
                       trace_horizon_s=300.0, setup=setup)
    return result, samples


def report(name: str, result, samples) -> None:
    state = result.tchain_state
    print(f"--- {name} ---")
    print(f"mean completion {result.mean_completion_time():.1f} s, "
          f"utilization {result.mean_utilization():.0%}")
    print(f"chains: {state.registry.total_count} total, "
          f"{state.registry.opportunistic_fraction:.0%} initiated by "
          f"leechers (opportunistic seeding)")
    print(format_series(
        "active chains / active leechers",
        [(t, f"{c:4d} chains, {l:4d} leechers")
         for t, c, l in samples[::max(1, len(samples) // 8)]],
        x_label="time (s)", y_label=""))
    print()


if __name__ == "__main__":
    for arrival, label in (("flash", "flash crowd (all join < 10 s)"),
                           ("trace", "continuous RedHat-9-like trace")):
        result, samples = run_with_chain_sampling(arrival)
        report(label, result, samples)
