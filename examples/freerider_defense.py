#!/usr/bin/env python3
"""Free-rider defense shoot-out (the paper's Sec. IV-C story).

Runs the same 25 %-free-rider flash crowd against all four protocols
and prints who protected whom: compliant leechers' completion times,
and whether free-riders (using the large-view exploit and
whitewashing) got the file.

Then repeats the T-Chain run with *colluding* free-riders (false
reception reports, Sec. III-A4 / Fig. 8) to show the residual attack
surface and its price.

Run:  python examples/freerider_defense.py
"""

from repro.analysis.reporting import format_table
from repro.attacks import FreeRiderOptions
from repro.experiments import run_swarm

LEECHERS = 40
PIECES = 32
SEED = 11


def shootout() -> None:
    rows = []
    for protocol in ("bittorrent", "propshare", "fairtorrent",
                     "tchain"):
        clean = run_swarm(protocol=protocol, leechers=LEECHERS,
                          pieces=PIECES, seed=SEED)
        attacked = run_swarm(protocol=protocol, leechers=LEECHERS,
                             pieces=PIECES, seed=SEED,
                             freerider_fraction=0.25)
        metrics = attacked.metrics
        fr_time = metrics.mean_completion_time("freerider")
        rows.append((
            protocol,
            round(clean.mean_completion_time(), 1),
            round(metrics.mean_completion_time("leecher"), 1),
            f"{metrics.completion_rate('freerider'):.0%}",
            round(fr_time, 1) if fr_time else "never",
        ))
    print(format_table(
        ["protocol", "compliant (clean)", "compliant (25% FR)",
         "FR finished", "FR completion (s)"],
        rows,
        title="25% free-riders with large-view exploit + whitewashing"))
    print()


def collusion() -> None:
    options = FreeRiderOptions(large_view=True, whitewash=False,
                               collude=True)
    result = run_swarm(protocol="tchain", leechers=LEECHERS,
                       pieces=PIECES, seed=SEED,
                       freerider_fraction=0.25,
                       freerider_options=options,
                       max_time=30000.0)
    metrics = result.metrics
    ledger = result.tchain_state.ledger
    fr_records = metrics.by_kind("freerider")
    progress = [r.pieces_completed / PIECES for r in fr_records]
    fr_time = metrics.mean_completion_time("freerider")
    print("T-Chain under collusion (false reception reports):")
    print(f"  collusion breaches          : "
          f"{ledger.collusion_successes}")
    print(f"  colluders' decrypted share  : "
          f"{sum(progress) / len(progress):.0%} of the file (mean)")
    print(f"  colluders finished          : "
          f"{metrics.completion_rate('freerider'):.0%}"
          + (f", mean {fr_time:.0f} s" if fr_time else ""))
    print(f"  compliant mean completion   : "
          f"{metrics.mean_completion_time('leecher'):.1f} s "
          f"(collusion barely affects them)")


if __name__ == "__main__":
    shootout()
    collusion()
