#!/usr/bin/env python3
"""Quickstart: T-Chain in five minutes.

Walks through the two halves of the library:

1. the *protocol core* — a hand-driven triangle exchange with real
   symmetric encryption (Fig. 1 of the paper, literally executed); and
2. the *swarm simulator* — a small file-sharing swarm running T-Chain
   end to end, with the headline free-riding comparison.

Run:  python examples/quickstart.py
"""

from repro.core import ExchangeLedger
from repro.core.crypto import CryptoError
from repro.experiments import run_swarm


def demo_triangle_exchange() -> None:
    """Execute one A→B→C triangle with real ciphertext."""
    print("=" * 64)
    print("1. The almost-fair exchange (Fig. 1(a)), with real crypto")
    print("=" * 64)

    ledger = ExchangeLedger(real_crypto=True)
    piece_1 = b"piece-one " * 200   # what A sends B
    piece_2 = b"piece-two " * 200   # what B forwards to C

    # Initiation: seeder A uploads an encrypted piece to B and
    # designates C as the payee B must reciprocate to.
    chain = ledger.begin_chain("A", seeded_by_seeder=True, now=0.0)
    t1, sealed_1 = ledger.create_transaction(
        chain, donor_id="A", requestor_id="B", payee_id="C",
        piece_index=1, now=0.0, payload=piece_1)
    print(f"A -> B: sealed piece {sealed_1.piece_index} "
          f"({len(sealed_1.ciphertext)} bytes of ciphertext), "
          f"payee = C")

    # B cannot use the piece yet: without the key, opening fails.
    from repro.core.crypto import decrypt
    try:
        decrypt(b"\x00" * 32, sealed_1.ciphertext)
    except CryptoError:
        print("B tries a wrong key ............ CryptoError (good)")

    ledger.mark_delivered(t1.transaction_id, now=1.0)

    # Continuation: B reciprocates by uploading its own encrypted
    # piece to C (starting transaction 2, payee D).
    t2, sealed_2 = ledger.create_transaction(
        chain, donor_id="B", requestor_id="C", payee_id="D",
        piece_index=2, now=1.0, reciprocates=t1.transaction_id,
        payload=piece_2)
    prev = ledger.mark_delivered(t2.transaction_id, now=2.0)
    print(f"B -> C: reciprocation delivered; transaction "
          f"{prev.transaction_id} is now reciprocated")

    # C reports to A; A releases the key; B decrypts.
    ledger.report_reciprocation(t1.transaction_id, now=2.1)
    key_1 = ledger.release_key(t1.transaction_id, now=2.2)
    recovered = sealed_1.open(key_1)
    print(f"C reports, A releases the key, B decrypts "
          f"{len(recovered)} bytes: "
          f"{'OK' if recovered == piece_1 else 'MISMATCH'}")
    print(f"chain length so far: {chain.length} transactions\n")


def demo_swarm() -> None:
    """Run small swarms with and without free-riders."""
    print("=" * 64)
    print("2. A T-Chain swarm (40 leechers, 4 MB file)")
    print("=" * 64)

    clean = run_swarm(protocol="tchain", leechers=40, pieces=16,
                      seed=7)
    print(f"no free-riders : mean completion "
          f"{clean.mean_completion_time():7.1f} s, "
          f"uplink utilization "
          f"{clean.mean_utilization():.0%}, "
          f"optimal bound {clean.optimal_time():.1f} s")

    attacked = run_swarm(protocol="tchain", leechers=40, pieces=16,
                         seed=7, freerider_fraction=0.25)
    print(f"25% free-riders: compliant mean completion "
          f"{attacked.mean_completion_time():7.1f} s, "
          f"free-riders completed "
          f"{attacked.completion_rate('freerider'):.0%} "
          f"of their downloads")

    bt = run_swarm(protocol="bittorrent", leechers=40, pieces=16,
                   seed=7, freerider_fraction=0.25)
    print(f"BitTorrent     : compliant mean completion "
          f"{bt.mean_completion_time():7.1f} s, "
          f"free-riders completed "
          f"{bt.completion_rate('freerider'):.0%} "
          f"of their downloads")

    state = attacked.tchain_state
    print(f"\nT-Chain internals: {state.registry.total_count} chains "
          f"({state.registry.created_by_seeder} seeder-initiated, "
          f"{state.registry.created_by_leechers} opportunistic), "
          f"{state.ledger.completed_transactions} completed "
          f"transactions, "
          f"{state.ledger.collusion_successes} collusion breaches")


if __name__ == "__main__":
    demo_triangle_exchange()
    demo_swarm()
