#!/usr/bin/env python3
"""File replication over T-Chain (Sec. VI: "file replication (and
preservation)").

Storage peers want off-site replicas of their objects.  Hosting
someone's replica is the contribution; a *committed* (durable)
replica is the benefit.  Under T-Chain the host withholds its storage
commitment until the owner reciprocates by hosting for a designated
payee — so free-riders can fill nobody's disk for free, and when
churn strikes, only reciprocators' data survives.

Run:  python examples/replica_preservation.py
"""

from repro.analysis.reporting import format_table
from repro.replication import ReplicationConfig, ReplicationSystem


def run(mode: str, freerider_fraction: float, seed: int = 3):
    config = ReplicationConfig(mode=mode,
                               freerider_fraction=freerider_fraction,
                               duration_s=1200.0, seed=seed)
    return ReplicationSystem(config).run()


def main() -> None:
    rows = []
    for mode in ("altruistic", "tchain"):
        for fraction in (0.0, 0.3):
            report = run(mode, fraction)
            rows.append((
                mode, f"{fraction:.0%}",
                f"{report.compliant_durability:.0%}",
                round(report.mean_compliant_replication, 2),
                f"{report.freerider_durability:.0%}",
                report.objects_lost,
            ))
    print(format_table(
        ["scheme", "free-riders", "compliant durability",
         "compliant replication", "free-rider durability",
         "objects lost to churn"],
        rows,
        title="Replica preservation under churn "
              "(24 nodes, target 2 replicas)"))
    print(
        "\nAltruistic hosting lets free-riders keep durable replicas "
        "at honest peers' expense;\nunder T-Chain their replicas are "
        "never committed, audits reclaim the space, and\nchurn "
        "eventually destroys their (and only their) objects.")


if __name__ == "__main__":
    main()
