#!/usr/bin/env python3
"""Small files under high churn (the paper's Sec. IV-I / Fig. 13).

Very small files break choking-based incentives: with one to five
pieces there is almost nothing to reciprocate with, so BitTorrent
degenerates into a client–server system around the seeder.  T-Chain
*forces* reciprocation of the very piece being distributed (the
newcomer forwards it, still encrypted), so it keeps multi-party
dissemination alive.

This example runs a replacement-churn workload (every finisher is
replaced by a newcomer) over a range of tiny file sizes and prints
the compliant download throughput per protocol, with and without
free-riders.

Run:  python examples/small_files_churn.py
"""

from repro.analysis.reporting import format_table
from repro.experiments import fig13
from repro.experiments.config import ExperimentScale

SCALE = ExperimentScale(factor=0.6, seeds=1, root_seed=31)


def main() -> None:
    rows = fig13.run(SCALE, fractions=(0.0, 0.5))
    for fraction in (0.0, 0.5):
        subset = [r for r in rows
                  if r.freerider_fraction == fraction]
        by_pieces = {}
        for r in subset:
            by_pieces.setdefault(r.n_pieces, {})[r.protocol] = \
                round(r.mean_throughput_kbps)
        table_rows = [
            (n, vals.get("random"), vals.get("bittorrent"),
             vals.get("propshare"), vals.get("fairtorrent"),
             vals.get("tchain"))
            for n, vals in sorted(by_pieces.items())
        ]
        print(format_table(
            ["pieces", "random-BT", "bittorrent", "propshare",
             "fairtorrent", "t-chain"],
            table_rows,
            title=(f"Compliant download throughput (Kbps), "
                   f"{int(fraction * 100)}% free-riders, "
                   f"replacement churn")))
        print()


if __name__ == "__main__":
    main()
