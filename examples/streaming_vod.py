#!/usr/bin/env python3
"""Video-on-demand over T-Chain (the paper's Sec. VI future work).

Viewers join a swarm, buffer a few pieces, and play the stream in
order while still downloading; they seed until the credits roll.
The question streaming incentives must answer: does playback quality
survive free-riders?

This example compares BitTorrent and T-Chain viewer QoE — startup
latency, stalls, continuity — with 0 % and 30 % free-riders in the
audience.

Run:  python examples/streaming_vod.py
"""

from repro.analysis.reporting import format_table
from repro.attacks import FreeRiderOptions, make_freerider
from repro.bt.config import SwarmConfig
from repro.bt.protocols import PROTOCOLS
from repro.bt.swarm import Swarm
from repro.streaming import make_streaming, streaming_metrics
from repro.streaming.peers import StreamingConfig
from repro.workloads.arrivals import flash_crowd, schedule_arrivals

VIEWERS = 30
PIECES = 48           # 48 x 64 KB pieces, 1.5 s each = 72 s of video
PLAYBACK = StreamingConfig(piece_duration_s=1.5, startup_buffer=3,
                           window=8)
SEED = 3


def run(protocol: str, freerider_fraction: float):
    config = SwarmConfig(n_pieces=PIECES, piece_size_kb=64.0,
                         seed=SEED)
    swarm = Swarm(config)
    seeder_cls, leecher_cls = PROTOCOLS[protocol]
    seeder_cls(swarm).join()
    viewer_cls = make_streaming(leecher_cls, PLAYBACK)
    freerider_cls = make_freerider(leecher_cls, FreeRiderOptions())
    viewers = []

    def viewer_factory():
        viewer = viewer_cls(swarm)
        viewers.append(viewer)
        return viewer

    n_free = round(freerider_fraction * VIEWERS)
    factories = [viewer_factory] * (VIEWERS - n_free) \
        + [lambda: freerider_cls(swarm)] * n_free
    swarm.sim.rng.shuffle(factories)
    schedule_arrivals(swarm, flash_crowd(factories, swarm.sim.rng))
    swarm.run(max_time=3000.0)
    return streaming_metrics(viewers, swarm.sim.now)


def main() -> None:
    rows = []
    for protocol in ("bittorrent", "tchain"):
        for fraction in (0.0, 0.3):
            report = run(protocol, fraction)
            rows.append((
                protocol, f"{fraction:.0%}",
                f"{report.finished}/{report.viewers}",
                round(report.mean_startup_s or 0.0, 1),
                round(report.mean_stalls, 1),
                round(report.mean_stall_time_s, 1),
                f"{report.mean_continuity:.1%}",
            ))
    print(format_table(
        ["protocol", "free-riders", "finished", "startup (s)",
         "stalls", "stall time (s)", "continuity"],
        rows,
        title="VoD viewer QoE (72 s stream, flash-crowd audience)"))
    print("\nT-Chain pays a little startup latency (the first pieces "
          "need a reciprocation round-trip)\nbut keeps continuity "
          "under free-riding — the chain machinery protects the "
          "playhead.")


if __name__ == "__main__":
    main()
