#!/usr/bin/env python3
"""WAN study: a T-Chain swarm spread over three datacenters.

The paper's evaluation (Sec. IV-A) uses the flat model — control
messages cost a fixed latency and only uplinks are constrained.  This
example turns on the link-level network substrate (docs/NETWORK.md)
and runs the same swarm three ways:

* **flat** — the paper's model, no substrate;
* **wan** — a 3-DC latency matrix (40-120 ms one-way), 3% per-link
  control loss and seeded jitter: every cross-DC report/key/plead
  pays real propagation delay and sometimes vanishes, exercising the
  retransmit machinery without a fault injector;
* **partitioned** — the same WAN, but dc2 is cut off from the world
  mid-download (a :class:`~repro.faults.NetworkPartition` fault) and
  healed 15 s later.  Messages across the cut drop as unroutable,
  transfers cannot start across it, and the swarm still converges
  after the heal.

Run:  python examples/wan_swarm.py
"""

from repro.analysis.reporting import format_table
from repro.experiments import run_swarm
from repro.faults import FaultInjector, FaultPlan, NetworkPartition

WAN = {"topology": "multi_dc", "loss": 0.03, "jitter_ms": 15.0}

SCENARIO = dict(protocol="tchain", leechers=15, pieces=12, seed=11,
                sanitize=True)


def flat():
    return run_swarm(**SCENARIO), None


def wan():
    result = run_swarm(extra={"net": dict(WAN)}, **SCENARIO)
    return result, result.swarm.net


def partitioned():
    plan = FaultPlan(partitions=(
        NetworkPartition(at_s=5.0, groups=(("dc2",),), heal_s=20.0),))

    def setup(swarm):
        FaultInjector(plan, swarm.config.seed).attach(swarm)

    result = run_swarm(setup=setup, extra={"net": dict(WAN)},
                       **SCENARIO)
    return result, result.swarm.net


def main() -> None:
    rows = []
    net_rows = []
    for name, scenario in (("flat", flat), ("wan", wan),
                           ("partitioned", partitioned)):
        result, net = scenario()
        metrics = result.metrics
        rows.append((name, metrics.mean_completion_time("leecher"),
                     metrics.completion_rate("leecher"),
                     round(result.swarm.sim.now, 1)))
        if net is not None:
            c = net.counters
            net_rows.append((name, c.control_sent, c.control_dropped,
                             c.control_unroutable,
                             c.transfers_unroutable,
                             c.links_severed, c.links_restored))
    print(format_table(
        ["scenario", "mean completion (s)", "completion rate",
         "sim seconds"],
        rows, title="T-Chain across three datacenters"))
    print()
    print(format_table(
        ["scenario", "ctl sent", "ctl lost", "ctl unroutable",
         "xfer unroutable", "severed", "restored"],
        net_rows, title="substrate counters"))
    print("\nEvery run is sanitized: the fair-exchange invariant held "
          "under WAN loss,\njitter and a 15 s partition.")


if __name__ == "__main__":
    main()
