"""Setup shim for legacy editable installs.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-build-isolation``
falls back to ``setup.py develop`` through this shim.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
