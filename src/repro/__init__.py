"""repro — a full reproduction of *T-Chain: A General Incentive Scheme
for Cooperative Computing* (Shin et al., IEEE ICDCS 2015).

The package is layered bottom-up:

* :mod:`repro.sim` — deterministic discrete-event simulation engine.
* :mod:`repro.net` — uplink bandwidth model and neighbor topology.
* :mod:`repro.bt` — a from-scratch BitTorrent substrate (tracker,
  swarm, leechers/seeders, LRF piece selection, tit-for-tat choking)
  plus the four evaluated protocols: original BitTorrent, PropShare,
  FairTorrent, Random BitTorrent — and T-Chain applied to BitTorrent.
* :mod:`repro.core` — the T-Chain contribution itself: the symmetric-
  crypto almost-fair exchange, triangle chaining, flow control,
  newcomer bootstrapping and opportunistic seeding.
* :mod:`repro.attacks` — free-riding strategies (large-view exploit,
  whitewashing, Sybil, collusion).
* :mod:`repro.workloads` — arrival models (flash crowd, synthetic
  RedHat-9-like trace, replacement churn).
* :mod:`repro.analysis` — metrics: completion times, uplink
  utilization, fairness factors, chain statistics.
* :mod:`repro.models` — the paper's analytical results (bootstrapping
  dynamics of Sec. III-B, collusion probability of Sec. III-A4,
  overhead model of Sec. III-C).
* :mod:`repro.experiments` — one experiment definition per paper
  figure/table, driven by the benchmark harness in ``benchmarks/``.

Quickstart
----------
>>> from repro.experiments import run_swarm
>>> result = run_swarm(protocol="tchain", leechers=40, pieces=32, seed=1)
>>> result.mean_completion_time() > 0
True
"""

__version__ = "1.0.0"
