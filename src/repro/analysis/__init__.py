"""Metrics, statistics, reporting and persistence for experiments."""

from repro.analysis.chains import ChainStats, summarize_chains
from repro.analysis.charts import bar_chart, line_plot
from repro.analysis.metrics import PeerRecord, SwarmMetrics
from repro.analysis.persist import (
    load_run_json,
    run_summary,
    save_peers_csv,
    save_run_json,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import confidence_interval_95, mean, summarize

__all__ = [
    "ChainStats",
    "PeerRecord",
    "SwarmMetrics",
    "bar_chart",
    "confidence_interval_95",
    "format_series",
    "format_table",
    "line_plot",
    "load_run_json",
    "mean",
    "run_summary",
    "save_peers_csv",
    "save_run_json",
    "summarize",
    "summarize_chains",
]
