"""Chain-level analysis (behind Figs. 10 and 11).

Summaries over a :class:`repro.core.chain.ChainRegistry`: length and
lifetime distributions, initiator breakdowns, and growth/termination
rates over time.  The experiment modules sample the raw counters; the
helpers here turn them into the statistics the paper discusses
("chain termination is strongly related to leecher departure", "the
amount of opportunistic seeding is high when the system is newly
initiated").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import mean, percentile
from repro.core.chain import Chain, ChainRegistry


@dataclass(frozen=True)
class ChainStats:
    """Aggregate statistics over all chains of a run."""

    total: int
    by_seeder: int
    by_leechers: int
    mean_length: float
    median_length: float
    max_length: int
    mean_lifetime_s: Optional[float]
    still_active: int

    @property
    def opportunistic_fraction(self) -> float:
        """Share of chains initiated by leechers."""
        if self.total == 0:
            return 0.0
        return self.by_leechers / self.total


def summarize_chains(registry: ChainRegistry) -> ChainStats:
    """Compute :class:`ChainStats` for a registry."""
    chains = registry.all_chains()
    lengths = [c.length for c in chains]
    lifetimes = [c.terminated_at - c.created_at for c in chains
                 if c.terminated_at is not None]
    return ChainStats(
        total=len(chains),
        by_seeder=registry.created_by_seeder,
        by_leechers=registry.created_by_leechers,
        mean_length=mean(lengths),
        median_length=percentile(lengths, 50) if lengths else 0.0,
        max_length=max(lengths) if lengths else 0,
        mean_lifetime_s=mean(lifetimes) if lifetimes else None,
        still_active=registry.active_count,
    )


def length_histogram(registry: ChainRegistry,
                     bins: Sequence[int] = (1, 2, 3, 5, 10, 20, 50)
                     ) -> List[Tuple[str, int]]:
    """Chain-length histogram with right-open integer bins."""
    edges = list(bins)
    counts = [0] * (len(edges) + 1)
    for length in registry.chain_lengths():
        for i, edge in enumerate(edges):
            if length < edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    labels = []
    low = 0
    for edge in edges:
        labels.append(f"[{low},{edge})")
        low = edge
    labels.append(f"[{low},inf)")
    return list(zip(labels, counts))


def creation_rate(samples: Sequence[Tuple[float, int, int]]
                  ) -> List[Tuple[float, float]]:
    """Chains created per second between samples.

    ``samples`` are the registry's (time, active, total) triples.
    """
    rates = []
    for (t0, _, total0), (t1, _, total1) in zip(samples, samples[1:]):
        dt = t1 - t0
        if dt > 0:
            rates.append((t1, (total1 - total0) / dt))
    return rates


def termination_rate(samples: Sequence[Tuple[float, int, int]]
                     ) -> List[Tuple[float, float]]:
    """Chains terminated per second between samples."""
    rates = []
    for (t0, a0, total0), (t1, a1, total1) in zip(samples,
                                                  samples[1:]):
        dt = t1 - t0
        if dt > 0:
            terminated = (total1 - total0) - (a1 - a0)
            rates.append((t1, terminated / dt))
    return rates


def initiator_breakdown(registry: ChainRegistry
                        ) -> Dict[str, List[Chain]]:
    """Chains grouped by initiator peer id."""
    groups: Dict[str, List[Chain]] = {}
    for chain in registry.all_chains():
        groups.setdefault(chain.initiator_id, []).append(chain)
    return groups
