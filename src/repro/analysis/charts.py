"""ASCII charts for terminal-friendly figure output.

The benchmark harness and the CLI render the paper's figures as text
(this environment is offline and headless; matplotlib is deliberately
not a dependency).  Two primitives cover everything the figures need:
a horizontal bar chart for per-category comparisons and an x/y line
plot for time series and sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def bar_chart(items: Sequence[Tuple[str, float]],
              width: int = 40,
              title: Optional[str] = None,
              unit: str = "") -> str:
    """Horizontal bar chart; bar lengths scaled to the maximum."""
    items = list(items)
    if not items:
        return title or ""
    label_width = max(len(str(label)) for label, _ in items)
    peak = max((value for _, value in items), default=0.0)
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        length = 0 if peak <= 0 else round(width * value / peak)
        bar = "#" * length
        lines.append(f"{str(label).ljust(label_width)}  "
                     f"{bar} {value:g}{unit}")
    return "\n".join(lines)


def line_plot(series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
              width: int = 60, height: int = 16,
              title: Optional[str] = None,
              x_label: str = "x", y_label: str = "y") -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker (``*``, ``o``, ``+``, ``x``, ...);
    overlapping points show the later series' marker.
    """
    markers = "*o+x@%&="
    points = [(name, list(pts)) for name, pts in series if pts]
    if not points:
        return title or ""
    xs = [x for _, pts in points for x, _ in pts]
    ys = [y for _, pts in points for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, (name, _) in enumerate(points))
    lines.append(legend)
    lines.append(f"{y_hi:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:<.4g}"
                 + " " * max(1, width - 16)
                 + f"{x_hi:>.4g}  [{x_label} vs {y_label}]")
    return "\n".join(lines)
