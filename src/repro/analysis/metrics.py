"""Per-peer and per-swarm measurements.

Every metric the paper's evaluation plots is derived from the
:class:`PeerRecord` rows collected here:

* download completion time (Figs. 3(a), 4, 7, 8, 9);
* uplink utilization (Fig. 3(b));
* fairness factor = pieces downloaded / pieces uploaded (Fig. 12);
* download throughput (Fig. 13).

Records are written when a peer leaves the swarm or when the
simulation ends (for peers still active, e.g. free-riders that never
finish under T-Chain).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional


@dataclass
class PeerRecord:
    """Final accounting for one peer."""

    peer_id: str
    kind: str  # "leecher" | "seeder" | "freerider" | ...
    capacity_kbps: float
    join_time: float
    finish_time: Optional[float]
    leave_time: Optional[float]
    kb_uploaded: float
    kb_downloaded: float
    pieces_uploaded: int
    pieces_downloaded: int
    pieces_completed: int
    utilization: float

    @property
    def completed(self) -> bool:
        """Did the peer finish its download?"""
        return self.finish_time is not None

    @property
    def completion_time(self) -> Optional[float]:
        """Seconds from join to finish, or None."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.join_time

    @property
    def fairness_factor(self) -> Optional[float]:
        """Pieces downloaded per piece uploaded (Sec. IV-H).

        None when the peer uploaded nothing (division undefined; the
        paper's CDF only includes contributing leechers).
        """
        if self.pieces_uploaded == 0:
            return None
        return self.pieces_downloaded / self.pieces_uploaded

    def throughput_kbps(self, horizon_s: float) -> float:
        """Average payload download rate over a time horizon."""
        if horizon_s <= 0:
            return 0.0
        return self.kb_downloaded * 8.0 / horizon_s


@dataclass
class RecoveryCounters:
    """Graceful-degradation accounting for one swarm run.

    Incremented by the fault injector (:mod:`repro.faults`) and the
    T-Chain recovery layer (:mod:`repro.bt.protocols.tchain`); all
    zero in a fault-free run unless recovery genuinely fired.  Because
    every contributor draws only from seeded streams, the whole row is
    reproducible per seed — the chaos harness asserts exactly that.
    """

    #: control messages the injector dropped / delayed
    control_dropped: int = 0
    control_delayed: int = 0
    #: piece payloads the injector landed late
    stalls: int = 0
    #: unclean departures the injector executed
    crashes: int = 0
    #: payee re-sent a reception report (backoff timer found the
    #: transaction still unreported)
    report_retransmits: int = 0
    #: donor re-sent a key release (requestor still held the sealed piece)
    key_retransmits: int = 0
    #: requestor key-release timeouts that found a wedged exchange
    key_timeouts: int = 0
    #: pleads sent donor-ward after a key timeout
    pleads: int = 0
    #: transactions rolled back to DELIVERED on a plead
    reopens: int = 0
    #: reciprocation duties waived during recovery
    forgives: int = 0
    #: exchanges written off with no reachable key holder
    orphaned_chains: int = 0
    #: in-flight pieces that landed after their transaction aborted
    #: (donor departed while the payload was stalled/in transit)
    dead_letters: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (persistence, test comparisons)."""
        return asdict(self)

    @property
    def any_recovery(self) -> bool:
        """Did any recovery path (not mere injection) fire?"""
        return any((self.report_retransmits, self.key_retransmits,
                    self.key_timeouts, self.pleads, self.reopens,
                    self.forgives, self.orphaned_chains))


class SwarmMetrics:
    """Collects :class:`PeerRecord` rows for a swarm run."""

    def __init__(self):
        self.records: List[PeerRecord] = []
        #: fault-injection / recovery accounting (see
        #: :class:`RecoveryCounters`)
        self.recovery = RecoveryCounters()

    def record_peer(self, peer, now: float) -> None:
        """Snapshot a peer at departure (or at simulation end)."""
        self.records.append(PeerRecord(
            peer_id=peer.id,
            kind=peer.kind,
            capacity_kbps=peer.uplink.capacity_kbps,
            join_time=peer.join_time if peer.join_time is not None else 0.0,
            finish_time=peer.finish_time,
            leave_time=peer.leave_time,
            kb_uploaded=peer.kb_uploaded,
            kb_downloaded=peer.kb_downloaded,
            pieces_uploaded=peer.pieces_uploaded,
            pieces_downloaded=peer.pieces_downloaded,
            pieces_completed=peer.book.completed_count,
            utilization=peer.uplink.utilization(now),
        ))

    def finalize_active(self, swarm) -> None:
        """Record peers still active when the run ends."""
        recorded = {r.peer_id for r in self.records}
        for peer in swarm.peers.values():
            if peer.id not in recorded:
                self.record_peer(peer, swarm.sim.now)

    def __eq__(self, other) -> bool:
        """Structural equality over rows and counters — this is what
        the serial-vs-parallel bit-identical guarantee compares."""
        if not isinstance(other, SwarmMetrics):
            return NotImplemented
        return (self.records == other.records
                and self.recovery == other.recovery)

    # ------------------------------------------------------------------
    # Selections
    # ------------------------------------------------------------------
    def by_kind(self, *kinds: str) -> List[PeerRecord]:
        """Records whose kind is in ``kinds``."""
        return [r for r in self.records if r.kind in kinds]

    def compliant_leechers(self) -> List[PeerRecord]:
        """Ordinary protocol-following leechers."""
        return self.by_kind("leecher")

    def freeriders(self) -> List[PeerRecord]:
        """All free-riding variants."""
        return [r for r in self.records
                if r.kind not in ("leecher", "seeder")]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def completion_times(self, kind: str = "leecher") -> List[float]:
        """Completion times of finished peers of a kind."""
        return [r.completion_time for r in self.by_kind(kind)
                if r.completion_time is not None]

    def mean_completion_time(self, kind: str = "leecher"
                             ) -> Optional[float]:
        """Average completion time, or None if nobody finished."""
        times = self.completion_times(kind)
        if not times:
            return None
        return sum(times) / len(times)

    def completion_rate(self, kind: str = "leecher") -> float:
        """Fraction of peers of a kind that finished."""
        rows = self.by_kind(kind)
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.completed) / len(rows)

    def mean_utilization(self, kind: str = "leecher") -> Optional[float]:
        """Average uplink utilization."""
        rows = [r.utilization for r in self.by_kind(kind)
                if r.capacity_kbps > 0]
        if not rows:
            return None
        return sum(rows) / len(rows)

    def fairness_factors(self, kind: str = "leecher") -> List[float]:
        """Defined fairness factors of a kind."""
        return [r.fairness_factor for r in self.by_kind(kind)
                if r.fairness_factor is not None]


def cdf_points(values: List[float]) -> List[tuple]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def gini(values: List[float]) -> float:
    """Gini coefficient — a scalar unfairness summary used by the
    fairness ablations (0 = perfectly equal)."""
    xs = sorted(v for v in values if not math.isnan(v))
    n = len(xs)
    if n == 0:
        return 0.0
    total = sum(xs)
    if total == 0:
        return 0.0
    weighted = sum((i + 1) * x for i, x in enumerate(xs))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
