"""Result persistence: JSON summaries and CSV metric dumps.

A swarm run produces a :class:`repro.experiments.runner.RunResult`;
these helpers serialize it so sweeps can be archived, diffed across
code versions, and post-processed outside the simulator (the CLI's
``--out`` flag uses them).
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import Union

PathLike = Union[str, pathlib.Path]

#: bump when the serialized layout changes
SCHEMA_VERSION = 1


def run_summary(result) -> dict:
    """A JSON-safe summary of one run."""
    metrics = result.metrics
    summary = {
        "schema": SCHEMA_VERSION,
        "protocol": result.protocol,
        "config": _config_dict(result.config),
        "population": {
            "compliant": result.n_compliant,
            "freeriders": result.n_freeriders,
        },
        "results": {
            "mean_completion_s": metrics.mean_completion_time("leecher"),
            "completion_rate": metrics.completion_rate("leecher"),
            "mean_utilization": metrics.mean_utilization("leecher"),
            "freerider_completion_rate":
                metrics.completion_rate("freerider"),
            "freerider_mean_completion_s":
                metrics.mean_completion_time("freerider"),
            "optimal_completion_s": result.optimal_time(),
            "simulated_seconds": result.swarm.sim.now,
            "events_fired": result.swarm.sim.events_fired,
        },
    }
    state = result.tchain_state
    if state is not None:
        summary["tchain"] = {
            "chains_total": state.registry.total_count,
            "chains_by_seeder": state.registry.created_by_seeder,
            "chains_by_leechers": state.registry.created_by_leechers,
            "transactions_completed":
                state.ledger.completed_transactions,
            "transactions_aborted": state.ledger.aborted_transactions,
            "transactions_forgiven":
                state.ledger.forgiven_transactions,
            "collusion_successes": state.ledger.collusion_successes,
        }
    return summary


def _config_dict(config) -> dict:
    raw = dataclasses.asdict(config)
    raw["leecher_capacities_kbps"] = list(
        raw["leecher_capacities_kbps"])
    return raw


def save_run_json(result, path: PathLike) -> pathlib.Path:
    """Write the run summary as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(run_summary(result), indent=2,
                               sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_run_json(path: PathLike) -> dict:
    """Read a summary written by :func:`save_run_json`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {data.get('schema')!r} in {path}")
    return data


PEER_CSV_FIELDS = [
    "peer_id", "kind", "capacity_kbps", "join_time", "finish_time",
    "leave_time", "kb_uploaded", "kb_downloaded", "pieces_uploaded",
    "pieces_downloaded", "pieces_completed", "utilization",
]


def save_peers_csv(result, path: PathLike) -> pathlib.Path:
    """Write per-peer records as CSV; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=PEER_CSV_FIELDS)
        writer.writeheader()
        for record in result.metrics.records:
            writer.writerow({field: getattr(record, field)
                             for field in PEER_CSV_FIELDS})
    return path


def load_peers_csv(path: PathLike) -> list:
    """Read rows written by :func:`save_peers_csv` (values as str)."""
    with pathlib.Path(path).open(newline="", encoding="utf-8") as fh:
        return list(csv.DictReader(fh))
