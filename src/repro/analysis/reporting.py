"""Plain-text table/series rendering for experiment output.

The benchmark harness reproduces the paper's figures as printed rows
and series; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """A fixed-width text table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple],
                  x_label: str = "x", y_label: str = "y") -> str:
    """A named (x, y) series as aligned text."""
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12}  {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)
