"""Small statistics helpers for multi-seed experiment summaries.

The paper reports means with 95 % confidence intervals over 30 runs;
:func:`confidence_interval_95` reproduces that (normal approximation,
which is what error bars over 30 runs amount to).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

#: two-sided 97.5 % normal quantile
_Z_975 = 1.959963984540054


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 below two samples."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of the 95 % CI of the mean."""
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    return _Z_975 * stddev(values) / math.sqrt(n)


@dataclass(frozen=True)
class Summary:
    """Mean ± 95 % CI over runs."""

    mean: float
    ci95: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci95:.1f} (n={self.n})"


def summarize(values: Sequence[float]) -> Optional[Summary]:
    """Summary statistics, or None for empty input."""
    values = [v for v in values if v is not None]
    if not values:
        return None
    return Summary(mean=mean(values),
                   ci95=confidence_interval_95(values),
                   n=len(values),
                   minimum=min(values),
                   maximum=max(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    xs = sorted(values)
    if not xs:
        raise ValueError("empty input")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    pos = (len(xs) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return xs[lo]
    frac = pos - lo
    return xs[lo] * (1 - frac) + xs[hi] * frac
