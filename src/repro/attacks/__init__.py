"""Free-riding strategies evaluated in Section IV.

All attacker classes are built by wrapping the compliant leecher of a
protocol (:func:`make_freerider`), then layering strategic behaviours
on top:

* zero upload contribution (the base free-rider, Sec. IV-C);
* the large-view exploit — harvest fresh neighbors every rechoke
  period and accept unlimited connections [23], [24];
* whitewashing — reset identity after every received piece, wiping
  neighbors' local history [13], [25];
* the Sybil attack — several identities pooling one download [25];
* collusion — T-Chain payees filing false reception reports for
  fellow colluders (Sec. III-A4 / Fig. 8).
"""

from repro.attacks.freerider import (
    FreeRiderOptions,
    make_freerider,
    make_freerider_factory,
)
from repro.attacks.sybil import make_sybil_group

__all__ = [
    "FreeRiderOptions",
    "make_freerider",
    "make_freerider_factory",
    "make_sybil_group",
]
