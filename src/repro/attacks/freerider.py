"""Free-rider construction.

:func:`make_freerider` derives, from any compliant leecher class, a
strategic peer that contributes zero upload bandwidth while employing
the evasion techniques of Sec. IV-C:

* it never uploads (``next_upload`` always declines and the uplink has
  zero capacity, so even protocol-internal paths cannot spend
  bandwidth);
* with ``large_view`` it keeps an unlimited neighbor set and
  re-announces to the tracker every rechoke period, maximizing its
  exposure to optimistic unchokes and seeder rotations;
* with ``whitewash`` it resets its identity after every received
  piece, wiping neighbors' history (deficits, contribution counts,
  pending windows) about it;
* with ``collude`` (T-Chain only) it joins the colluder set, whose
  payees file false reception reports for fellow members (Fig. 8).

T-Chain-specific behaviour: the free-rider still files *truthful*
reception reports when it is a payee (reports are free control
messages, not bandwidth contribution) unless the swarm config sets
``freeriders_send_reports=False`` — the ablation for fully silent
attackers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.bt.peer import UploadPlan
from repro.bt.protocols.eigentrust import EigenTrustLeecher, TrustAuthority
from repro.bt.protocols.tchain import TChainLeecher, TChainState
from repro.sim.events import PeriodicTask

#: fabricated local-trust mass per false-praise round (EigenTrust)
FALSE_PRAISE_WEIGHT = 5.0


@dataclass(frozen=True)
class FreeRiderOptions:
    """Which strategic manipulations the free-rider employs."""

    large_view: bool = True
    whitewash: bool = True
    collude: bool = False


_CLASS_CACHE: Dict[tuple, type] = {}

#: How long a T-Chain free-rider sits on an undecryptable sealed piece
#: before discarding it to retry with a fresh payee draw.
_STALE_SEALED_AFTER_S = 30.0


def make_freerider(leecher_cls: Type,
                   options: FreeRiderOptions = FreeRiderOptions()) -> Type:
    """A free-riding subclass of ``leecher_cls`` (class is cached)."""
    cache_key = (leecher_cls, options)
    cached = _CLASS_CACHE.get(cache_key)
    if cached is not None:
        return cached

    is_tchain = issubclass(leecher_cls, TChainLeecher)
    is_eigentrust = issubclass(leecher_cls, EigenTrustLeecher)

    class FreeRider(leecher_cls):
        """A strategic non-contributing leecher."""

        kind = "freerider"

        def __init__(self, swarm, peer_id: Optional[str] = None):
            super().__init__(
                swarm,
                peer_id if peer_id is not None
                else swarm.new_peer_id("F"),
                capacity_kbps=0.0)
            self.unlimited_neighbors = options.large_view
            self._announce_task: Optional[PeriodicTask] = None
            self._discard_task: Optional[PeriodicTask] = None
            self._praise_task: Optional[PeriodicTask] = None
            self.whitewash_count = 0

        # -- zero contribution ----------------------------------------
        def next_upload(self) -> Optional[UploadPlan]:
            return None

        # -- large-view exploit ---------------------------------------
        def on_join(self) -> None:
            super().on_join()
            if options.large_view:
                self._announce_task = PeriodicTask(
                    self.sim, self.swarm.config.rechoke_interval_s,
                    self.refill_neighbors)
            if options.collude and is_tchain:
                TChainState.of(self.swarm).colluders.add(self.id)
            if options.collude and is_eigentrust:
                # False-praise ring (Sec. V / Table II): colluders
                # feed each other fabricated local trust every epoch.
                authority = TrustAuthority.of(self.swarm)
                authority.colluders.add(self.id)
                self._praise_task = PeriodicTask(
                    self.sim, self.swarm.config.rechoke_interval_s,
                    self._spread_false_praise)
            if is_tchain:
                # A rational free-rider never reciprocates, so a sealed
                # piece whose key has not arrived (no colluding payee
                # vouched for it) is dead weight: discard it and let
                # the piece be fetched again — maybe with a luckier
                # payee draw next time.
                self._discard_task = PeriodicTask(
                    self.sim, _STALE_SEALED_AFTER_S,
                    self._discard_stale_sealed)

        def on_leave(self) -> None:
            if self._announce_task is not None:
                self._announce_task.stop()
            if self._discard_task is not None:
                self._discard_task.stop()
            if self._praise_task is not None:
                self._praise_task.stop()
            super().on_leave()

        def _spread_false_praise(self) -> None:
            if not self.active:
                return
            authority = TrustAuthority.of(self.swarm)
            for fellow in sorted(authority.colluders):
                if fellow != self.id:
                    authority.report_praise(self.id, fellow,
                                            FALSE_PRAISE_WEIGHT)

        def _discard_stale_sealed(self) -> None:
            if not self.active:
                return
            ledger = TChainState.of(self.swarm).ledger
            now = self.sim.now
            for tx_id in list(self.pending_sealed):
                tx = ledger.get(tx_id)
                if not tx.is_open:
                    continue
                delivered = tx.delivered_at if tx.delivered_at \
                    is not None else now
                if now - delivered < _STALE_SEALED_AFTER_S:
                    continue
                sealed = self.pending_sealed.pop(tx_id)
                self.book.unexpect(sealed.piece_index)
                if tx_id in self.obligations:
                    self.obligations.remove(tx_id)
                ledger.abort(tx_id, now)
                ledger.terminate_chain(tx.chain_id, now)

        # -- whitewashing ----------------------------------------------
        def on_piece_completed(self, piece: int) -> None:
            super().on_piece_completed(piece)
            if options.whitewash and self.active:
                # A rational attacker resets its identity only after
                # extracting a *usable* piece — that is what wipes the
                # negative history worth wiping (Sec. IV-C).  Under
                # T-Chain pieces arrive encrypted and useless, so the
                # trigger never fires and flow-control bans stick
                # (Sec. III-A3).  Reconnect after the current event
                # settles, as a real client would drop and redial TCP.
                self.sim.call_now(self._whitewash_now)

        def _whitewash_now(self) -> None:
            if not self.active:
                return
            old_id = self.id
            new_id = self.whitewash()
            if new_id != old_id:
                self.whitewash_count += 1
                if options.collude and is_tchain:
                    colluders = TChainState.of(self.swarm).colluders
                    colluders.discard(old_id)
                    colluders.add(new_id)

        def on_whitewash(self) -> None:
            if is_tchain:
                # A new identity walks away from old obligations.
                self.obligations.clear()

        # -- T-Chain reporting policy ----------------------------------
        if is_tchain:
            def _report_as_payee(self, prev) -> None:
                if self.swarm.config.freeriders_send_reports:
                    super()._report_as_payee(prev)

    FreeRider.__name__ = f"FreeRiding{leecher_cls.__name__}"
    FreeRider.__qualname__ = FreeRider.__name__
    _CLASS_CACHE[cache_key] = FreeRider
    return FreeRider


def make_freerider_factory(swarm, leecher_cls: Type,
                           options: FreeRiderOptions = FreeRiderOptions()):
    """A zero-argument factory for arrival schedules."""
    cls = make_freerider(leecher_cls, options)
    return lambda: cls(swarm)
