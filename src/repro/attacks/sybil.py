"""The Sybil attack: one attacker, many identities.

A Sybil attacker runs ``m`` apparent peers that pool a single piece
book: anything any identity downloads benefits all of them.  Against
altruism-based schemes this multiplies the attacker's share of
optimistic unchokes; against T-Chain the identities are just more
requestors that never reciprocate, and (per Sec. III-A4) a Sybil pair
can only cheat when one identity is the requestor and another the
payee of the same transaction — the probability the paper bounds by
P_s (see :mod:`repro.models.collusion`).

Sybil identities built here are free-riders; in T-Chain swarms they
register as colluders so a designated Sybil payee files false reports
for its siblings — the mechanism the Sybil attack reduces to.
"""

from __future__ import annotations

from typing import List, Type

from repro.attacks.freerider import FreeRiderOptions, make_freerider
from repro.bt.torrent import PieceBook


def make_sybil_group(swarm, leecher_cls: Type, size: int,
                     options: FreeRiderOptions = FreeRiderOptions(
                         large_view=True, whitewash=False, collude=True),
                     ) -> List:
    """Create ``size`` Sybil identities sharing one piece book.

    The peers are constructed but not joined; callers schedule their
    arrivals.  All identities share the same :class:`PieceBook`, so a
    piece completed by any of them counts for all.
    """
    if size < 1:
        raise ValueError("a Sybil group needs at least one identity")
    cls = make_freerider(leecher_cls, options)
    shared_book = PieceBook(swarm.torrent)
    group = []
    for _ in range(size):
        peer = cls(swarm, peer_id=swarm.new_peer_id("Y"))
        peer.book = shared_book
        group.append(peer)
    return group
