"""BitTorrent substrate and the evaluated protocols.

This package contains everything the paper's Section IV experiments
run on: the swarm machinery (tracker, topology-driven peer lifecycle,
piece bookkeeping, tit-for-tat choking) and the five protocol
implementations — original BitTorrent, PropShare, FairTorrent, Random
BitTorrent, and T-Chain applied to BitTorrent.
"""

from repro.bt.config import SwarmConfig
from repro.bt.swarm import Swarm
from repro.bt.torrent import Torrent
from repro.bt.tracker import Tracker

__all__ = ["Swarm", "SwarmConfig", "Torrent", "Tracker"]
