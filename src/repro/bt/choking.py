"""Rate-based tit-for-tat choking (Sec. II-A).

A leecher unchokes the ``k`` interested neighbors that uploaded the
most to it over the last rechoke interval (k = 4), plus one optimistic
unchoke rotated every 30 seconds.  :class:`ContributionTracker` keeps
the per-interval byte counts; :class:`Choker` turns them into an
unchoke set.  PropShare reuses the tracker to weight its proportional
allocation, and FairTorrent's deficits live in their own ledger
(:class:`DeficitLedger`) since they never reset.
"""

from __future__ import annotations

from random import Random
from typing import Dict, Iterable, List, Optional, Set


class ContributionTracker:
    """Bytes received from each neighbor during the current interval."""

    def __init__(self):
        self._current: Dict[str, float] = {}
        self._last: Dict[str, float] = {}

    def record(self, neighbor_id: str, kb: float) -> None:
        """Record ``kb`` received from a neighbor now."""
        self._current[neighbor_id] = self._current.get(neighbor_id, 0) + kb

    def roll(self) -> None:
        """Close the interval: current counts become last-round counts."""
        self._last = self._current
        self._current = {}

    def last_round(self, neighbor_id: str) -> float:
        """KB received from the neighbor in the previous interval."""
        return self._last.get(neighbor_id, 0.0)

    def last_round_weights(self) -> Dict[str, float]:
        """All previous-interval counts (copy)."""
        return dict(self._last)

    def forget(self, neighbor_id: str) -> None:
        """Drop all state about a departed (or whitewashed) neighbor."""
        self._current.pop(neighbor_id, None)
        self._last.pop(neighbor_id, None)


class Choker:
    """Top-k-by-contribution unchoking with optimistic rotation."""

    def __init__(self, regular_slots: int, rng: Random):
        self.regular_slots = regular_slots
        self.rng = rng
        self.unchoked: Set[str] = set()
        self.optimistic: Optional[str] = None

    def rechoke(self, interested: Iterable[str],
                tracker: ContributionTracker) -> Set[str]:
        """Recompute the regular unchoke set.

        Top contributors first; remaining regular slots are filled with
        random interested neighbors (newcomers have zero contribution,
        so without the random fill a cold swarm would deadlock — real
        clients behave the same through the optimistic slot churn).
        """
        pool: List[str] = sorted(interested)
        contributors = [n for n in pool if tracker.last_round(n) > 0]
        contributors.sort(key=lambda n: (-tracker.last_round(n), n))
        chosen = contributors[:self.regular_slots]
        if len(chosen) < self.regular_slots:
            chosen_set = set(chosen)
            rest = [n for n in pool if n not in chosen_set]
            self.rng.shuffle(rest)
            chosen.extend(rest[:self.regular_slots - len(chosen)])
        self.unchoked = set(chosen)
        return self.unchoked

    def rotate_optimistic(self, interested: Iterable[str]) -> Optional[str]:
        """Pick a new optimistic unchoke among choked interested
        neighbors, regardless of upload history (Sec. II-A).

        The incumbent optimistic is excluded whenever another choked
        interested neighbor exists, so a rotation actually rotates:
        on small neighborhoods re-picking the incumbent forever would
        silently stall the 30 s optimistic churn.  With the incumbent
        as the only candidate it keeps the slot (dropping it would
        idle the slot for no benefit).
        """
        pool = sorted(n for n in interested
                      if n not in self.unchoked)
        if self.optimistic is not None and len(pool) > 1:
            pool = [n for n in pool if n != self.optimistic]
        self.optimistic = self.rng.choice(pool) if pool else None
        return self.optimistic

    def all_unchoked(self) -> Set[str]:
        """Regular plus optimistic unchokes."""
        result = set(self.unchoked)
        if self.optimistic is not None:
            result.add(self.optimistic)
        return result

    def forget(self, neighbor_id: str) -> None:
        """A neighbor departed."""
        self.unchoked.discard(neighbor_id)
        if self.optimistic == neighbor_id:
            self.optimistic = None


class DeficitLedger:
    """FairTorrent's per-neighbor deficits (Sec. V, [12]).

    ``deficit(n) = KB sent to n − KB received from n``.  FairTorrent
    serves the interested neighbor with the lowest deficit, achieving
    fairness without choking rounds.  Deficits persist for the
    lifetime of the (neighbor-id, peer) relationship — which is exactly
    what whitewashing resets (Sec. IV-C).
    """

    def __init__(self):
        self._sent: Dict[str, float] = {}
        self._received: Dict[str, float] = {}

    def on_sent(self, neighbor_id: str, kb: float) -> None:
        """Record an upload to the neighbor."""
        self._sent[neighbor_id] = self._sent.get(neighbor_id, 0) + kb

    def on_received(self, neighbor_id: str, kb: float) -> None:
        """Record a download from the neighbor."""
        self._received[neighbor_id] = (
            self._received.get(neighbor_id, 0) + kb)

    def deficit(self, neighbor_id: str) -> float:
        """Current deficit for the neighbor (0 for strangers)."""
        return (self._sent.get(neighbor_id, 0.0)
                - self._received.get(neighbor_id, 0.0))

    def lowest_deficit(self, neighbor_ids: Iterable[str]) -> List[str]:
        """Neighbors tied at the minimum deficit."""
        ids = sorted(neighbor_ids)
        if not ids:
            return []
        low = min(self.deficit(n) for n in ids)
        return [n for n in ids if self.deficit(n) == low]

    def forget(self, neighbor_id: str) -> None:
        """Drop state for a departed (or whitewashed) neighbor."""
        self._sent.pop(neighbor_id, None)
        self._received.pop(neighbor_id, None)
