"""Columnar swarm state: dense rows + bitmask piece books.

The object model keeps per-peer piece state in four Python ``set``
objects per :class:`~repro.bt.torrent.PieceBook` and answers every
serving question by walking peer object graphs.  At 10^5 peers the
sets dominate memory and the per-neighbor set intersections dominate
time.  This module provides the flat backend of ROADMAP item 1:

* :class:`ColumnarBook` — a drop-in ``PieceBook`` replacement that
  stores *completed*/*expected*/*wanted* as integer bitmasks (one bit
  per piece).  Predicates like ``needs_from`` become single ``&``
  operations; the listener contract (``on_wanted_removed`` **before**
  ``on_completed_added``) and every event order are preserved exactly,
  so the interest index and the sanitizer cannot tell the difference.
* :class:`ColumnarState` — a per-swarm table mapping peer ids to dense
  row indexes with flat columns (peer object, book, liveness, sorted
  neighbor adjacency) that the protocol scans operate on wholesale
  instead of re-deriving neighbor lists from dicts of objects.

Trace neutrality is the hard contract (the same one the interest index
satisfies, see :mod:`repro.bt.interest`): every fast path iterates
neighbors in the ``topology.sorted_neighbors()`` order, applies
predicates whose truth values provably equal the naive ones, and feeds
identical candidate lists to identical rng draws.  ``ColumnarBook``'s
set-returning views materialize sets whose *elements* equal the naive
live sets; every consumer in the tree is iteration-order-independent
(boolean predicates, membership tests, and min/sorted-pool/rng.choice
aggregations), which ``tests/test_columnar.py`` pins with full-trace
diffs across protocols and seeds.

Adoption happens in :meth:`repro.bt.swarm.Swarm.register` by mutating
``peer.book.__class__`` in place rather than swapping the object:
books are replaced after construction (``runner`` pre-seeds partial
books) and even *shared* between peers (the Sybil group pools one
book), so preserving object identity is what keeps every outstanding
reference — and the single-listener slot — coherent.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.bt.torrent import PieceBook

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.peer import Peer
    from repro.bt.swarm import Swarm

try:  # Python >= 3.10
    _popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def mask_to_set(mask: int) -> Set[int]:
    """The set of bit positions in ``mask``."""
    out = set()
    while mask:
        low = mask & -mask
        out.add(low.bit_length() - 1)
        mask ^= low
    return out


def set_to_mask(pieces) -> int:
    """Pack an iterable of piece indices into a bitmask."""
    mask = 0
    for piece in pieces:
        mask |= 1 << piece
    return mask


class ColumnarBook(PieceBook):
    """A ``PieceBook`` whose state is three bitmasks.

    Invariants mirror the set model exactly: ``missing = ~completed``,
    ``wanted = missing & ~expected``; ``add_completed`` fires
    ``on_wanted_removed`` before ``on_completed_added``.  Instances
    are normally produced by :func:`adopt_book`, which transmutes an
    existing ``PieceBook`` in place.
    """

    def __init__(self, torrent, initial_pieces=()):
        self.torrent = torrent
        self._cmask = 0
        self._emask = 0
        self._wmask = (1 << torrent.n_pieces) - 1
        self._ccount = 0
        self._listener = None
        self._listener_owner = None
        for piece in initial_pieces:
            self.add_completed(piece)

    # -- completed ------------------------------------------------------
    @property
    def completed(self) -> Set[int]:
        """Completed piece indices (materialized from the mask)."""
        return mask_to_set(self._cmask)

    def add_completed(self, piece: int) -> bool:
        self._check(piece)
        bit = 1 << piece
        self._emask &= ~bit
        if self._cmask & bit:
            return False
        self._cmask |= bit
        self._ccount += 1
        listener = self._listener
        if self._wmask & bit:
            self._wmask &= ~bit
            # Same event order as PieceBook: wanted_removed first, so
            # the index never sees this peer want its own new piece.
            if listener is not None:
                listener.on_wanted_removed(self._listener_owner, piece)
        if listener is not None:
            listener.on_completed_added(self._listener_owner, piece)
        return True

    def has(self, piece: int) -> bool:
        return bool(self._cmask >> piece & 1)

    @property
    def completed_count(self) -> int:
        return self._ccount

    @property
    def is_complete(self) -> bool:
        return self._ccount == self.torrent.n_pieces

    # -- expected -------------------------------------------------------
    def expect(self, piece: int) -> None:
        self._check(piece)
        bit = 1 << piece
        if not self._cmask & bit:
            self._emask |= bit
            if self._wmask & bit:
                self._wmask &= ~bit
                if self._listener is not None:
                    self._listener.on_wanted_removed(
                        self._listener_owner, piece)

    def unexpect(self, piece: int) -> None:
        bit = 1 << piece
        self._emask &= ~bit
        if not self._cmask & bit and not self._wmask & bit:
            self._wmask |= bit
            if self._listener is not None:
                self._listener.on_wanted_added(
                    self._listener_owner, piece)

    def is_expected(self, piece: int) -> bool:
        return bool(self._emask >> piece & 1)

    # -- derived sets ---------------------------------------------------
    def missing(self) -> Set[int]:
        full = (1 << self.torrent.n_pieces) - 1
        return mask_to_set(full & ~self._cmask)

    def wanted(self) -> Set[int]:
        return mask_to_set(self._wmask)

    def needs_from(self, other_completed) -> Set[int]:
        wmask = self._wmask
        return {p for p in other_completed if wmask >> p & 1}

    def wants(self, piece: int) -> bool:
        return bool(self._wmask >> piece & 1)

    def _wanted_nonempty(self) -> bool:
        return bool(self._wmask)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ColumnarBook({self._ccount}/"
                f"{self.torrent.n_pieces} done, "
                f"{_popcount(self._emask)} expected)")


def adopt_book(book: PieceBook) -> ColumnarBook:
    """Transmute a ``PieceBook`` into a :class:`ColumnarBook` in place.

    The object identity is preserved on purpose: books get replaced
    after peer construction and shared across Sybil identities, so
    every outstanding reference must keep seeing the live state.
    Idempotent for books that are already columnar.
    """
    if isinstance(book, ColumnarBook):
        return book
    cmask = set_to_mask(book._completed)
    emask = set_to_mask(book._expected)
    wmask = set_to_mask(book._wanted)
    ccount = len(book._completed)
    del book._completed, book._expected, book._missing, book._wanted
    book.__class__ = ColumnarBook
    book._cmask = cmask
    book._emask = emask
    book._wmask = wmask
    book._ccount = ccount
    return book


class ColumnarState:
    """Dense per-peer rows with flat columns for wholesale scans.

    Rows are allocated at :meth:`adopt` (``Swarm.register``) and
    recycled at :meth:`release` (``Swarm.deregister``); ``alive``
    mirrors ``peer.active`` through ``Swarm.note_deactivated``, so a
    row filter on ``alive`` equals the ``neighbor_peers()`` activity
    filter at every scan instant.  Adjacency is kept as two parallel
    per-row lists — neighbor ids sorted lexicographically and their
    row indexes — matching ``topology.sorted_neighbors()`` order
    element for element.
    """

    def __init__(self, swarm: "Swarm"):
        self.swarm = swarm
        self.n_pieces = swarm.torrent.n_pieces
        self.full_mask = (1 << self.n_pieces) - 1
        self.row_of: Dict[str, int] = {}
        self.ids: List[Optional[str]] = []
        self.objs: List[Optional["Peer"]] = []
        self.books: List[Optional[ColumnarBook]] = []
        self.alive: List[bool] = []
        self.adj_ids: List[List[str]] = []
        self.adj_rows: List[List[int]] = []
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self.row_of)

    # ------------------------------------------------------------------
    # Lifecycle (driven by Swarm.register / note_deactivated /
    # deregister / rebrand)
    # ------------------------------------------------------------------
    def adopt(self, peer: "Peer") -> int:
        """Allocate a row for a registering peer and columnarize its
        book (idempotent on the book: a shared or rejoining book is
        transmuted once and reused)."""
        pid = peer.id
        row = self.row_of.get(pid)
        if row is not None:
            return row
        book = adopt_book(peer.book)
        if self._free:
            row = self._free.pop()
            self.ids[row] = pid
            self.objs[row] = peer
            self.books[row] = book
            self.alive[row] = True
        else:
            row = len(self.ids)
            self.ids.append(pid)
            self.objs.append(peer)
            self.books.append(book)
            self.alive.append(True)
            self.adj_ids.append([])
            self.adj_rows.append([])
        self.row_of[pid] = row
        return row

    def on_deactivated(self, peer: "Peer") -> None:
        """Mirror ``active = False`` the instant it happens."""
        row = self.row_of.get(peer.id)
        if row is not None:
            self.alive[row] = False

    def release(self, peer_id: str) -> None:
        """Free a departed peer's row (edges were already severed by
        ``topology.remove_peer``).  The book keeps its masks and stays
        fully functional detached — metrics and late ``unexpect`` calls
        read it after deregistration."""
        row = self.row_of.pop(peer_id, None)
        if row is None:
            return
        self.ids[row] = None
        self.objs[row] = None
        self.books[row] = None
        self.alive[row] = False
        self.adj_ids[row].clear()
        self.adj_rows[row].clear()
        self._free.append(row)

    # ------------------------------------------------------------------
    # Topology events (fanned out by Swarm._on_edge_added/_removed)
    # ------------------------------------------------------------------
    def on_edge_added(self, a: str, b: str) -> None:
        row_a = self.row_of.get(a)
        row_b = self.row_of.get(b)
        if row_a is None or row_b is None:
            return
        self._insert(row_a, b, row_b)
        self._insert(row_b, a, row_a)

    def on_edge_removed(self, a: str, b: str) -> None:
        row_a = self.row_of.get(a)
        row_b = self.row_of.get(b)
        if row_a is not None:
            self._remove(row_a, b)
        if row_b is not None:
            self._remove(row_b, a)

    def _insert(self, row: int, nid: str, nrow: int) -> None:
        ids = self.adj_ids[row]
        # bisect has no key= before 3.10; the parallel-list insert is
        # the portable equivalent.
        pos = bisect_left(ids, nid)
        if pos < len(ids) and ids[pos] == nid:
            return
        ids.insert(pos, nid)
        self.adj_rows[row].insert(pos, nrow)

    def _remove(self, row: int, nid: str) -> None:
        ids = self.adj_ids[row]
        pos = bisect_left(ids, nid)
        if pos < len(ids) and ids[pos] == nid:
            del ids[pos]
            del self.adj_rows[row][pos]

    # ------------------------------------------------------------------
    # Wholesale scans (trace-equal to the naive object walks)
    # ------------------------------------------------------------------
    def has_provider(self, peer: "Peer") -> bool:
        """Does any live neighbor hold a piece ``peer`` wants?

        Equals ``any(wanted & p.book.completed for p in
        peer.neighbor_peers())``.
        """
        row = self.row_of.get(peer.id)
        if row is None:
            return False
        wmask = peer.book._wmask
        books = self.books
        alive = self.alive
        for nrow in self.adj_rows[row]:
            if alive[nrow] and books[nrow]._cmask & wmask:
                return True
        return False

    def interested_ids(self, peer: "Peer") -> List[str]:
        """Live neighbors wanting >=1 of ``peer``'s completed pieces,
        in sorted-id order (equals the naive ``interested_neighbors``
        fallback element for element)."""
        row = self.row_of.get(peer.id)
        if row is None:
            return []
        cmask = peer.book._cmask
        books = self.books
        alive = self.alive
        adj_rows = self.adj_rows[row]
        return [nid
                for pos, nid in enumerate(self.adj_ids[row])
                if alive[nrow := adj_rows[pos]]
                and books[nrow]._wmask & cmask]

    def availability(self, peer: "Peer", cand_mask: int
                     ) -> Dict[int, int]:
        """``{piece: copies among live neighbors}`` for the candidate
        pieces, keyed in ascending piece order.

        Feeding the result through
        :func:`repro.bt.piece_selection.rarest_of` reproduces the
        naive ``local_rarest_first`` choice bit for bit: the counts
        equal the naive availability and the tie-break (sorted pool,
        one ``rng.choice``) is shared code.
        """
        counts: Dict[int, int] = {}
        mask = cand_mask
        while mask:
            low = mask & -mask
            counts[low.bit_length() - 1] = 0
            mask ^= low
        row = self.row_of.get(peer.id)
        if row is None:
            return counts
        books = self.books
        alive = self.alive
        for nrow in self.adj_rows[row]:
            if not alive[nrow]:
                continue
            overlap = books[nrow]._cmask & cand_mask
            while overlap:
                low = overlap & -overlap
                counts[low.bit_length() - 1] += 1
                overlap ^= low
        return counts

    def live_neighbors(self, peer: "Peer"):
        """Live neighbor ``Peer`` objects in sorted-id order (equals
        ``peer.neighbor_peers()``)."""
        row = self.row_of.get(peer.id)
        if row is None:
            return []
        objs = self.objs
        alive = self.alive
        return [objs[nrow] for nrow in self.adj_rows[row]
                if alive[nrow]]

    # ------------------------------------------------------------------
    # Self-check (the churn property test runs this after every event)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert rows, liveness, adjacency and masks all equal a
        from-scratch rebuild from the object model."""
        swarm = self.swarm
        assert set(self.row_of) == set(swarm.peers), (
            f"rows {sorted(self.row_of)} != peers "
            f"{sorted(swarm.peers)}")
        topology = swarm.topology
        for pid, row in self.row_of.items():
            peer = swarm.peers[pid]
            assert self.ids[row] == pid
            assert self.objs[row] is peer
            book = peer.book
            assert isinstance(book, ColumnarBook), (
                f"{pid} book not adopted: {type(book).__name__}")
            assert self.books[row] is book
            assert self.alive[row] == peer.active, (
                f"alive[{pid}]={self.alive[row]} != "
                f"active={peer.active}")
            full = self.full_mask
            assert book._ccount == _popcount(book._cmask)
            assert book._cmask & book._emask == 0
            assert book._wmask == full & ~book._cmask & ~book._emask, (
                f"{pid} wanted mask diverged")
            expected_adj = topology.sorted_neighbors(pid) \
                if pid in topology else []
            assert self.adj_ids[row] == list(expected_adj), (
                f"adj[{pid}] {self.adj_ids[row]} != {expected_adj}")
            assert [self.ids[nrow] for nrow in self.adj_rows[row]] \
                == self.adj_ids[row], f"adj rows of {pid} diverged"
        live_rows = len(self.row_of)
        assert live_rows + len(self._free) == len(self.ids)
