"""Swarm configuration.

Defaults follow the paper's simulation setup (Sec. IV-A):

* seeder upload 6000 Kbps, staying for the whole run;
* leecher uplinks heterogeneous, 400–1200 Kbps;
* 256 KB pieces for BitTorrent/PropShare, 64 KB for T-Chain and
  FairTorrent (FairTorrent's basic exchange unit);
* tracker returns 50 random members, refill below 30 neighbors,
  at most 55 neighbors;
* rechoke every 10 s, optimistic unchoke every 30 s;
* flow-control window k = 2.

The 16 KB *blocks* of BitTorrent/PropShare are not separately
simulated; a piece transfer is the atomic unit (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Paper values (Sec. IV-A): leecher upload bandwidths vary 400-1200 Kbps.
DEFAULT_LEECHER_CAPACITIES = (400.0, 600.0, 800.0, 1000.0, 1200.0)


@dataclass
class SwarmConfig:
    """All tunables of a swarm simulation.

    Attributes mirror Sec. IV-A; see module docstring.  ``n_pieces``
    plus ``piece_size_kb`` define the shared file (the paper's default
    is 128 MB: 512 pieces of 256 KB, or 2048 pieces of 64 KB for
    T-Chain/FairTorrent).
    """

    n_pieces: int = 64
    piece_size_kb: float = 256.0
    seeder_capacity_kbps: float = 6000.0
    leecher_capacities_kbps: Sequence[float] = DEFAULT_LEECHER_CAPACITIES
    upload_slots: int = 4
    optimistic_slots: int = 1  # BitTorrent/PropShare newcomer share (20 %)
    seeder_slots: int = 5
    rechoke_interval_s: float = 10.0
    optimistic_interval_s: float = 30.0
    tracker_list_size: int = 50
    max_neighbors: int = 55
    refill_threshold: int = 30
    control_latency_s: float = 0.05
    flow_control_k: int = 2
    opportunistic_seeding: bool = True
    indirect_reciprocity: bool = True
    newcomer_bootstrap: bool = True
    real_crypto: bool = False
    freeriders_send_reports: bool = True
    seed: int = 0
    max_sim_time_s: Optional[float] = None
    chain_sample_interval_s: float = 10.0
    extra: dict = field(default_factory=dict)

    @property
    def file_size_mb(self) -> float:
        """Size of the shared file in MB."""
        return self.n_pieces * self.piece_size_kb / 1024.0

    @property
    def total_upload_slots(self) -> int:
        """Slots on a BitTorrent-style uplink (regular + optimistic)."""
        return self.upload_slots + self.optimistic_slots

    def piece_transfer_time(self, capacity_kbps: float,
                            n_slots: int) -> float:
        """Seconds to push one piece over one slot of ``capacity/n``."""
        return self.piece_size_kb * 8.0 / (capacity_kbps / n_slots)

    def with_overrides(self, **kwargs) -> "SwarmConfig":
        """A copy with the given fields replaced."""
        from dataclasses import replace
        return replace(self, **kwargs)
