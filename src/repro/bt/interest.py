"""Incremental swarm-level interest index.

Every upload decision in every protocol asks some variant of one
question: *which neighbors want a piece that some peer holds?*  The
naive answer is a set intersection per neighbor per decision
(``peer.book.wanted() & holder.book.completed``), which made the
protocol layer — payee scans, rechoke interest checks, rarest-first
counting — cost O(neighbors x pieces) on every pump while the
underlying books change only O(1) per transfer.

:class:`InterestIndex` inverts that: it maintains, incrementally,

* ``_wanters``  — piece -> {tracked peers that want it};
* ``_havers``   — piece -> {tracked peers that completed it};
* ``_rows``     — holder id -> {wanter id: |holder.completed ∩
  wanter.wanted|}, sparse (entries exist only while the count is
  positive), so *"is W interested in H"* is one dict lookup;
* ``_avail``    — chooser id -> {piece: copies among the chooser's
  tracked topology neighbors}, the Local-Rarest-First input.

Invalidation contract (who notifies the index, and when):

* **PieceBook** calls :meth:`on_wanted_added` / :meth:`on_wanted_removed`
  / :meth:`on_completed_added` from the three mutation points
  (``add_completed`` / ``expect`` / ``unexpect``) through the listener
  installed by :meth:`add_peer`.  ``add_completed`` emits
  ``wanted_removed`` *before* ``completed_added`` so a peer can never
  transiently appear interested in itself.
* **Topology** fires ``on_edge_added`` / ``on_edge_removed`` on every
  edge change (including :meth:`~repro.net.topology.Topology.remove_peer`,
  which fires them *before* the protocol-facing ``on_disconnect``
  callbacks, whose handlers re-enter with refills and pumps).
* **Swarm lifecycle**: ``Swarm.register`` and ``Swarm.rebrand`` call
  :meth:`add_peer`; every deactivation path (``leave``, ``crash``,
  ``whitewash``) calls :meth:`remove_peer` via
  ``Swarm.note_deactivated`` immediately after ``active = False`` —
  *before* transfer cancellations pump other peers — so the tracked
  set always equals the set of active registered peers, the same
  predicate ``Peer.neighbor_peers`` applies.  A whitewashing peer's
  book mutates while untracked (dropped sealed pieces are
  un-expected); :meth:`add_peer` re-snapshots the book on rebrand, so
  those silent mutations are absorbed exactly.
* **FlowController** reports pending-window boundary crossings through
  ``on_window_change``; the per-donor blocked set lives on the peer
  (``_flow_blocked``) and mirrors ``flow.eligible`` bit for bit.

Trace-neutrality argument: the index stores *counts of* — never
replacements for — the naive intersections, and every consumer keeps
iterating ``topology.sorted_neighbors()`` in the same order, applying
boolean predicates whose truth values provably equal the naive ones.
Candidate lists therefore come out identical element for element, no
rng draw moves, and a run with the index on is bit-identical to one
with it off (asserted by ``tests/test_interest_index.py`` over full
event traces and by the randomized-churn property test).

The naive fallbacks for every ``wanted() & ...`` predicate live here
(not in the protocol modules) on purpose: simlint rule SL010 flags
direct wanted-set intersections inside ``bt/protocols/`` so consumers
cannot quietly reintroduce the rescans.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Mapping,
    Optional,
    Set,
    TYPE_CHECKING,
)

from repro.bt.columnar import ColumnarBook, _popcount, mask_to_set

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.peer import Peer
    from repro.bt.swarm import Swarm

#: Shared empty results so queries about untracked peers allocate
#: nothing.  Treat as read-only.
_EMPTY_ROW: Mapping[str, int] = {}
_EMPTY_IDS: frozenset = frozenset()


class InterestIndex:
    """Reverse interest maps for one swarm (see module docstring)."""

    def __init__(self, swarm: "Swarm"):
        self.swarm = swarm
        #: id -> Peer for every *active registered* peer.
        self._tracked: Dict[str, "Peer"] = {}
        self._wanters: Dict[int, Set[str]] = {}
        self._havers: Dict[int, Set[str]] = {}
        self._rows: Dict[str, Dict[str, int]] = {}
        self._avail: Dict[str, Dict[int, int]] = {}

    # ------------------------------------------------------------------
    # Queries (the hot path: plain dict lookups, no allocation)
    # ------------------------------------------------------------------
    def tracks(self, peer_id: str) -> bool:
        """True while the peer is active and registered."""
        return peer_id in self._tracked

    def row(self, holder_id: str) -> Mapping[str, int]:
        """``{wanter_id: overlap}`` for peers interested in the holder.

        ``wanter in row`` is exactly ``bool(wanter.book.wanted() &
        holder.book.completed)`` for tracked peers; untracked holders
        return an empty mapping (matching the active-peer filter of
        the naive scans).
        """
        return self._rows.get(holder_id, _EMPTY_ROW)

    def wanters(self, piece: int) -> frozenset:
        """Tracked peers that currently want ``piece``."""
        return self._wanters.get(piece, _EMPTY_IDS)

    def wants(self, peer_id: str, piece: int) -> bool:
        """Does the (tracked) peer want ``piece``?"""
        return peer_id in self._wanters.get(piece, _EMPTY_IDS)

    def wants_any(self, peer_id: str, pieces: Iterable[int]) -> bool:
        """Does the (tracked) peer want at least one of ``pieces``?"""
        wanters = self._wanters
        for piece in pieces:
            if peer_id in wanters.get(piece, _EMPTY_IDS):
                return True
        return False

    def avail(self, chooser_id: str) -> Mapping[int, int]:
        """``{piece: copies}`` among the chooser's active neighbors
        (missing key = zero copies)."""
        return self._avail.get(chooser_id, _EMPTY_ROW)

    # ------------------------------------------------------------------
    # Peer lifecycle
    # ------------------------------------------------------------------
    def add_peer(self, peer: "Peer") -> None:
        """Start tracking a peer (registration or rebrand).

        Snapshots the live book — absorbing any mutations that
        happened while the peer was untracked — and builds its
        interest row, column and availability entries against every
        currently tracked peer.
        """
        pid = peer.id
        if pid in self._tracked:
            return
        book = peer.book
        wanted = book.wanted()
        completed = book.completed
        tracked = self._tracked
        rows = self._rows
        row: Dict[str, int] = {}
        use_masks = isinstance(book, ColumnarBook)
        for other_id, other in tracked.items():
            other_book = other.book
            if use_masks and isinstance(other_book, ColumnarBook):
                # Same counts as the set intersections below, via
                # bitmask AND + popcount (no set materialization).
                count = _popcount(book._cmask & other_book._wmask)
                if count:
                    row[other_id] = count
                count = _popcount(other_book._cmask & book._wmask)
            else:
                count = len(completed & other_book.wanted())
                if count:
                    row[other_id] = count
                count = len(other_book.completed & wanted)
            if count:
                rows[other_id][pid] = count
        rows[pid] = row
        tracked[pid] = peer
        for piece in wanted:
            self._wanters.setdefault(piece, set()).add(pid)
        for piece in completed:
            self._havers.setdefault(piece, set()).add(pid)
        # Availability: peers are normally tracked before their first
        # edge exists (register/rebrand precede the connect loop), but
        # rebuild from the topology for robustness.
        avail = self._avail
        avail_row: Dict[int, int] = {}
        topology = self.swarm.topology
        if pid in topology:
            for nid in topology.neighbors(pid):
                other = tracked.get(nid)
                if other is None or other is peer:
                    continue
                for piece in other.book.completed:
                    avail_row[piece] = avail_row.get(piece, 0) + 1
                other_row = avail[nid]
                for piece in completed:
                    other_row[piece] = other_row.get(piece, 0) + 1
        avail[pid] = avail_row
        book.set_listener(self, pid)

    def remove_peer(self, peer: "Peer") -> None:
        """Stop tracking a peer the moment it deactivates.

        Idempotent: the deregister path calls it again as a backstop.
        """
        pid = peer.id
        if self._tracked.pop(pid, None) is None:
            return
        book = peer.book
        book.set_listener(None, None)
        wanters = self._wanters
        for piece in book.wanted():
            ids = wanters.get(piece)
            if ids is not None:
                ids.discard(pid)
        completed = book.completed
        havers = self._havers
        for piece in completed:
            ids = havers.get(piece)
            if ids is not None:
                ids.discard(pid)
        self._rows.pop(pid, None)
        for other_row in self._rows.values():
            other_row.pop(pid, None)
        self._avail.pop(pid, None)
        # The peer's edges are severed *after* deactivation (topology
        # removal fires for untracked endpoints and is ignored), so
        # its completed pieces leave the neighbors' counts here.
        topology = self.swarm.topology
        if completed and pid in topology:
            avail = self._avail
            for nid in topology.neighbors(pid):
                row = avail.get(nid)
                if row is not None:
                    _dec_all(row, completed)

    # ------------------------------------------------------------------
    # PieceBook events (via the listener installed by add_peer)
    # ------------------------------------------------------------------
    def on_wanted_added(self, pid: str, piece: int) -> None:
        self._wanters.setdefault(piece, set()).add(pid)
        rows = self._rows
        for holder in self._havers.get(piece, _EMPTY_IDS):
            row = rows[holder]
            row[pid] = row.get(pid, 0) + 1

    def on_wanted_removed(self, pid: str, piece: int) -> None:
        ids = self._wanters.get(piece)
        if ids is not None:
            ids.discard(pid)
        rows = self._rows
        for holder in self._havers.get(piece, _EMPTY_IDS):
            row = rows[holder]
            count = row.get(pid, 0)
            if count <= 1:
                row.pop(pid, None)
            else:
                row[pid] = count - 1

    def on_completed_added(self, pid: str, piece: int) -> None:
        self._havers.setdefault(piece, set()).add(pid)
        row = self._rows[pid]
        for wanter in self._wanters.get(piece, _EMPTY_IDS):
            row[wanter] = row.get(wanter, 0) + 1
        tracked = self._tracked
        avail = self._avail
        for nid in self.swarm.topology.neighbors(pid):
            if nid in tracked:
                neighbor_row = avail[nid]
                neighbor_row[piece] = neighbor_row.get(piece, 0) + 1

    # ------------------------------------------------------------------
    # Topology events
    # ------------------------------------------------------------------
    def on_edge_added(self, a: str, b: str) -> None:
        tracked = self._tracked
        peer_a, peer_b = tracked.get(a), tracked.get(b)
        if peer_a is None or peer_b is None:
            return
        avail = self._avail
        row = avail[a]
        for piece in peer_b.book.completed:
            row[piece] = row.get(piece, 0) + 1
        row = avail[b]
        for piece in peer_a.book.completed:
            row[piece] = row.get(piece, 0) + 1

    def on_edge_removed(self, a: str, b: str) -> None:
        # Untracked endpoints were already subtracted by remove_peer.
        tracked = self._tracked
        peer_a, peer_b = tracked.get(a), tracked.get(b)
        if peer_a is None or peer_b is None:
            return
        avail = self._avail
        _dec_all(avail[a], peer_b.book.completed)
        _dec_all(avail[b], peer_a.book.completed)

    # ------------------------------------------------------------------
    # Self-check (the churn property test runs this after every event)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert every map equals a from-scratch naive rescan."""
        swarm = self.swarm
        expected_tracked = {pid: p for pid, p in swarm.peers.items()  # simlint: disable=SL012 -- consistency checker rebuilds the naive ground truth by design
                            if p.active}
        assert self._tracked == expected_tracked, (
            f"tracked {sorted(self._tracked)} != active "
            f"{sorted(expected_tracked)}")
        peers = self._tracked
        want_sets = {pid: set(p.book.wanted())
                     for pid, p in peers.items()}  # simlint: disable=SL012 -- see above
        have_sets = {pid: set(p.book.completed)
                     for pid, p in peers.items()}  # simlint: disable=SL012 -- see above
        expected_wanters: Dict[int, Set[str]] = {}
        for pid, pieces in want_sets.items():
            for piece in pieces:
                expected_wanters.setdefault(piece, set()).add(pid)
        got_wanters = {p: set(ids) for p, ids in self._wanters.items()
                       if ids}
        assert got_wanters == expected_wanters, "wanters diverged"
        expected_havers: Dict[int, Set[str]] = {}
        for pid, pieces in have_sets.items():
            for piece in pieces:
                expected_havers.setdefault(piece, set()).add(pid)
        got_havers = {p: set(ids) for p, ids in self._havers.items()
                      if ids}
        assert got_havers == expected_havers, "havers diverged"
        assert set(self._rows) == set(peers), "row keyset diverged"
        for holder_id, row in self._rows.items():
            expected_row = {}
            for wanter_id in peers:
                count = len(have_sets[holder_id] & want_sets[wanter_id])
                if count:
                    expected_row[wanter_id] = count
            assert row == expected_row, (
                f"row[{holder_id}] {row} != {expected_row}")
        assert set(self._avail) == set(peers), "avail keyset diverged"
        topology = swarm.topology
        for chooser_id, row in self._avail.items():
            expected_counts: Dict[int, int] = {}
            for nid in topology.neighbors(chooser_id):
                if nid in peers:
                    for piece in have_sets[nid]:
                        expected_counts[piece] = (
                            expected_counts.get(piece, 0) + 1)
            assert row == expected_counts, (
                f"avail[{chooser_id}] {row} != {expected_counts}")


def _dec_all(row: Dict[int, int], pieces: Iterable[int]) -> None:
    """Decrement counts, dropping entries that reach zero."""
    for piece in pieces:
        count = row.get(piece, 0)
        if count <= 1:
            row.pop(piece, None)
        else:
            row[piece] = count - 1


# ----------------------------------------------------------------------
# Predicate helpers with naive fallbacks.
#
# Protocol code calls these instead of intersecting wanted sets
# directly (simlint SL010 enforces it); each returns the same boolean
# the naive intersection would, through the index when the swarm has
# one.  Indexed branches require both peers to be active (= tracked) —
# every call site checks activity first, exactly as the naive scans
# filtered through ``neighbor_peers()``.
# ----------------------------------------------------------------------

def wants_from(swarm: "Swarm", wanter: "Peer", holder: "Peer") -> bool:
    """Does ``wanter`` want at least one piece ``holder`` completed?"""
    index = swarm.interest
    if index is not None:
        return wanter.id in index.row(holder.id)
    wanter_book = wanter.book
    holder_book = holder.book
    if (isinstance(wanter_book, ColumnarBook)
            and isinstance(holder_book, ColumnarBook)):
        return bool(wanter_book._wmask & holder_book._cmask)
    return not wanter_book.wanted().isdisjoint(holder_book.completed)


def wants_any_of(swarm: "Swarm", wanter: "Peer",
                 pieces: Iterable[int]) -> bool:
    """Does ``wanter`` want at least one of ``pieces``?"""
    index = swarm.interest
    if index is not None:
        return index.wants_any(wanter.id, pieces)
    book = wanter.book
    for piece in pieces:
        if book.wants(piece):
            return True
    return False


def offers_interest(swarm: "Swarm", requestor: "Peer",
                    extra: Iterable[int], wanter: "Peer") -> bool:
    """Does ``wanter`` want >=1 of ``requestor``'s completed pieces or
    of ``extra`` (the Sec. II-B2 payee-candidacy predicate, with
    ``extra`` carrying the piece about to be uploaded)?"""
    index = swarm.interest
    if index is not None:
        if wanter.id in index.row(requestor.id):
            return True
        return index.wants_any(wanter.id, extra)
    book = wanter.book
    requestor_book = requestor.book
    if (isinstance(book, ColumnarBook)
            and isinstance(requestor_book, ColumnarBook)):
        if book._wmask & requestor_book._cmask:
            return True
    elif not book.wanted().isdisjoint(requestor_book.completed):
        return True
    for piece in extra:
        if book.wants(piece):
            return True
    return False


def needed_overlap(holder: "Peer", wanter: "Peer") -> Set[int]:
    """``holder.completed ∩ wanter.wanted`` as an actual set — for the
    few callers that need the elements (the bootstrap both-need rule),
    not just the predicate.  Always computed pairwise: the index keeps
    counts, not pair overlaps."""
    holder_book = holder.book
    wanter_book = wanter.book
    if (isinstance(holder_book, ColumnarBook)
            and isinstance(wanter_book, ColumnarBook)):
        return mask_to_set(holder_book._cmask & wanter_book._wmask)
    return holder_book.completed & wanter_book.wanted()
