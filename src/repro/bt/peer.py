"""Base peer machinery shared by every protocol.

A :class:`Peer` owns an uplink, a piece book and the generic serving
loop: whenever an upload slot is free, :meth:`pump` asks the protocol
subclass for the next :class:`UploadPlan` and starts the transfer.
Subclasses implement

* :meth:`next_upload` — whom to serve next and what to send;
* :meth:`on_payload` — what receiving a payload means (baselines
  complete the piece immediately; T-Chain holds sealed pieces);

and may override the lifecycle hooks (:meth:`on_join`,
:meth:`on_leave`, :meth:`on_neighbor_connected`, ...).

Payload accounting (``kb_uploaded`` / ``kb_downloaded``) counts file
pieces only — control messages are free per Sec. III-C — and feeds the
fairness-factor metric of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from repro.bt.columnar import ColumnarBook
from repro.bt.piece_selection import local_rarest_first, rarest_of
from repro.bt.torrent import PieceBook
from repro.net.bandwidth import Transfer, Uplink

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm


@dataclass
class UploadPlan:
    """One piece upload the protocol decided to make.

    ``payload`` is what lands at the receiver (an int piece index for
    plain protocols, a message object for T-Chain); ``size_kb``
    defaults to the torrent's piece size.  ``meta`` is free for the
    protocol; ``uploader_id`` is filled in by :meth:`Peer.start_upload`.
    """

    receiver_id: str
    piece: int
    payload: Any = None
    size_kb: Optional[float] = None
    meta: dict = field(default_factory=dict)
    uploader_id: Optional[str] = None


class Peer:
    """A swarm participant (leecher or seeder)."""

    kind = "leecher"  # metrics label; subclasses override

    def __init__(self, swarm: "Swarm", peer_id: str,
                 capacity_kbps: float, n_slots: int,
                 book: Optional[PieceBook] = None):
        self.swarm = swarm
        self.sim = swarm.sim
        self.id = peer_id
        self.book = book if book is not None else PieceBook(swarm.torrent)
        self.uplink = Uplink(self.sim, capacity_kbps, n_slots)
        self.active = False
        #: True after an *unclean* departure (:meth:`crash`): the host
        #: is dead and processes no further control messages.
        self.crashed = False
        self.join_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.leave_time: Optional[float] = None
        #: when the first piece became usable (bootstrap latency)
        self.first_piece_at: Optional[float] = None
        self.kb_uploaded = 0.0
        self.kb_downloaded = 0.0
        self.pieces_uploaded = 0
        self.pieces_downloaded = 0
        self.unlimited_neighbors = False  # large-view exploit sets this
        self._rescan_task = None
        self._in_flight_to: Set[str] = set()
        # insertion-ordered so cancellation order is deterministic
        self._incoming: Dict[Transfer, None] = {}
        self._outgoing: Dict[Transfer, UploadPlan] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def join(self) -> None:
        """Enter the swarm: announce, connect, start protocol tasks."""
        if self.active:
            raise RuntimeError(f"{self.id} already joined")
        self.active = True
        self.join_time = self.sim.now
        self.swarm.register(self)
        members = self.swarm.tracker.announce(self.id)
        self.swarm.tracker.join(self.id)
        adjacent = self.swarm.topology.neighbors(self.id)
        for other in members:
            if other not in adjacent:
                self.swarm.connect(self.id, other)
        # Periodic re-scan: several serving conditions are time-based
        # (flow windows, backoff expiry, trust/credit changes) and
        # produce no event of their own; real clients re-evaluate on
        # the unchoke cadence, so every peer pumps periodically too.
        from repro.sim.events import PeriodicTask
        self._rescan_task = self.swarm.periodic(
            self.swarm.config.rechoke_interval_s, self._rescan,
            key=self.id) or PeriodicTask(
            self.sim, self.swarm.config.rechoke_interval_s,
            self._rescan)
        self.on_join()
        self.pump()

    def _rescan(self) -> None:
        if not self.active:
            return
        self.on_rescan()
        # Starvation detection: we want pieces but no current neighbor
        # has any of them (e.g. attackers eclipsed the peers that do).
        # A real client goes back to the tracker in that situation.
        if self.book._wanted_nonempty():
            index = self.swarm.interest
            store = self.swarm.columnar
            if index is not None:
                rows = index._rows
                starved = not any(
                    self.id in rows.get(nid, ())
                    for nid in self.swarm.topology.sorted_neighbors(
                        self.id))
            elif store is not None:
                # Mask scan over the adjacency column; equals the
                # naive any() below piece for piece.
                starved = not store.has_provider(self)
            else:
                wanted = self.book.wanted()
                starved = not any(wanted & peer.book.completed
                                  for peer in self.neighbor_peers())
            if starved:
                self.refill_neighbors()
        self.pump()

    def on_rescan(self) -> None:
        """Protocol hook on the periodic re-scan tick."""

    def accepts_connection_from(self, peer_id: str) -> bool:
        """May ``peer_id`` become our neighbor?  Default: yes."""
        return True

    def leave(self) -> None:
        """Exit the swarm, severing connections and transfers."""
        if not self.active:
            return
        self.active = False
        self.leave_time = self.sim.now
        self.swarm.note_deactivated(self)
        if self._rescan_task is not None:
            self._rescan_task.stop()
        self.on_leave()
        # Cancel transfers headed to us; the uploaders get their slots
        # back immediately (they would notice the TCP reset).
        for transfer in list(self._incoming):
            uploader = self.swarm.find_peer(transfer.meta.uploader_id)  # meta is the UploadPlan
            if uploader is not None:
                uploader._cancel_outgoing(transfer)
        self._incoming.clear()
        self.uplink.close()  # cancels our outgoing transfers
        for transfer in list(self._outgoing):
            self._drop_outgoing(transfer)
        self.swarm.tracker.leave(self.id)
        self.swarm.deregister(self)

    def crash(self) -> None:
        """Unclean departure: vanish mid-whatever, no protocol goodbye.

        Unlike :meth:`leave`, the :meth:`on_leave` hook does NOT run —
        no key handover, no payee reassignment, no obligation cleanup
        (Sec. II-B4 describes what a *clean* leaver does; a crash is
        exactly the absence of that).  Transfers sever the way a TCP
        reset would, and the swarm records the peer as departed.  The
        recovery layer of the survivors must cope with everything the
        crash stranded.
        """
        if not self.active:
            return
        self.active = False
        self.crashed = True
        self.leave_time = self.sim.now
        self.swarm.note_deactivated(self)
        if self._rescan_task is not None:
            self._rescan_task.stop()
        for transfer in list(self._incoming):
            uploader = self.swarm.find_peer(transfer.meta.uploader_id)
            if uploader is not None:
                uploader._cancel_outgoing(transfer)
        self._incoming.clear()
        self.uplink.close()
        for transfer in list(self._outgoing):
            self._drop_outgoing(transfer)
        self.swarm.tracker.leave(self.id)
        self.swarm.deregister(self)

    def whitewash(self) -> str:
        """Reconnect under a fresh identity (the whitewashing attack).

        All connections and in-flight transfers drop, neighbors forget
        their local history about the old id, and the peer rejoins as
        an apparent newcomer — keeping its pieces and its download
        counters.  Returns the new id.
        """
        if not self.active:
            return self.id
        # Block inbound plans while connections drop: cancelled
        # uploaders re-pump immediately and must not start transfers
        # addressed to the id we are about to discard.
        self.active = False
        self.swarm.note_deactivated(self)
        for transfer in list(self._incoming):
            uploader = self.swarm.find_peer(transfer.meta.uploader_id)
            if uploader is not None:
                uploader._cancel_outgoing(transfer)
        self._incoming.clear()
        for transfer in list(self._outgoing):
            transfer.cancel()
            self._drop_outgoing(transfer)
        self.on_whitewash()
        self.active = True
        new_id = self.swarm.rebrand(self)
        self.on_rebranded()
        return new_id

    def on_whitewash(self) -> None:
        """Protocol hook fired just before an identity change."""

    def on_rebranded(self) -> None:
        """Protocol hook fired after the new identity is connected."""

    def refill_neighbors(self) -> None:
        """Ask the tracker for more members when running low."""
        if not self.active:
            return
        # Tracker refills mostly return peers we already know;
        # ``Swarm.connect`` treats those as no-ops, so skip the call.
        adjacent = self.swarm.topology.neighbors(self.id)
        for other in self.swarm.tracker.announce(self.id):
            if other not in adjacent:
                self.swarm.connect(self.id, other)

    # ------------------------------------------------------------------
    # Serving loop
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Start uploads while slots are free and work exists."""
        uplink = self.uplink
        if not self.active or uplink.capacity_kbps <= 0:
            return
        n_slots = uplink.n_slots
        while uplink.busy_slots < n_slots:
            plan = self.next_upload()
            if plan is None:
                return
            started = self.start_upload(plan)
            if not started:
                self.on_plan_failed(plan)
                return

    def start_upload(self, plan: UploadPlan) -> bool:
        """Begin the transfer described by ``plan``."""
        receiver = self.swarm.find_peer(plan.receiver_id)
        if receiver is None or not receiver.active:
            return False
        size = (plan.size_kb if plan.size_kb is not None
                else self.swarm.torrent.piece_size_kb)
        plan.uploader_id = self.id
        floor_s = 0.0
        net = self.swarm.net
        if net is not None and not net._inert:
            # Delivery cannot beat the path: propagation + bottleneck
            # serialization floors the slot time.  None means no route
            # (severed partition) — the piece cannot start; the plan
            # fails and planning retries after topology changes.  An
            # inert model is bypassed wholesale (see Swarm.send_control).
            path_floor = net.transfer_floor(self.id, plan.receiver_id,
                                            size)
            if path_floor is None:
                return False
            floor_s = path_floor
        transfer = self.uplink.try_start(size, self._upload_finished,
                                         meta=plan,
                                         min_duration_s=floor_s)
        if transfer is None:
            return False
        self._outgoing[transfer] = plan
        self._in_flight_to.add(plan.receiver_id)
        receiver._incoming[transfer] = None
        receiver.book.expect(plan.piece)
        self.swarm.note_activity()
        self.on_upload_started(plan)
        return True

    def _upload_finished(self, transfer: Transfer) -> None:
        plan = self._outgoing.pop(transfer)
        self._in_flight_to.discard(plan.receiver_id)
        self.kb_uploaded += transfer.size_kb
        self.pieces_uploaded += 1
        receiver = self.swarm.find_peer(plan.receiver_id)
        if receiver is not None and receiver.active:
            receiver._incoming.pop(transfer, None)
            receiver.kb_downloaded += transfer.size_kb
            receiver.pieces_downloaded += 1
            payload = plan.payload if plan.payload is not None \
                else plan.piece
            injector = self.swarm.fault_injector
            stall = injector.stall_delay() if injector is not None \
                else 0.0
            if stall > 0.0:
                self.sim.schedule(stall, self._deliver_payload,
                                  receiver, payload)
            else:
                receiver.on_payload(payload, self.id)
                self.on_payload_delivered(plan, payload)
        self.on_upload_finished(plan)
        self.pump()

    def _deliver_payload(self, receiver: "Peer", payload: Any) -> None:
        """A stalled payload lands late (fault injection; the transfer
        itself finished and was already accounted)."""
        if receiver.active:
            receiver.on_payload(payload, self.id)

    def _cancel_outgoing(self, transfer: Transfer) -> None:
        """The receiver vanished mid-transfer."""
        plan = self._outgoing.get(transfer)
        if plan is None:
            return
        transfer.cancel()
        self._drop_outgoing(transfer)
        self.on_upload_cancelled(plan)
        self.pump()

    def _drop_outgoing(self, transfer: Transfer) -> None:
        plan = self._outgoing.pop(transfer, None)
        if plan is None:
            return
        self._in_flight_to.discard(plan.receiver_id)
        receiver = self.swarm.find_peer(plan.receiver_id)
        if receiver is not None:
            receiver._incoming.pop(transfer, None)
            receiver.book.unexpect(plan.piece)

    def uploading_to(self, peer_id: str) -> bool:
        """True while a transfer to ``peer_id`` is in flight."""
        return peer_id in self._in_flight_to

    # ------------------------------------------------------------------
    # Piece completion
    # ------------------------------------------------------------------
    def complete_piece(self, piece: int) -> None:
        """A piece became usable; finish the download when done."""
        newly = self.book.add_completed(piece)
        if newly:
            if self.first_piece_at is None:
                self.first_piece_at = self.sim.now
            self.on_piece_completed(piece)
        if self.book.is_complete and self.kind != "seeder" \
                and self.finish_time is None:
            self.finish_time = self.sim.now
            self.on_download_complete()

    def on_download_complete(self) -> None:
        """Default: leave immediately upon completion (Sec. IV-A)."""
        self.swarm.on_peer_finished(self)
        self.leave()

    # ------------------------------------------------------------------
    # Neighbor views
    # ------------------------------------------------------------------
    def neighbors(self) -> Set[str]:
        """Current neighbor ids."""
        return self.swarm.topology.neighbors(self.id)

    def neighbor_peers(self) -> list:
        """Active neighbor Peer objects, in sorted-id order.

        The topology hands out a live ``set`` of string ids; iterating
        it raw would feed per-process hash order into rng draws and
        upload scheduling downstream.  The topology's cached sorted
        view fixes the order for every consumer without re-sorting on
        each of the many reads per event.  Returns a list (this is the
        hottest read in protocol planning; a comprehension over the
        cached ids beats a generator's per-item frame switches).
        """
        peers = self.swarm.peers
        return [peer
                for nid in self.swarm.topology.sorted_neighbors(self.id)
                if (peer := peers.get(nid)) is not None and peer.active]

    def interested_neighbors(self) -> list:
        """Neighbors that want at least one of our completed pieces."""
        index = self.swarm.interest
        if index is not None:
            row = index.row(self.id)
            return [nid for nid in
                    self.swarm.topology.sorted_neighbors(self.id)
                    if nid in row]
        store = self.swarm.columnar
        if store is not None:
            # Same sorted-id walk and the same want∩completed
            # predicate, one mask AND per neighbor.
            return store.interested_ids(self)
        mine = self.book.completed
        return [p.id for p in self.neighbor_peers()
                if p.book.needs_from(mine)]

    def is_interested_in(self, other: "Peer") -> bool:
        """Do we want a piece the other peer has completed?

        With the index on, both peers must be active (callers pass
        live neighbors, matching the naive scans' active filter).
        """
        index = self.swarm.interest
        if index is not None:
            return self.id in index.row(other.id)
        my_book, other_book = self.book, other.book
        if self.swarm.columnar is not None \
                and isinstance(my_book, ColumnarBook) \
                and isinstance(other_book, ColumnarBook):
            return bool(my_book._wmask & other_book._cmask)
        return bool(my_book.needs_from(other_book.completed))

    def choose_piece_from(self, uploader: "Peer") -> Optional[int]:
        """Receiver-side LRF piece choice (Sec. II-A)."""
        index = self.swarm.interest
        store = self.swarm.columnar
        my_book, up_book = self.book, uploader.book
        if index is None and store is not None \
                and isinstance(my_book, ColumnarBook) \
                and isinstance(up_book, ColumnarBook):
            cand_mask = my_book._wmask & up_book._cmask
            if not cand_mask:
                return None
            # Counts equal the naive availability over the same live
            # neighbors; rarest_of is the shared tie-break.
            return rarest_of(store.availability(self, cand_mask),
                             self.sim.rng)
        candidates = self.book.needs_from(uploader.book.completed)
        if not candidates:
            return None
        if index is not None:
            # Fused single-pass rarest_of over the availability row:
            # same min + sorted-tie-pool + rng.choice as rarest_of.
            get = index.avail(self.id).get
            best = None
            pool: List[int] = []
            for piece in candidates:
                copies = get(piece, 0)
                if best is None or copies < best:
                    best = copies
                    pool = [piece]
                elif copies == best:
                    pool.append(piece)
            pool.sort()
            return self.sim.rng.choice(pool)
        books = [p.book.completed for p in self.neighbor_peers()]
        return local_rarest_first(candidates, books, self.sim.rng)

    # ------------------------------------------------------------------
    # Protocol hooks (subclasses override)
    # ------------------------------------------------------------------
    def next_upload(self) -> Optional[UploadPlan]:
        """Decide the next upload; ``None`` when nothing to send."""
        raise NotImplementedError

    def on_payload(self, payload: Any, uploader_id: str) -> None:
        """A payload arrived.  Baselines complete the piece at once."""
        self.complete_piece(int(payload))

    def on_join(self) -> None:
        """Called after connecting to the swarm."""

    def on_leave(self) -> None:
        """Called before connections are severed."""

    def on_neighbor_connected(self, neighbor_id: str) -> None:
        """A new neighbor appeared; default: try to serve."""
        self.pump()

    def on_neighbor_disconnected(self, neighbor_id: str) -> None:
        """A neighbor left; default: refill when low."""
        if self.active and self.swarm.topology.needs_refill(self.id):
            self.refill_neighbors()

    def on_piece_completed(self, piece: int) -> None:
        """A piece of ours became usable."""

    def on_upload_started(self, plan: UploadPlan) -> None:
        """An upload began."""

    def on_upload_finished(self, plan: UploadPlan) -> None:
        """An upload finished (before the next pump)."""

    def on_payload_delivered(self, plan: UploadPlan,
                             payload: Any) -> None:
        """``payload`` was handed to the receiver synchronously and
        fully consumed (not called on fault-injected stalled
        deliveries).  Protocols that pool their message objects
        reclaim them here."""

    def on_upload_cancelled(self, plan: UploadPlan) -> None:
        """An outgoing transfer was cancelled (receiver departed)."""

    def on_plan_failed(self, plan: UploadPlan) -> None:
        """A plan returned by :meth:`next_upload` could not start."""

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"{type(self).__name__}({self.id}, "
                f"{self.book.completed_count}/"
                f"{self.swarm.torrent.n_pieces})")
