"""Piece selection policies.

Leechers pick which piece to fetch from an uploader.  The default is
BitTorrent's Local-Rarest-First (LRF): among the candidate pieces,
prefer the one with the fewest copies among the chooser's neighbors.
T-Chain uses LRF everywhere except newcomer bootstrapping, where the
donor applies the both-need rule (:mod:`repro.core.bootstrap`).
"""

from __future__ import annotations

from random import Random
from typing import AbstractSet, Dict, Iterable, Optional, Set


def availability(pieces: Iterable[int],
                 neighbor_books: Iterable[AbstractSet[int]]
                 ) -> Dict[int, int]:
    """Copies of each piece among the given neighbor piece sets."""
    counts = {p: 0 for p in pieces}
    for book in neighbor_books:
        for piece in counts:
            if piece in book:
                counts[piece] += 1
    return counts


def rarest_of(counts: Dict[int, int], rng: Random) -> Optional[int]:
    """LRF choice over precomputed ``{piece: copies}`` counts.

    The shared tail of :func:`local_rarest_first`, split out so the
    interest index can feed its incrementally-maintained availability
    counts through the exact same tie-break (sorted pool, one
    ``rng.choice``) and stay trace-identical with the naive scan.
    """
    if not counts:
        return None
    rarest = min(counts.values())
    pool = sorted(p for p, c in counts.items() if c == rarest)
    return rng.choice(pool)


def local_rarest_first(candidates: Set[int],
                       neighbor_books: Iterable[AbstractSet[int]],
                       rng: Random) -> Optional[int]:
    """LRF choice among ``candidates``; ties broken uniformly.

    ``neighbor_books`` are the *chooser's* neighbors' completed piece
    sets — rarity is local, as in BitTorrent.
    """
    if not candidates:
        return None
    return rarest_of(availability(candidates, neighbor_books), rng)


def random_piece(candidates: Set[int], rng: Random) -> Optional[int]:
    """Uniform random choice (Random BitTorrent, tie-breaking)."""
    if not candidates:
        return None
    return rng.choice(sorted(candidates))
