"""The five evaluated protocols.

Each module provides a seeder and a leecher class on top of
:class:`repro.bt.peer.Peer`.  :data:`PROTOCOLS` is the registry the
experiment harness uses to instantiate them by name.
"""

from repro.bt.protocols.base import BaselineSeeder
from repro.bt.protocols.bittorrent import BitTorrentLeecher
from repro.bt.protocols.dandelion import (
    CreditBank,
    DandelionLeecher,
    DandelionSeeder,
)
from repro.bt.protocols.eigentrust import EigenTrustLeecher, TrustAuthority
from repro.bt.protocols.fairtorrent import FairTorrentLeecher
from repro.bt.protocols.propshare import PropShareLeecher
from repro.bt.protocols.random_bt import RandomBTLeecher
from repro.bt.protocols.tchain import TChainLeecher, TChainSeeder, TChainState

#: protocol name -> (seeder class, leecher class)
PROTOCOLS = {
    "bittorrent": (BaselineSeeder, BitTorrentLeecher),
    "propshare": (BaselineSeeder, PropShareLeecher),
    "fairtorrent": (BaselineSeeder, FairTorrentLeecher),
    "random": (BaselineSeeder, RandomBTLeecher),
    "eigentrust": (BaselineSeeder, EigenTrustLeecher),
    "dandelion": (DandelionSeeder, DandelionLeecher),
    "tchain": (TChainSeeder, TChainLeecher),
}

__all__ = [
    "PROTOCOLS",
    "BaselineSeeder",
    "BitTorrentLeecher",
    "CreditBank",
    "DandelionLeecher",
    "DandelionSeeder",
    "EigenTrustLeecher",
    "FairTorrentLeecher",
    "PropShareLeecher",
    "RandomBTLeecher",
    "TChainLeecher",
    "TChainSeeder",
    "TChainState",
    "TrustAuthority",
]
