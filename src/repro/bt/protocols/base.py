"""Shared protocol scaffolding: the baseline seeder and leecher base.

The four baseline protocols differ only in *whom* a peer serves next;
everything else (transfer mechanics, piece completion, neighbor
management) lives in :class:`repro.bt.peer.Peer`.  This module adds
the pieces they share: a seeder that altruistically rotates through
interested neighbors, and a leecher base with the receiver-side LRF
upload plan builder.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.bt.columnar import ColumnarBook
from repro.bt.peer import Peer, UploadPlan
from repro.bt.torrent import full_book

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm


class BaselineSeeder(Peer):
    """An altruistic seeder for the baseline protocols.

    Uploads continuously, choosing a uniformly random interested
    neighbor for each free slot (at most one in-flight piece per
    receiver).  Random rotation is the standard simulator treatment of
    seeder unchoking; it also reproduces the exploitability the paper
    observes — seeders cannot tell free-riders apart (Sec. V).
    """

    kind = "seeder"

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None,
                 n_slots: Optional[int] = None):
        super().__init__(
            swarm,
            peer_id if peer_id is not None else swarm.new_peer_id("S"),
            capacity_kbps if capacity_kbps is not None
            else swarm.config.seeder_capacity_kbps,
            n_slots if n_slots is not None else swarm.config.seeder_slots,
            book=full_book(swarm.torrent))

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self.serveable_neighbors()
        if not candidates:
            return None
        receiver_id = self.sim.rng.choice(candidates)
        return self.plan_for(receiver_id)

    def serveable_neighbors(self) -> List[str]:
        """Interested neighbors with no in-flight piece from us."""
        return sorted(
            nid for nid in self.interested_neighbors()
            if not self.uploading_to(nid))

    def plan_for(self, receiver_id: str) -> Optional[UploadPlan]:
        """Build a plan letting the receiver pick its piece via LRF."""
        receiver = self.swarm.find_peer(receiver_id)
        if receiver is None or not receiver.active:
            return None
        piece = receiver.choose_piece_from(self)
        if piece is None:
            return None
        return UploadPlan(receiver_id=receiver_id, piece=piece)


class BaselineLeecher(Peer):
    """Common leecher machinery for the baseline protocols."""

    kind = "leecher"

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None,
                 n_slots: Optional[int] = None):
        config = swarm.config
        if capacity_kbps is None:
            capacity_kbps = swarm.sim.rng.choice(
                list(config.leecher_capacities_kbps))
        if n_slots is None:
            n_slots = config.total_upload_slots
        super().__init__(
            swarm,
            peer_id if peer_id is not None else swarm.new_peer_id("L"),
            capacity_kbps, n_slots)

    def plan_for(self, receiver_id: str) -> Optional[UploadPlan]:
        """Receiver-side LRF plan (same as the seeder's)."""
        receiver = self.swarm.find_peer(receiver_id)
        if receiver is None or not receiver.active:
            return None
        piece = receiver.choose_piece_from(self)
        if piece is None:
            return None
        return UploadPlan(receiver_id=receiver_id, piece=piece)

    def serveable(self, neighbor_ids) -> List[str]:
        """Filter to active, interested-in-us, not-already-being-served
        neighbors."""
        index = self.swarm.interest
        if index is not None:
            # ``nid in row`` covers both interest and activity (only
            # tracked, i.e. active, peers have row entries).
            row = index.row(self.id)
            in_flight = self._in_flight_to
            return sorted(nid for nid in neighbor_ids
                          if nid in row and nid not in in_flight)
        result = []
        my_book = self.book
        use_masks = isinstance(my_book, ColumnarBook)
        mine = None if use_masks else my_book.completed
        for nid in neighbor_ids:
            if self.uploading_to(nid):
                continue
            peer = self.swarm.find_peer(nid)
            if peer is None or not peer.active:
                continue
            other_book = peer.book
            if use_masks and isinstance(other_book, ColumnarBook):
                # Mask AND ⟺ ``bool(other.wanted() & my.completed)``.
                if other_book._wmask & my_book._cmask:
                    result.append(nid)
                continue
            if mine is None:
                mine = my_book.completed
            if other_book.needs_from(mine):
                result.append(nid)
        return sorted(result)
