"""Original BitTorrent: rate-based tit-for-tat + optimistic unchoking.

Implements the reference behaviour of Sec. II-A: every 10 seconds a
leecher unchokes the 4 interested neighbors that uploaded the most to
it over the previous interval; every 30 seconds it rotates one
optimistic unchoke to a random choked interested neighbor.  Roughly
20 % of upload bandwidth therefore goes to peers regardless of their
history — the altruism free-riders exploit (Sec. IV-C).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.bt.choking import Choker, ContributionTracker
from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher
from repro.sim.events import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm


class BitTorrentLeecher(BaselineLeecher):
    """A compliant original-BitTorrent leecher."""

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.total_upload_slots)
        self.contributions = ContributionTracker()
        self.choker = Choker(swarm.config.upload_slots, self.sim.rng)
        self._rechoke_task: Optional[PeriodicTask] = None
        self._optimistic_task: Optional[PeriodicTask] = None
        self._rechoke_round = 0

    # -- lifecycle -------------------------------------------------------
    def on_join(self) -> None:
        config = self.swarm.config
        self._rechoke()
        # Both timers are SL203-listed (same-instant ordering matters),
        # so the coalescing gate refuses them and each peer keeps a
        # private PeriodicTask.  Routing through ``swarm.periodic``
        # anyway keeps the gate decision in one place.
        self._rechoke_task = self.swarm.periodic(
            config.rechoke_interval_s, self._rechoke,
            key=self.id) or PeriodicTask(
            self.sim, config.rechoke_interval_s, self._rechoke)
        self._optimistic_task = self.swarm.periodic(
            config.optimistic_interval_s, self._rotate_optimistic,
            key=self.id, first_delay=0.0) or PeriodicTask(
            self.sim, config.optimistic_interval_s, self._rotate_optimistic,
            first_delay=0.0)

    def on_leave(self) -> None:
        if self._rechoke_task is not None:
            self._rechoke_task.stop()
        if self._optimistic_task is not None:
            self._optimistic_task.stop()

    # -- choking ---------------------------------------------------------
    def _interested_in_us(self):
        # Same contract as Peer.interested_neighbors (which is
        # index-accelerated); kept as a named hook for readability.
        return self.interested_neighbors()

    def _rechoke(self) -> None:
        self.contributions.roll()
        self.choker.rechoke(self._interested_in_us(), self.contributions)
        self.pump()

    def _rotate_optimistic(self) -> None:
        self.choker.rotate_optimistic(self._interested_in_us())
        self.pump()

    # -- serving ---------------------------------------------------------
    def next_upload(self) -> Optional[UploadPlan]:
        for receiver_id in self.serveable(self.choker.all_unchoked()):
            plan = self.plan_for(receiver_id)
            if plan is not None:
                return plan
        return None

    # -- receiving -------------------------------------------------------
    def on_payload(self, payload, uploader_id: str) -> None:
        self.contributions.record(uploader_id,
                                  self.swarm.torrent.piece_size_kb)
        super().on_payload(payload, uploader_id)
        self.pump()

    def on_neighbor_disconnected(self, neighbor_id: str) -> None:
        self.choker.forget(neighbor_id)
        self.contributions.forget(neighbor_id)
        super().on_neighbor_disconnected(neighbor_id)
