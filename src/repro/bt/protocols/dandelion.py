"""Dandelion (Sirivianos et al., USENIX 2007) as a comparison baseline.

Dandelion is the paper's representative encryption-plus-credit
scheme: a *trusted central server* keeps a credit balance per peer;
uploads earn credit (the receiver's acknowledgment is routed through
the server, which also brokers the decryption keys), downloads spend
it, and newcomers start with an initial credit grant "earned by some
means outside the scope of the file-sharing system" (Sec. V).

What Table II holds against it — and what this implementation lets us
measure —

* the central bank is a scalability/simplicity liability (every
  transaction touches it; we count the message load);
* fairness is good: credit cannot be forged, so free-riders can only
  spend their initial grant and then starve;
* newcomer bootstrapping is rigid: the initial grant is a fixed
  subsidy, and whitewashing (a fresh identity = a fresh grant) turns
  it into an attack budget.

The cryptographic half (server-brokered keys) is modelled by the
credit gate itself: a download is only *scheduled* when the receiver
can pay, which is exactly what holding the key hostage achieves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher, BaselineSeeder

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm

#: credit granted to every new identity (in pieces)
INITIAL_CREDIT = 2.0

#: credit earned per piece uploaded / spent per piece downloaded
CREDIT_PER_PIECE = 1.0

#: free pieces the content provider's seeder serves per identity —
#: the out-of-band bootstrap subsidy the paper criticizes as rigid
SEEDER_FREE_CAP = 3

#: seconds a broke-but-demanding compliant peer waits before buying
#: one credit out of band (Dandelion assumes credit "earned by some
#: means outside the scope of the file-sharing system")
TOPUP_DELAY_S = 10.0


class CreditBank:
    """The trusted third party: per-peer credit balances.

    Single point of coordination (and failure) — `message_count`
    tallies the per-transaction server traffic that Table II's
    simplicity/scalability row penalizes.
    """

    def __init__(self):
        self._balance: Dict[str, float] = {}
        self._free_served: Dict[str, int] = {}
        self.message_count = 0
        self.grants = 0
        #: credits bought out of band — the scheme's hidden subsidy
        self.out_of_band_credits = 0

    @classmethod
    def of(cls, swarm: "Swarm") -> "CreditBank":
        """The swarm's bank, created on first use."""
        bank = getattr(swarm, "_credit_bank", None)
        if bank is None:
            bank = cls()
            swarm._credit_bank = bank
        return bank

    def enroll(self, peer_id: str) -> None:
        """Register an identity with the initial grant."""
        if peer_id not in self._balance:
            self._balance[peer_id] = INITIAL_CREDIT
            self.grants += 1
            self.message_count += 1

    def balance(self, peer_id: str) -> float:
        """Current credit of a peer."""
        return self._balance.get(peer_id, 0.0)

    def can_afford(self, peer_id: str,
                   pieces: float = 1.0) -> bool:
        """Does the peer hold enough credit for ``pieces``?"""
        return self.balance(peer_id) >= pieces * CREDIT_PER_PIECE

    def settle(self, uploader_id: str, downloader_id: str) -> bool:
        """Move one piece's credit from downloader to uploader.

        Returns False (and moves nothing) if the downloader cannot
        pay — the server then withholds the key, i.e. the transfer is
        never honored.
        """
        self.message_count += 2  # receipt + key release
        cost = CREDIT_PER_PIECE
        if self._balance.get(downloader_id, 0.0) < cost:
            return False
        self._balance[downloader_id] -= cost
        self._balance[uploader_id] = \
            self._balance.get(uploader_id, 0.0) + cost
        return True

    def top_up(self, peer_id: str, amount: float = 1.0) -> None:
        """An out-of-band credit purchase (money → credit)."""
        self._balance[peer_id] = \
            self._balance.get(peer_id, 0.0) + amount
        self.out_of_band_credits += amount
        self.message_count += 1

    # -- provider subsidy ----------------------------------------------
    def free_quota_left(self, peer_id: str) -> int:
        """Remaining free-from-the-seeder pieces for an identity."""
        return max(0, SEEDER_FREE_CAP
                   - self._free_served.get(peer_id, 0))

    def seeder_can_serve(self, peer_id: str) -> bool:
        """May the seeder serve this peer (free quota or paying)?"""
        return self.free_quota_left(peer_id) > 0 \
            or self.can_afford(peer_id)

    def settle_seeder(self, downloader_id: str) -> bool:
        """Settle a seeder upload: free within the per-identity
        quota, paid (credit burned at the provider) beyond it.

        The subsidy is the economy's liquidity source: without it the
        seeder would be a pure credit sink and the swarm would
        deadlock once the initial grants drained into it.
        """
        self.message_count += 2
        if self.free_quota_left(downloader_id) > 0:
            self._free_served[downloader_id] = \
                self._free_served.get(downloader_id, 0) + 1
            return True
        cost = CREDIT_PER_PIECE
        if self._balance.get(downloader_id, 0.0) < cost:
            return False
        self._balance[downloader_id] -= cost
        return True


class DandelionSeeder(BaselineSeeder):
    """The content provider's seeder: subsidized within a per-identity
    quota, credit-charging beyond it.

    The quota is the liquidity source of the credit economy (see
    :meth:`CreditBank.settle_seeder`); the charge beyond it keeps
    free-riders from simply living off the seeder.
    """

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None,
                 n_slots: Optional[int] = None):
        super().__init__(swarm, peer_id, capacity_kbps, n_slots)
        self.bank = CreditBank.of(swarm)

    def on_join(self) -> None:
        self.bank.enroll(self.id)
        super().on_join()

    def serveable_neighbors(self) -> List[str]:
        return [c for c in super().serveable_neighbors()
                if self.bank.seeder_can_serve(c)]

    def on_upload_finished(self, plan: UploadPlan) -> None:
        self.bank.settle_seeder(plan.receiver_id)


class DandelionLeecher(BaselineLeecher):
    """A compliant Dandelion leecher.

    Serves any interested neighbor that can currently pay; seeder
    uploads are also credited through the bank (the server funds
    dissemination), so compliant peers accumulate credit by relaying.
    """

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.upload_slots)
        self.bank = CreditBank.of(swarm)
        self._topup_task = None

    def on_join(self) -> None:
        self.bank.enroll(self.id)
        super().on_join()
        if self.kind == "leecher":
            # Compliant users buy credit out of band when earning
            # opportunities run dry (endgame demand starvation);
            # free-riders, by definition, pay for nothing.
            from repro.sim.events import PeriodicTask
            self._topup_task = PeriodicTask(
                self.sim, TOPUP_DELAY_S, self._maybe_top_up)

    def on_leave(self) -> None:
        if self._topup_task is not None:
            self._topup_task.stop()
        super().on_leave()

    def _maybe_top_up(self) -> None:
        if not self.active:
            return
        if not self.bank.can_afford(self.id) and self.book._wanted_nonempty():
            self.bank.top_up(self.id)
            # let stalled uploaders reconsider us
            for peer in self.neighbor_peers():
                peer.pump()

    def on_rebranded(self) -> None:
        # A fresh identity gets a fresh grant — exactly the attack
        # budget the rigid-bootstrapping criticism points at.
        super().on_rebranded()
        self.bank.enroll(self.id)

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = [c for c in self.serveable(self.neighbors())
                      if self.bank.can_afford(c)]
        self.sim.rng.shuffle(candidates)
        for receiver_id in candidates:
            plan = self.plan_for(receiver_id)
            if plan is not None:
                return plan
        return None

    def on_upload_finished(self, plan: UploadPlan) -> None:
        # Settlement happens at delivery; an unpayable receiver
        # yields no credit (the key was never released) — but the
        # can_afford gate makes that rare.
        self.bank.settle(self.id, plan.receiver_id)

    def on_payload(self, payload, uploader_id: str) -> None:
        super().on_payload(payload, uploader_id)
        self.pump()
