"""EigenTrust (Kamvar et al., WWW 2003) as a comparison baseline.

The paper's related-work discussion (Sec. V, Table II) holds
EigenTrust up as the representative indirect-reciprocity scheme: peers
rate each transaction, normalized local trust values are aggregated
into a global trust vector (the principal eigenvector of the trust
matrix), and service is allocated by global trust, with ~10 % of each
peer's resources reserved for newcomers with no reputation.

We implement the scheme faithfully enough to measure the properties
Table II claims:

* **global trust aggregation** — power iteration with pre-trusted-peer
  damping, ``t ← (1−a)·Cᵀt + a·p``, recomputed every epoch.  Kamvar's
  paper distributes this computation; we centralize it at the tracker
  (a simplification in the *system's favor* — no gossip error), which
  is also why Table II scores the approach low on
  simplicity/scalability.
* **trust-weighted unchoking** — each upload slot picks its receiver
  with probability proportional to global trust (90 %) or uniformly
  among zero-trust newcomers (10 %) — the altruism budget the paper
  notes "has been the target of strategic free-riders".
* **local trust from direct experience** — a received piece is a
  satisfactory transaction for its uploader.
* **the false-praise hole** — colluders may inject fabricated local
  trust for each other (:meth:`TrustAuthority.report_praise`),
  inflating their global trust; T-Chain's Table II advantage is that
  it has no aggregate to poison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher
from repro.sim.events import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm

#: fraction of bandwidth reserved for zero-trust newcomers
NEWCOMER_SHARE = 0.1

#: damping toward the pre-trusted set (Kamvar's ``a``)
PRETRUST_WEIGHT = 0.15

#: power-iteration steps per epoch (converges fast at swarm sizes here)
ITERATIONS = 15


class TrustAuthority:
    """Centralized stand-in for EigenTrust's distributed aggregation.

    Holds every peer's local trust counts and recomputes the global
    trust vector once per epoch.
    """

    def __init__(self, swarm: "Swarm"):
        self.swarm = swarm
        #: rater id -> ratee id -> positive local trust mass
        self._local: Dict[str, Dict[str, float]] = {}
        self._global: Dict[str, float] = {}
        self.pretrusted: Set[str] = set()
        #: used by the false-praise attack to find fellow colluders
        self.colluders: Set[str] = set()
        self.recompute_count = 0
        PeriodicTask(swarm.sim, swarm.config.rechoke_interval_s,
                     self.recompute, first_delay=0.0)

    @classmethod
    def of(cls, swarm: "Swarm") -> "TrustAuthority":
        """The swarm's authority, created on first use."""
        authority = getattr(swarm, "_trust_authority", None)
        if authority is None:
            authority = cls(swarm)
            swarm._trust_authority = authority
        return authority

    # ------------------------------------------------------------------
    # Local trust input
    # ------------------------------------------------------------------
    def report_satisfactory(self, rater: str, ratee: str,
                            weight: float = 1.0) -> None:
        """A genuine satisfactory transaction."""
        if rater == ratee:
            return
        row = self._local.setdefault(rater, {})
        row[ratee] = row.get(ratee, 0.0) + weight

    def report_praise(self, rater: str, ratee: str,
                      weight: float) -> None:
        """Fabricated praise — the false-praise attack.

        The authority cannot distinguish it from genuine experience;
        that inability is the vulnerability being modelled.
        """
        self.report_satisfactory(rater, ratee, weight)

    def forget_peer(self, peer_id: str) -> None:
        """Drop a departed peer's row and column."""
        self._local.pop(peer_id, None)
        for row in self._local.values():
            row.pop(peer_id, None)
        self._global.pop(peer_id, None)
        self.pretrusted.discard(peer_id)

    # ------------------------------------------------------------------
    # Global trust
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Power-iterate ``t ← (1−a)·Cᵀt + a·p`` over current members."""
        self.recompute_count += 1
        members = sorted(self.swarm.peers)
        if not members:
            self._global = {}
            return
        pretrusted = [m for m in members if m in self.pretrusted] \
            or members
        p = {m: (1.0 / len(pretrusted) if m in pretrusted else 0.0)
             for m in members}
        # normalized local trust rows
        c: Dict[str, Dict[str, float]] = {}
        for rater in members:
            row = {ratee: v for ratee, v in
                   self._local.get(rater, {}).items()
                   if ratee in self.swarm.peers}
            total = sum(row.values())
            c[rater] = ({k: v / total for k, v in row.items()}
                        if total > 0 else dict(p))
        t = dict(p)
        for _ in range(ITERATIONS):
            nxt = {m: PRETRUST_WEIGHT * p[m] for m in members}
            for rater in members:
                weight = t.get(rater, 0.0)
                if weight <= 0:
                    continue
                for ratee, cij in c[rater].items():
                    nxt[ratee] = nxt.get(ratee, 0.0) \
                        + (1 - PRETRUST_WEIGHT) * weight * cij
            t = nxt
        self._global = t

    def trust(self, peer_id: str) -> float:
        """Current global trust of a peer (0 for strangers)."""
        return self._global.get(peer_id, 0.0)

    def has_reputation(self, peer_id: str) -> bool:
        """Does anyone's local trust mention this peer?"""
        return any(peer_id in row for row in self._local.values())


class EigenTrustLeecher(BaselineLeecher):
    """A compliant EigenTrust leecher."""

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.total_upload_slots)
        self.authority = TrustAuthority.of(swarm)

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self.serveable(self.neighbors())
        if not candidates:
            return None
        receiver_id = self._draw_receiver(candidates)
        plan = self.plan_for(receiver_id)
        if plan is not None:
            return plan
        for other in candidates:
            if other != receiver_id:
                plan = self.plan_for(other)
                if plan is not None:
                    return plan
        return None

    def _draw_receiver(self, candidates: List[str]) -> str:
        rng = self.sim.rng
        trusted = [(c, self.authority.trust(c)) for c in candidates]
        newcomers = [c for c, t in trusted if t <= 0.0]
        weighted = [(c, t) for c, t in trusted if t > 0.0]
        if newcomers and (not weighted
                          or rng.random() < NEWCOMER_SHARE):
            return rng.choice(newcomers)
        if weighted:
            names = [c for c, _ in weighted]
            weights = [t for _, t in weighted]
            return rng.choices(names, weights=weights, k=1)[0]
        return rng.choice(candidates)

    def on_payload(self, payload, uploader_id: str) -> None:
        self.authority.report_satisfactory(self.id, uploader_id)
        super().on_payload(payload, uploader_id)
        self.pump()

    def on_leave(self) -> None:
        self.authority.forget_peer(self.id)
        super().on_leave()
