"""FairTorrent (Sherman et al., CoNEXT 2009).

FairTorrent replaces choking rounds with a deficit counter per
neighbor: ``deficit = bytes sent − bytes received``.  Whenever a slot
frees, the leecher serves the interested neighbor with the *lowest*
deficit, repaying debts first.  This yields strong fairness among
compliant peers, but, as the paper shows (Sec. IV-C), the first
"free" exchange with every stranger makes it whitewashable: a
free-rider that resets its identity after each received piece is a
perpetual stranger with deficit zero.

FairTorrent's basic exchange unit is one 64 KB piece — the swarm
config used for FairTorrent/T-Chain experiments sets the piece size
accordingly (Sec. IV-A).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.bt.choking import DeficitLedger
from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm


class FairTorrentLeecher(BaselineLeecher):
    """A compliant FairTorrent leecher."""

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.upload_slots)
        self.deficits = DeficitLedger()

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self.serveable(self.neighbors())
        if not candidates:
            return None
        # Lowest-deficit-first, tie broken uniformly.
        pool = self.deficits.lowest_deficit(candidates)
        order = [self.sim.rng.choice(pool)]
        order.extend(n for n in candidates if n != order[0])
        for receiver_id in order:
            plan = self.plan_for(receiver_id)
            if plan is not None:
                return plan
        return None

    def on_upload_finished(self, plan: UploadPlan) -> None:
        self.deficits.on_sent(plan.receiver_id,
                              self.swarm.torrent.piece_size_kb)

    def on_payload(self, payload, uploader_id: str) -> None:
        self.deficits.on_received(uploader_id,
                                  self.swarm.torrent.piece_size_kb)
        super().on_payload(payload, uploader_id)
        self.pump()

    def on_neighbor_disconnected(self, neighbor_id: str) -> None:
        # Deficits are forgotten with the connection — the property
        # whitewashing free-riders exploit (Sec. IV-C).
        self.deficits.forget(neighbor_id)
        super().on_neighbor_disconnected(neighbor_id)
