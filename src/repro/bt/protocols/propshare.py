"""PropShare (Levin et al., SIGCOMM 2008).

PropShare allocates upload bandwidth to neighbors *proportionally* to
what they contributed in the previous round, instead of BitTorrent's
equal-split top-4.  A fixed share (20 %, matching BitTorrent's
optimistic allocation — the quantity the paper calls "pre-allocated
for bootstrapping") goes to randomly chosen neighbors so newcomers can
enter the economy.

In the slot model, proportional allocation is realized by sampling:
each time a slot frees, the receiver is drawn with probability
proportional to its last-round contribution (with probability 0.8),
or uniformly at random (with probability 0.2).  Over a round this
reproduces PropShare's bandwidth split in expectation.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.bt.choking import ContributionTracker
from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher
from repro.sim.events import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm

#: Fraction of bandwidth spent on random (bootstrap) allocation.
RANDOM_SHARE = 0.2


class PropShareLeecher(BaselineLeecher):
    """A compliant PropShare leecher."""

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.total_upload_slots)
        self.contributions = ContributionTracker()
        self._round_task: Optional[PeriodicTask] = None

    def on_join(self) -> None:
        self._round_task = PeriodicTask(
            self.sim, self.swarm.config.rechoke_interval_s,
            self._new_round)

    def on_leave(self) -> None:
        if self._round_task is not None:
            self._round_task.stop()

    def _new_round(self) -> None:
        self.contributions.roll()
        self.pump()

    # -- serving ---------------------------------------------------------
    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self.serveable(self.neighbors())
        if not candidates:
            return None
        receiver_id = self._draw_receiver(candidates)
        plan = self.plan_for(receiver_id)
        if plan is not None:
            return plan
        # The drawn neighbor had nothing to take; fall back over the
        # rest so a single unlucky draw does not idle the slot.
        for other in candidates:
            if other != receiver_id:
                plan = self.plan_for(other)
                if plan is not None:
                    return plan
        return None

    def _draw_receiver(self, candidates: List[str]) -> str:
        rng = self.sim.rng
        weights = [self.contributions.last_round(n) for n in candidates]
        total = sum(weights)
        if total > 0 and rng.random() >= RANDOM_SHARE:
            return rng.choices(candidates, weights=weights, k=1)[0]
        return rng.choice(candidates)

    # -- receiving -------------------------------------------------------
    def on_payload(self, payload, uploader_id: str) -> None:
        self.contributions.record(uploader_id,
                                  self.swarm.torrent.piece_size_kb)
        super().on_payload(payload, uploader_id)
        self.pump()

    def on_neighbor_disconnected(self, neighbor_id: str) -> None:
        self.contributions.forget(neighbor_id)
        super().on_neighbor_disconnected(neighbor_id)
