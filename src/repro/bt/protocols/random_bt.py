"""Random BitTorrent: optimistic unchoking only.

The Sec. IV-I baseline in which *all* bandwidth (leechers' and
seeders') is spent on optimistic unchoking — i.e. every upload goes to
a uniformly random interested neighbor with no incentive logic at all.
It approximates pure altruistic dissemination and is competitive only
for very small files, where reciprocation opportunities are scarce
anyway (Fig. 13).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.bt.peer import UploadPlan
from repro.bt.protocols.base import BaselineLeecher

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm


class RandomBTLeecher(BaselineLeecher):
    """A leecher that uploads to random interested neighbors."""

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.total_upload_slots)

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self.serveable(self.neighbors())
        self.sim.rng.shuffle(candidates)
        for receiver_id in candidates:
            plan = self.plan_for(receiver_id)
            if plan is not None:
                return plan
        return None

    def on_payload(self, payload, uploader_id: str) -> None:
        super().on_payload(payload, uploader_id)
        self.pump()
