"""T-Chain applied to BitTorrent (Sections II and III of the paper).

This module wires the pure-logic core (:mod:`repro.core`) into the
swarm simulator.  The moving parts, mapped to the paper:

* **Initiation** — :class:`TChainSeeder` starts a chain on every free
  upload slot: random flow-eligible requestor, payee designation,
  encrypted upload (Fig. 1(a)).
* **Continuation** — on receiving an encrypted piece, a leecher queues
  an *obligation* to upload to the designated payee; fulfilling it is
  itself the next transaction (Fig. 1(b)).
* **Termination** — a donor that can find no payee uploads an
  unencrypted piece, releasing the receiver (Fig. 1(c)).
* **Newcomer bootstrapping** — a requestor with no completed pieces is
  served a piece both it and the payee need, which it reciprocates by
  forwarding the still-encrypted piece (Sec. II-D1).
* **Flow control** — per-neighbor pending window k = 2 (Sec. II-D2).
* **Opportunistic seeding** — an idle leecher with completed pieces and
  no outstanding uploads initiates its own chain (Sec. II-D3).
* **Departure handling** — key handovers and payee reassignment
  (Sec. II-B4).

Control messages (reception reports, key releases, pleads) travel with
``config.control_latency_s`` delay and zero bandwidth (Sec. III-C),
and cross :meth:`repro.bt.swarm.Swarm.send_control` — the choke point
where fault injection (:mod:`repro.faults`) may drop or delay them.

**Recovery layer** (docs/FAULTS.md): every control message that can be
lost has a timer watching it.  Payees retransmit unacknowledged
reception reports and donors retransmit undelivered key releases, both
with capped exponential backoff; a requestor whose key never arrives
*pleads* to the donor (:class:`repro.core.messages.PleadMessage`),
which reopens the transaction and reassigns the payee
(``ExchangeLedger.reopen`` + ``reassign_payee``) or re-releases a key
whose delivery was lost; exchanges whose donor crashed uncleanly with
no key handover are written off as orphans (the requestor drops the
sealed piece and re-fetches).  All of it is accounted in
:class:`repro.analysis.metrics.RecoveryCounters`.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.bt.columnar import ColumnarBook, set_to_mask
from repro.bt.interest import (
    needed_overlap,
    offers_interest,
    wants_any_of,
    wants_from,
)
from repro.bt.peer import Peer, UploadPlan
from repro.bt.protocols.base import BaselineLeecher
from repro.bt.torrent import full_book, piece_payload
from repro.core.bootstrap import select_bootstrap_piece
from repro.core.chain import Chain, ChainRegistry
from repro.core.exchange import ExchangeLedger
from repro.core.flow_control import FlowController
from repro.core.messages import (
    EncryptedPieceMessage,
    PlainPieceMessage,
    PleadMessage,
    acquire_plain_piece,
    release_plain_piece,
)
from repro.core.policy import (
    PayeeDecision,
    ReciprocityKind,
    select_payee,
    should_opportunistically_seed,
)
from repro.core.transaction import Transaction, TransactionState
from repro.sim.events import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm

#: Seconds after which an unreciprocated delivery to an *idle* requestor
#: marks its chain terminated (bookkeeping for Figs. 10/11; the protocol
#: itself needs no timeout — the free-rider is starved by flow control).
DEFAULT_STALL_TIMEOUT_S = 300.0

#: Retry cadence for obligations that could not be fulfilled right now
#: (payee busy, reassignment churn): without a retry timer a peer with
#: no other inbound events would sit on a fulfillable obligation.
OBLIGATION_RETRY_S = 2.0

#: Seconds a requestor waits for a decryption key *after reciprocating*
#: before discarding the sealed piece and re-fetching it elsewhere.
#: Keys normally arrive within ~2 control latencies, so this only fires
#: when the reception report was swallowed (a payee that departed
#: uncleanly or maliciously stays silent); without it one lost report
#: would wedge the piece forever.
DEFAULT_KEY_TIMEOUT_S = 60.0

#: Retransmission backoff for unacknowledged control messages
#: (reception reports, key releases): ``base * 2**(attempt-1)``
#: seconds between attempts, capped at CONTROL_RETRY_CAP_S, for at
#: most ``control_retry_attempts`` retransmissions after the initial
#: send.  Retry timers are scheduled *unconditionally* and no-op
#: against shared ledger state, so a fault-free run fires exactly the
#: same timers as a faulty one — the determinism contract survives.
CONTROL_RETRY_BASE_S = 2.0
CONTROL_RETRY_CAP_S = 16.0
CONTROL_RETRY_ATTEMPTS = 2


class TChainState:
    """Shared per-swarm T-Chain state (ledger, chain registry, timers)."""

    def __init__(self, swarm: "Swarm"):
        config = swarm.config
        self.swarm = swarm
        self.registry = ChainRegistry()
        self.ledger = ExchangeLedger(self.registry,
                                     real_crypto=config.real_crypto)
        # Mirror ledger transitions into the run's sanitizer (if any)
        # so fair-exchange violations surface with a trace.
        self.ledger.sanitizer = getattr(swarm.sim, "sanitizer", None)
        self.handover: Set[int] = set()
        self.colluders: Set[str] = set()
        self.stall_timeout_s = config.extra.get(
            "chain_stall_timeout_s", DEFAULT_STALL_TIMEOUT_S)
        self.key_timeout_s = config.extra.get(
            "key_timeout_s", DEFAULT_KEY_TIMEOUT_S)
        self.retry_base_s = config.extra.get(
            "control_retry_base_s", CONTROL_RETRY_BASE_S)
        self.retry_attempts = config.extra.get(
            "control_retry_attempts", CONTROL_RETRY_ATTEMPTS)
        # Recycle terminated-chain piece messages through the pool in
        # core.messages (SL304).  On by default; the alloc-audit
        # harness diffs full traces with the flag off to prove the
        # pool is invisible to the simulation.
        self.pool_messages = config.extra.get("pool_messages", True)
        # Registry sampling is order-free (no SL203 listing), so it is
        # the one timer the coalescing gate lets join a shared herd
        # when ``extra["coalesce_timers"]`` is on.
        sample = lambda: self.registry.sample(swarm.sim.now)
        self._sampler = swarm.periodic(
            config.chain_sample_interval_s, sample,
            key="tchain:sampler", first_delay=0.0) or PeriodicTask(
            swarm.sim, config.chain_sample_interval_s, sample,
            first_delay=0.0)

    @classmethod
    def of(cls, swarm: "Swarm") -> "TChainState":
        """The swarm's T-Chain state, created on first use."""
        state = getattr(swarm, "_tchain_state", None)
        if state is None:
            state = cls(swarm)
            swarm._tchain_state = state
        return state

    def are_colluders(self, a: str, b: str) -> bool:
        """Are both peers in the colluder set?"""
        return a in self.colluders and b in self.colluders

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (1-based)."""
        return min(self.retry_base_s * (2.0 ** (attempt - 1)),
                   CONTROL_RETRY_CAP_S)


class _TChainNode(Peer):
    """Behaviour shared by T-Chain seeders and leechers (donor side)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.state = TChainState.of(self.swarm)
        self.flow = FlowController(self.swarm.config.flow_control_k)
        # Adaptive receiver selection, the "banned" half (Sec. II-D2):
        # every written-off exchange is a strike; strikes back a
        # neighbor off exponentially (stall, 2*stall, 4*stall, ...)
        # and any reciprocation report clears them.  Honest peers
        # never accumulate strikes; silent free-riders decay to
        # nothing; colluders recycle at their false-report rate.
        self._strikes: Dict[str, int] = {}
        self._banned_until: Dict[str, float] = {}
        # Mirror of the flow window: ids whose pending count is at or
        # over the limit, i.e. exactly the neighbors for which
        # ``flow.eligible`` is False.  Maintained by boundary-crossing
        # callbacks so hot planning loops do one set lookup instead of
        # a method call per neighbor.
        self._flow_blocked: Set[str] = set()
        self.flow.on_window_change = self._on_flow_window_change
        self.flow.on_underflow = self._on_flow_underflow

    def _on_flow_window_change(self, neighbor_id: str,
                               blocked: bool) -> None:
        if blocked:
            self._flow_blocked.add(neighbor_id)
        else:
            self._flow_blocked.discard(neighbor_id)

    def _on_flow_underflow(self, neighbor_id: str) -> None:
        # A confirm that finds an empty window is benign only when the
        # neighbor's flow state was dropped by forget() (disconnect
        # with a report still in flight); otherwise some exchange was
        # drained twice — escalate when the sanitizer is attached.
        sanitizer = getattr(self.sim, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.on_flow_underflow(
                self.id, neighbor_id,
                benign=self.flow.was_forgotten(neighbor_id))

    #: Backoff cap: stall × 2^(strikes−1) saturates here, so a chronic
    #: non-reciprocator is throttled to one donation per
    #: MAX_BACKOFF_FACTOR × stall rather than banned without bound —
    #: matching the paper's "slower than dial-up" trickle (Fig. 8).
    MAX_BACKOFF_FACTOR = 16

    def note_exchange_written_off(self, neighbor_id: str) -> None:
        """A donation to this neighbor died unreciprocated."""
        strikes = self._strikes.get(neighbor_id, 0) + 1
        self._strikes[neighbor_id] = strikes
        factor = min(2 ** (strikes - 1), self.MAX_BACKOFF_FACTOR)
        backoff = self.state.stall_timeout_s * factor
        self._banned_until[neighbor_id] = self.sim.now + backoff

    def note_exchange_completed(self, neighbor_id: str) -> None:
        """This neighbor reciprocated (or so a report claims)."""
        self._strikes.pop(neighbor_id, None)
        self._banned_until.pop(neighbor_id, None)

    def cooperative(self, neighbor_id: str) -> bool:
        """False while the neighbor is backed off."""
        return self.sim.now >= self._banned_until.get(neighbor_id, 0.0)

    def on_rescan(self) -> None:
        """Connection management: a *seeder* whose neighbor table is
        full snubs backed-off neighbors so useful peers can connect.

        Without this, re-announcing large-view free-riders eclipse the
        seeder the moment departures free its slots, and honest
        stragglers whose remaining pieces only the seeder holds starve
        behind a wall of attackers.  Ordinary leechers do NOT snub:
        strikes against honest-but-slow peers are common enough that
        leecher-side snubbing fragments the compliant topology and
        slows everyone down (measured on the Fig. 9 trace workload).
        """
        if self.kind != "seeder":
            return
        topology = self.swarm.topology
        if topology.degree(self.id) < topology.max_neighbors:
            return
        for neighbor_id in topology.sorted_neighbors(self.id):
            if not self.cooperative(neighbor_id) \
                    and not self.uploading_to(neighbor_id):
                # Safe while iterating: disconnect invalidates the
                # cache entry but we hold the list, whose contents
                # match the sorted snapshot the loop needs.
                topology.disconnect(self.id, neighbor_id)

    def accepts_connection_from(self, peer_id: str) -> bool:
        """A seeder refuses connections from peers it has backed off —
        otherwise evicted large-view free-riders reconnect within one
        announce period and re-eclipse it."""
        if self.kind != "seeder":
            return True
        return self.cooperative(peer_id)

    # ------------------------------------------------------------------
    # Donor planning
    # ------------------------------------------------------------------
    def _eligible_requestors(self) -> List[str]:
        """Neighbors we could start serving right now."""
        index = self.swarm.interest
        if index is not None:
            # Every check is a set/dict lookup.  ``nid in row`` covers
            # both "wants a piece of ours" and "active" (untracked
            # peers have no row entries), matching the naive
            # active-neighbor scan below.
            row = index._rows.get(self.id)
            if not row:
                return []
            # C-level set algebra beats a Python predicate loop here;
            # the sorted result is identical to the neighbor walk.
            eligible = row.keys() & self.swarm.topology.neighbors(self.id)
            if self._in_flight_to:
                eligible -= self._in_flight_to
            if self._flow_blocked:
                eligible -= self._flow_blocked
            banned = self._banned_until
            if banned:
                now = self.sim.now
                return sorted(nid for nid in eligible
                              if now >= banned.get(nid, 0.0))
            return sorted(eligible)
        store = self.swarm.columnar
        if store is not None and isinstance(self.book, ColumnarBook):
            # Same conjunction as the naive walk below, evaluated
            # interest-first over the flat adjacency arrays: the
            # predicates are pure filters, so reordering them cannot
            # change the (sorted) result list.
            result = [nid for nid in store.interested_ids(self)
                      if not self.uploading_to(nid)
                      and self.flow.eligible(nid)
                      and self.cooperative(nid)]
            result.sort()
            return result
        mine = self.book.completed
        result = []
        for peer in self.neighbor_peers():
            if self.uploading_to(peer.id):
                continue
            if not self.flow.eligible(peer.id):
                continue
            if not self.cooperative(peer.id):
                continue
            if peer.book.needs_from(mine):
                result.append(peer.id)
        return sorted(result)

    def _payee_candidates(self, requestor: Peer,
                          offered: Set[int]) -> List[str]:
        """Our neighbors that need ≥1 of the requestor's pieces
        (including the piece about to be uploaded), Sec. II-B2."""
        index = self.swarm.interest
        requestor_id = requestor.id
        if index is not None:
            row = index.row(requestor_id)
            wanter_sets = [index.wanters(p) for p in offered]
            banned = self._banned_until
            now = self.sim.now
            result = []
            for nid in self.swarm.topology.sorted_neighbors(self.id):
                if nid == requestor_id:
                    continue
                if banned and now < banned.get(nid, 0.0):
                    continue
                if nid in row or any(nid in s for s in wanter_sets):
                    result.append(nid)
            return result
        store = self.swarm.columnar
        requestor_book = requestor.book
        if (store is not None and isinstance(requestor_book, ColumnarBook)
                and self.id in store.row_of):
            # ``wmask & (requestor.cmask | offered)`` ⟺ the
            # ``offers_interest`` predicate below, walked over the flat
            # adjacency arrays (already in sorted-id order).
            row = store.row_of[self.id]
            offer_mask = requestor_book._cmask | set_to_mask(offered)
            books = store.books
            alive = store.alive
            adj_rows = store.adj_rows[row]
            result = []
            for pos, nid in enumerate(store.adj_ids[row]):
                if nid == requestor_id:
                    continue
                nrow = adj_rows[pos]
                if not alive[nrow]:
                    continue
                if not self.cooperative(nid):
                    continue
                if books[nrow]._wmask & offer_mask:
                    result.append(nid)
            return result
        result = []
        for peer in self.neighbor_peers():
            if peer.id in (self.id, requestor_id):
                continue
            if not self.cooperative(peer.id):
                continue
            if offers_interest(self.swarm, requestor, offered, peer):
                result.append(peer.id)
        return sorted(result)

    def _plan_donation(self, requestor_id: str,
                       reciprocates: Optional[Transaction] = None,
                       forward_of: Optional[Transaction] = None,
                       ) -> Optional[UploadPlan]:
        """Build the upload plan for serving ``requestor_id``.

        ``reciprocates`` is the transaction this upload fulfils (we
        were its requestor); ``forward_of`` marks the newcomer forward
        case, fixing the piece.  Returns None when the requestor
        cannot be served; the caller decides what that means.
        """
        config = self.swarm.config
        requestor = self.swarm.find_peer(requestor_id)
        if requestor is None or not requestor.active:
            return None

        piece: Optional[int] = None
        decision: Optional[PayeeDecision] = None

        if forward_of is not None:
            # Newcomer forwarding: the piece is fixed.  The requestor
            # must still *want* it; wanted/expected/completed are
            # disjoint, so the two former overlapping checks (reject
            # unless wanted-or-expected, then reject expected-but-not-
            # wanted) both reduce to exactly this.
            piece = forward_of.piece_index
            if not requestor.book.wants(piece):
                return None
            decision = self._decide_payee(requestor, {piece})
        elif config.newcomer_bootstrap \
                and requestor.book.completed_count == 0 \
                and self.book.completed_count > 0:
            # Both-need rule (Sec. II-D1): pick payee and piece jointly.
            piece, decision = self._decide_bootstrap(requestor)
            if piece is None:
                # No both-need combination: fall back to plain LRF.
                piece = requestor.choose_piece_from(self)
                if piece is None:
                    return None
                decision = self._decide_payee(requestor, {piece})
        else:
            piece = requestor.choose_piece_from(self)
            if piece is None:
                return None
            decision = self._decide_payee(requestor, {piece})

        return self._materialize(requestor, piece, decision,
                                 reciprocates, forward_of)

    def _decide_payee(self, requestor: Peer,
                      offered: Set[int]) -> PayeeDecision:
        config = self.swarm.config
        direct_possible = wants_from(self.swarm, self, requestor)
        if not config.indirect_reciprocity:
            candidates: List[str] = []
        else:
            candidates = self._payee_candidates(requestor, offered)
        decision = select_payee(self.id, requestor.id, direct_possible,
                                candidates, self.flow, self.sim.rng)
        if decision.terminates_chain and candidates:
            # Someone *does* need the requestor's pieces, they are just
            # all over their flow window.  Terminating here would gift
            # a plaintext piece; instead keep the exchange encrypted
            # and pick the least-loaded candidate (the alternative
            # selection rule of Sec. II-D2).
            pool = self.flow.least_loaded(candidates)
            pool = [c for c in pool
                    if c not in (self.id, requestor.id)]
            if pool:
                return PayeeDecision(ReciprocityKind.INDIRECT,
                                     self.sim.rng.choice(sorted(pool)))
        return decision

    def _decide_bootstrap(self, requestor: Peer
                          ) -> Tuple[Optional[int],
                                     Optional[PayeeDecision]]:
        """Joint payee+piece choice for a newcomer requestor."""
        usable = needed_overlap(self, requestor)
        if not usable:
            return None, None
        index = self.swarm.interest
        candidates = []
        if index is not None:
            requestor_id = requestor.id
            blocked = self._flow_blocked
            banned = self._banned_until
            now = self.sim.now
            for nid in self.swarm.topology.sorted_neighbors(self.id):
                if nid == requestor_id or nid in blocked:
                    continue
                if banned and now < banned.get(nid, 0.0):
                    continue
                if index.wants_any(nid, usable):
                    candidates.append(nid)
        else:
            for peer in self.neighbor_peers():
                if peer.id in (self.id, requestor.id):
                    continue
                if not self.flow.eligible(peer.id):
                    continue
                if not self.cooperative(peer.id):
                    continue
                if wants_any_of(self.swarm, peer, usable):
                    candidates.append(peer.id)
        if not candidates:
            return None, None
        payee_id = self.sim.rng.choice(sorted(candidates))
        payee = self.swarm.find_peer(payee_id)
        piece = select_bootstrap_piece(
            self.book.completed, requestor.book.wanted(),
            payee.book.wanted(), self.sim.rng)
        return piece, PayeeDecision(ReciprocityKind.INDIRECT, payee_id)

    def _materialize(self, requestor: Peer, piece: int,
                     decision: PayeeDecision,
                     reciprocates: Optional[Transaction],
                     forward_of: Optional[Transaction]
                     ) -> Optional[UploadPlan]:
        """Create the ledger transaction and the upload plan."""
        ledger = self.state.ledger
        now = self.sim.now
        if reciprocates is not None:
            chain = ledger.registry.get(reciprocates.chain_id)
            if not chain.active:
                # A watchdog or cancellation wrote the chain off while
                # this reciprocation was still pending; it lives on.
                ledger.registry.revive(chain.chain_id)
        else:
            chain = None  # lazily created below

        if decision.terminates_chain:
            if not self._may_terminate(reciprocates):
                return None
            if chain is None:
                chain = ledger.begin_chain(self.id, self.kind == "seeder",
                                           now)
            tx, _ = ledger.create_transaction(
                chain, self.id, requestor.id, None, piece, now,
                reciprocates=(reciprocates.transaction_id
                              if reciprocates else None),
                encrypted=False)
            if self.state.pool_messages:
                payload = acquire_plain_piece(
                    transaction_id=tx.transaction_id,
                    chain_id=chain.chain_id, piece_index=piece,
                    donor_id=self.id, requestor_id=requestor.id,
                    reciprocates=tx.reciprocates)
            else:
                payload = PlainPieceMessage(  # simlint: disable=SL304 -- pool_messages=False escape hatch for the trace-neutrality diff
                    transaction_id=tx.transaction_id,
                    chain_id=chain.chain_id, piece_index=piece,
                    donor_id=self.id, requestor_id=requestor.id,
                    reciprocates=tx.reciprocates)
            return UploadPlan(receiver_id=requestor.id, piece=piece,
                              payload=payload,
                              meta={"tx": tx.transaction_id})

        if chain is None:
            chain = ledger.begin_chain(self.id, self.kind == "seeder", now)
        payload_bytes = None
        if ledger.real_crypto and forward_of is None:
            payload_bytes = piece_payload(self.swarm.torrent, piece)
        tx, sealed = ledger.create_transaction(
            chain, self.id, requestor.id, decision.payee_id, piece, now,
            reciprocates=(reciprocates.transaction_id
                          if reciprocates else None),
            direct=decision.kind is ReciprocityKind.DIRECT,
            forward_of=(forward_of.transaction_id
                        if forward_of else None),
            payload=payload_bytes)
        payload = EncryptedPieceMessage(
            transaction_id=tx.transaction_id, chain_id=chain.chain_id,
            sealed=sealed, donor_id=self.id, requestor_id=requestor.id,
            payee_id=decision.payee_id, reciprocates=tx.reciprocates)
        return UploadPlan(receiver_id=requestor.id, piece=piece,
                          payload=payload,
                          meta={"tx": tx.transaction_id})

    def _may_terminate(self, reciprocates: Optional[Transaction]) -> bool:
        """May we upload unencrypted here?  Seeders and obligated
        donors must (the protocol requires the upload); voluntary
        donors simply decline instead of gifting pieces."""
        return self.kind == "seeder" or reciprocates is not None

    # ------------------------------------------------------------------
    # Donor-side message handling
    # ------------------------------------------------------------------
    def on_upload_started(self, plan: UploadPlan) -> None:
        if isinstance(plan.payload, EncryptedPieceMessage):
            self.flow.on_piece_sent(plan.receiver_id)
            timeout = self.state.stall_timeout_s
            if timeout:
                self.sim.schedule(timeout, _check_stall, self.state,
                                  plan.payload.transaction_id)

    def on_payload_delivered(self, plan: UploadPlan, payload) -> None:
        """Reclaim a consumed plain-piece message for the pool.

        Only when the receiver kept no reference: at this point the
        expected holders are the delivery frame's local, our
        ``payload`` parameter and ``getrefcount``'s own argument —
        three in total once ``plan.payload`` is dropped.  Anything
        above that means someone retained the message (a test, a
        collector) and it must not be recycled under them.
        """
        if self.state.pool_messages \
                and type(payload) is PlainPieceMessage:
            plan.payload = None
            if sys.getrefcount(payload) <= 3:
                release_plain_piece(payload)

    def on_report(self, transaction_id: int, truthful: bool) -> None:
        """A reception report arrived for a transaction we donated."""
        ledger = self.state.ledger
        tx = ledger.get(transaction_id)
        if tx.state not in (TransactionState.RECIPROCATED,
                            TransactionState.DELIVERED):
            return  # duplicate / stale report
        if tx.state is TransactionState.DELIVERED and truthful:
            return  # truthful report cannot precede reciprocation
        ledger.report_reciprocation(transaction_id, self.sim.now,
                                    truthful=truthful)
        if self.active and not tx.written_off:
            self.flow.on_reciprocation_confirmed(tx.requestor_id)
        if self.active:
            self.note_exchange_completed(tx.requestor_id)
        key = ledger.release_key(transaction_id, self.sim.now)
        requestor = self.swarm.find_peer(tx.requestor_id)
        if requestor is not None and requestor.active:
            self.swarm.send_control(self.id, requestor,
                                    requestor.receive_key,
                                    transaction_id, key, kind="key")
            self._arm_key_retry(transaction_id, 1)
        if self.active:
            self.pump()

    def receive_key(self, transaction_id: int, key) -> None:
        """Leechers override; seeders never await keys."""

    # ------------------------------------------------------------------
    # Recovery: key retransmission and the plead path (docs/FAULTS.md)
    # ------------------------------------------------------------------
    def _arm_key_retry(self, transaction_id: int, attempt: int) -> None:
        if attempt > self.state.retry_attempts:
            return
        self.sim.schedule(self.state.retry_delay(attempt),
                          self._key_retry, transaction_id, attempt)

    def _key_retry(self, transaction_id: int, attempt: int) -> None:
        """Re-release a key the requestor demonstrably never got (its
        sealed piece is still pending).  Decided purely from shared
        ledger/peer state, so fault-free runs schedule — and skip —
        exactly the same timers."""
        if self.crashed:
            return
        ledger = self.state.ledger
        tx = ledger.get(transaction_id)
        if tx.state is not TransactionState.COMPLETED \
                or not tx.encrypted:
            return
        requestor = self.swarm.find_peer(tx.requestor_id)
        if requestor is None or not requestor.active:
            return
        if transaction_id not in getattr(requestor,
                                         "pending_sealed", {}):
            return  # the key landed; nothing to do
        self.swarm.metrics.recovery.key_retransmits += 1
        self.swarm.send_control(self.id, requestor,
                                requestor.receive_key, transaction_id,
                                ledger.peek_key(transaction_id),
                                kind="key")
        self._arm_key_retry(transaction_id, attempt + 1)

    def on_plead(self, msg: PleadMessage) -> None:
        """A requestor pleads: it reciprocated and no key ever came
        (Sec. II-B4).  Decide from the ledger, the shared ground
        truth:

        * COMPLETED — our key release was lost in transit: resend it.
        * RECIPROCATED — the reception report was swallowed (silent or
          crashed payee): roll the transaction back to DELIVERED,
          reassign the payee excluding the silent one, and tell the
          requestor to reciprocate afresh.
        * anything else — stale plead (a retransmitted report or an
          earlier reopen already settled the matter): ignore.
        """
        ledger = self.state.ledger
        tx = ledger.get(msg.transaction_id)
        if tx.requestor_id != msg.requestor_id:
            return  # forged or misrouted plead
        requestor = self.swarm.find_peer(tx.requestor_id)
        if requestor is None or not requestor.active:
            return
        if tx.state is TransactionState.COMPLETED:
            if tx.encrypted and msg.transaction_id in getattr(
                    requestor, "pending_sealed", {}):
                self.swarm.metrics.recovery.key_retransmits += 1
                self.swarm.send_control(
                    self.id, requestor, requestor.receive_key,
                    msg.transaction_id,
                    ledger.peek_key(msg.transaction_id), kind="key")
            return
        if tx.state is not TransactionState.RECIPROCATED:
            return
        old_payee = tx.payee_id
        ledger.reopen(msg.transaction_id, self.sim.now)
        self.swarm.metrics.recovery.reopens += 1
        exclude = (frozenset({old_payee}) if old_payee is not None
                   else frozenset())
        new_payee = self.reassign_or_forgive(tx, requestor,
                                             (tx.piece_index,),
                                             exclude=exclude)
        if new_payee is not None:
            self.swarm.send_control(self.id, requestor,
                                    requestor.on_reopened,
                                    msg.transaction_id, kind="reopen")

    # ------------------------------------------------------------------
    # Reassignment / forgiveness (Sec. II-B4)
    # ------------------------------------------------------------------
    def reassign_or_forgive(self, tx: Transaction,
                            requestor: Optional[Peer],
                            extra: Tuple[int, ...] = (),
                            exclude: frozenset = frozenset()
                            ) -> Optional[str]:
        """The designated payee is gone, satisfied or vetoed; as the
        donor of ``tx`` pick a replacement payee that wants one of the
        requestor's offerings — its completed pieces plus ``extra``
        (the exchange's own piece, when it counts as offerable) — or
        forgive the obligation.

        ``requestor`` is the peer whose offerings back the exchange;
        ``None`` means there is nothing to offer and forgiveness is
        forced.  ``exclude`` carries the requestor's veto list —
        neighbors whose pending window at the requestor is full
        (uncooperative per the requestor's own history, Sec. II-D2).
        Returns the new payee id, or None when forgiven.
        """
        ledger = self.state.ledger
        swarm = self.swarm
        direct = (self.active and self.id not in exclude
                  and requestor is not None
                  and offers_interest(swarm, requestor, extra, self))
        if direct:
            new_payee: Optional[str] = self.id
        elif requestor is None:
            new_payee = None
        else:
            index = swarm.interest
            candidates = []
            if index is not None:
                row = index.row(requestor.id)
                wanter_sets = [index.wanters(p) for p in extra]
                blocked = self._flow_blocked
                banned = self._banned_until
                now = self.sim.now
                for nid in swarm.topology.sorted_neighbors(self.id):
                    if nid == tx.requestor_id or nid in exclude \
                            or nid in blocked:
                        continue
                    if banned and now < banned.get(nid, 0.0):
                        continue
                    if nid in row or any(nid in s
                                         for s in wanter_sets):
                        candidates.append(nid)
                new_payee = (self.sim.rng.choice(candidates)
                             if candidates else None)
            elif (swarm.columnar is not None
                    and isinstance(requestor.book, ColumnarBook)
                    and self.id in swarm.columnar.row_of):
                # Columnar arm: identical conjunction to the naive walk
                # below over the flat adjacency arrays; candidates come
                # out already in sorted-id order, so the rng draw
                # matches ``rng.choice(sorted(candidates))``.
                store = swarm.columnar
                row = store.row_of[self.id]
                offer_mask = requestor.book._cmask | set_to_mask(extra)
                books = store.books
                alive = store.alive
                adj_rows = store.adj_rows[row]
                for pos, nid in enumerate(store.adj_ids[row]):
                    if nid == tx.requestor_id or nid in exclude:
                        continue
                    nrow = adj_rows[pos]
                    if not alive[nrow]:
                        continue
                    if not self.flow.eligible(nid):
                        continue
                    if not self.cooperative(nid):
                        continue
                    if books[nrow]._wmask & offer_mask:
                        candidates.append(nid)
                new_payee = (self.sim.rng.choice(candidates)
                             if candidates else None)
            else:
                for peer in self.neighbor_peers():
                    if peer.id in (self.id, tx.requestor_id):
                        continue
                    if peer.id in exclude:
                        continue
                    if not self.flow.eligible(peer.id):
                        continue
                    if not self.cooperative(peer.id):
                        continue
                    if offers_interest(swarm, requestor, extra, peer):
                        candidates.append(peer.id)
                new_payee = (self.sim.rng.choice(sorted(candidates))
                             if candidates else None)
        if new_payee is None:
            key = ledger.forgive(tx.transaction_id, self.sim.now)
            self.swarm.metrics.recovery.forgives += 1
            if self.active and self.id == tx.donor_id \
                    and not tx.written_off:
                # Drain the window only when we are the donor who
                # counted the upload, and — same guard as on_report —
                # only if the exchange was not already written off:
                # either way a second drain would double-decrement and
                # re-open a blocked neighbor early.  (A payee holding
                # the key after donor departure forgives on the
                # donor's behalf but never sent this piece, so its own
                # window owes nothing.)
                self.flow.on_reciprocation_confirmed(tx.requestor_id)
            requestor = self.swarm.find_peer(tx.requestor_id)
            if requestor is not None and requestor.active:
                self.swarm.send_control(self.id, requestor,
                                        requestor.receive_key,
                                        tx.transaction_id, key,
                                        kind="key")
                self._arm_key_retry(tx.transaction_id, 1)
            ledger.terminate_chain(tx.chain_id, self.sim.now)
            return None
        ledger.reassign_payee(tx.transaction_id, new_payee)
        return new_payee

    # ------------------------------------------------------------------
    # Departure (Sec. II-B4)
    # ------------------------------------------------------------------
    def on_upload_cancelled(self, plan: UploadPlan) -> None:
        """The receiver departed mid-transfer: drop the transaction.

        Chain-initiating uploads take their chain with them; cancelled
        *reciprocations* leave the chain alive — the leecher override
        re-queues the obligation so a replacement payee can be found.
        """
        tx_id = plan.meta.get("tx")
        if tx_id is None:
            return
        ledger = self.state.ledger
        tx = ledger.get(tx_id)
        if tx.state is TransactionState.CREATED:
            ledger.abort(tx_id, self.sim.now)
            if tx.reciprocates is None:
                ledger.terminate_chain(tx.chain_id, self.sim.now)

    def on_leave(self) -> None:
        ledger = self.state.ledger
        for tx in ledger.open_transactions_involving(self.id):
            if tx.donor_id == self.id and tx.encrypted:
                if tx.state is TransactionState.CREATED:
                    # Our upload is being cancelled by the departure.
                    ledger.abort(tx.transaction_id, self.sim.now)
                    ledger.terminate_chain(tx.chain_id, self.sim.now)
                elif tx.state is TransactionState.DELIVERED:
                    payee = self.swarm.find_peer(tx.payee_id) \
                        if tx.payee_id else None
                    if (payee is None or not payee.active
                            or tx.payee_id == self.id):
                        # Departed/self payee: pick a replacement
                        # before we go (Sec. II-B4).
                        payee = self._replacement_payee_for(tx)
                        if payee is not None:
                            self.state.ledger.reassign_payee(
                                tx.transaction_id, payee.id)
                    if payee is not None:
                        # Hand the key to the payee on the way out.
                        self.state.handover.add(tx.transaction_id)
                    else:
                        # Nobody to hand the key to: the exchange dies
                        # with us.  No key is gifted — the requestor
                        # drops the sealed piece and re-fetches it.
                        self._abort_on_departure(tx)
                elif tx.state is TransactionState.RECIPROCATED:
                    # The report is in flight; on_report still works
                    # after we leave (the key was sent on our way out).
                    pass
        super().on_leave()

    def _replacement_payee_for(self, tx: Transaction):
        """A live neighbor that needs something from ``tx``'s
        requestor, eligible to become the replacement payee."""
        requestor = self.swarm.find_peer(tx.requestor_id)
        if requestor is None or not requestor.active:
            return None
        index = self.swarm.interest
        if index is not None:
            row = index.row(requestor.id)
            piece_wanters = index.wanters(tx.piece_index)
            ids = [nid for nid in
                   self.swarm.topology.sorted_neighbors(self.id)
                   if nid != tx.requestor_id
                   and (nid in row or nid in piece_wanters)]
            if not ids:
                return None
            return self.swarm.find_peer(self.sim.rng.choice(ids))
        extra = (tx.piece_index,)
        candidates = []
        for peer in self.neighbor_peers():
            if peer.id in (self.id, tx.requestor_id):
                continue
            if offers_interest(self.swarm, requestor, extra, peer):
                candidates.append(peer)
        if not candidates:
            return None
        candidates.sort(key=_peer_id)
        return self.sim.rng.choice(candidates)

    def _abort_on_departure(self, tx: Transaction) -> None:
        _orphan_exchange(self.state, tx)


def _peer_id(peer: Peer) -> str:
    """Sort key for candidate lists (module-level so per-event sorts
    don't rebuild a closure each call — SL303)."""
    return peer.id


def _check_stall(state: TChainState, transaction_id: int) -> None:
    """Watchdog marking chains stalled by idle requestors terminated
    (metrics bookkeeping only — see DEFAULT_STALL_TIMEOUT_S)."""
    ledger = state.ledger
    tx = ledger.get(transaction_id)
    if tx.state is TransactionState.ABORTED:
        # Aborted before ever being reciprocated (e.g. the requestor
        # discarded the sealed piece): dead exchange, write it off.
        _write_off(state, tx)
        return
    if tx.state is not TransactionState.DELIVERED:
        return
    chain = state.registry.get(tx.chain_id)
    if not chain.active:
        return
    requestor = state.swarm.find_peer(tx.requestor_id)
    if requestor is None or not requestor.active:
        ledger.terminate_chain(tx.chain_id, state.swarm.sim.now)
        _write_off(state, tx)
        return
    if tx.transaction_id in getattr(requestor, "obligations", ()):
        # The requestor still has the obligation queued: it is trying
        # (slow uplink, payee churn), not refusing.  Striking honest
        # 400 Kbps stragglers would exile them for the backoff period;
        # look again later instead.  (Free-riders do not linger here:
        # they discard the sealed piece, the transaction aborts, and
        # the write-off lands through the ABORTED branch above.)
        state.swarm.sim.schedule(state.stall_timeout_s, _check_stall,
                                 state, transaction_id)
        return
    if requestor.uplink.busy_slots == 0:
        # Idle but not reciprocating: free-riding; the chain is dead.
        # The donor writes the exchange off its pending window — the
        # dead transaction no longer counts as outstanding (the
        # free-rider's next window fills just as fast, so it stays
        # starved of throughput rather than permanently banned).
        ledger.terminate_chain(tx.chain_id, state.swarm.sim.now)
        _write_off(state, tx)
        return
    # Busy (backlogged) requestor: look again later.
    state.swarm.sim.schedule(state.stall_timeout_s, _check_stall,
                             state, transaction_id)


def _write_off(state: TChainState, tx: Transaction) -> None:
    if tx.written_off or not tx.encrypted:
        return
    tx.written_off = True
    donor = state.swarm.find_peer(tx.donor_id)
    if donor is not None and donor.active \
            and isinstance(donor, _TChainNode):
        donor.flow.write_off(tx.requestor_id)
        donor.note_exchange_written_off(tx.requestor_id)
        donor.pump()


class TChainSeeder(_TChainNode):
    """A T-Chain seeder: initiates chains on every free slot."""

    kind = "seeder"

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None,
                 n_slots: Optional[int] = None):
        super().__init__(
            swarm,
            peer_id if peer_id is not None else swarm.new_peer_id("S"),
            capacity_kbps if capacity_kbps is not None
            else swarm.config.seeder_capacity_kbps,
            n_slots if n_slots is not None else swarm.config.seeder_slots,
            book=full_book(swarm.torrent))

    def next_upload(self) -> Optional[UploadPlan]:
        candidates = self._eligible_requestors()
        while candidates:
            requestor_id = self.sim.rng.choice(candidates)
            plan = self._plan_donation(requestor_id)
            if plan is not None:
                return plan
            candidates.remove(requestor_id)
        return None


class TChainLeecher(BaselineLeecher, _TChainNode):
    """A compliant T-Chain leecher."""

    kind = "leecher"

    def __init__(self, swarm: "Swarm", peer_id: Optional[str] = None,
                 capacity_kbps: Optional[float] = None):
        super().__init__(swarm, peer_id, capacity_kbps,
                         n_slots=swarm.config.upload_slots)
        #: transaction ids whose reciprocation we still owe, FIFO
        self.obligations: List[int] = []
        self._retry_pending = False
        #: tx id -> sealed piece held until the key arrives
        self.pending_sealed: Dict[int, object] = {}
        #: tx id -> plead count (each key timeout re-pleads)
        self._plead_attempts: Dict[int, int] = {}
        #: (time, piece, "encrypted"|"decrypted") for Fig. 5
        self.piece_log: List[Tuple[float, int, str]] = []

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def next_upload(self) -> Optional[UploadPlan]:
        # With no obligations the fulfilment scan is a guaranteed
        # no-op (and schedules no retry), so skip the call entirely —
        # this is the common case for every post-payload pump.
        if self.obligations:
            plan = self._next_obligation_upload()
            if plan is not None:
                return plan
        if self.swarm.config.opportunistic_seeding \
                and should_opportunistically_seed(
                    self.book.completed_count, len(self.obligations)):
            return self._opportunistic_plan()
        return None

    def _next_obligation_upload(self) -> Optional[UploadPlan]:
        ledger = self.state.ledger
        for tx_id in list(self.obligations):
            tx = ledger.get(tx_id)
            if tx.state is not TransactionState.DELIVERED:
                # Completed through forgiveness or collusion, or aborted.
                self._drop_obligation(tx_id)
                continue
            plan = self._try_fulfil(tx)
            if plan is not None:
                self._drop_obligation(tx_id)
                plan.meta["obligation"] = tx_id
                return plan
            if tx.state is not TransactionState.DELIVERED:
                # _try_fulfil settled it (forgiven or aborted).
                self._drop_obligation(tx_id)
        if self.obligations:
            self._schedule_obligation_retry()
        return None

    def _drop_obligation(self, tx_id: int) -> None:
        if tx_id in self.obligations:
            self.obligations.remove(tx_id)

    def _schedule_obligation_retry(self) -> None:
        if self._retry_pending:
            return
        self._retry_pending = True
        self.sim.schedule(OBLIGATION_RETRY_S, self._retry_pump)

    def _retry_pump(self) -> None:
        self._retry_pending = False
        if self.active:
            self.pump()

    def _try_fulfil(self, tx: Transaction) -> Optional[UploadPlan]:
        """Attempt to reciprocate ``tx`` by uploading to its payee."""
        forward = None
        if self.book.completed_count == 0:
            forward = tx  # newcomer: forward the sealed piece itself
        extra = (tx.piece_index,) if forward is not None else ()

        payee = self.swarm.find_peer(tx.payee_id)
        # The payee is unusable if gone, satisfied, or — the adaptive
        # receiver selection of Sec. II-D2, applied by the peer who
        # actually holds the history — known to us as uncooperative
        # (our own pending window on it is full).
        payee_stale = (payee is None or not payee.active
                       or not offers_interest(self.swarm, self, extra,
                                              payee)
                       or not self.flow.eligible(payee.id))
        if payee_stale:
            index = self.swarm.interest
            if index is not None:
                adjacent = self.swarm.topology.neighbors(self.id)
                tracked = index._tracked
                banned = set(nid for nid in self._flow_blocked
                             if nid in adjacent and nid in tracked)
            else:
                banned = set(
                    p.id for p in self.neighbor_peers()
                    if not self.flow.eligible(p.id))
            if payee is not None:
                banned.add(payee.id)  # whatever made it stale persists
            banned = frozenset(banned)
            donor = self.swarm.find_peer(tx.donor_id)
            if donor is not None and donor.active:
                holder = donor
            elif tx.transaction_id in self.state.handover \
                    and payee is not None and payee.active:
                # The donor left and handed its key to the payee; the
                # payee reassigns (or forgives) on the donor's behalf.
                holder = payee
            else:
                _orphan_exchange(self.state, tx)
                return None
            new_payee = holder.reassign_or_forgive(tx, self, extra,
                                                   exclude=banned)
            if new_payee is None:
                return None
            payee = self.swarm.find_peer(new_payee)
            if payee is None or not payee.active:
                return None
        if payee.id == self.id:
            # Direct reciprocity onto ourselves cannot be uploaded;
            # only happens via reassignment races — forgive instead.
            donor = self.swarm.find_peer(tx.donor_id)
            if donor is not None and donor.active:
                donor.reassign_or_forgive(tx, None)
            else:
                _orphan_exchange(self.state, tx)
            return None
        if self.uploading_to(payee.id):
            return None  # busy with this receiver; retry on next pump
        return self._plan_donation(payee.id, reciprocates=tx,
                                   forward_of=forward)

    def _opportunistic_plan(self) -> Optional[UploadPlan]:
        """Initiate a chain ourselves (Sec. II-D3).

        The initiating leecher "may, and probably will, designate
        itself as the leecher to whom C must reciprocate, which
        benefits B itself" — so it rationally prefers requestors that
        *possess a completed piece it needs* (direct reciprocity
        possible).  Peers with nothing to give back — newcomers and,
        crucially, free-riders sitting on undecrypted pieces — are
        only served when no direct candidate exists.  This is what
        keeps voluntary donations from being farmed by free-riders.
        """
        candidates = self._eligible_requestors()
        index = self.swarm.interest
        direct, fallback = [], []
        if index is not None:
            my_id = self.id
            for candidate_id in candidates:
                if my_id in index.row(candidate_id):
                    direct.append(candidate_id)
                else:
                    fallback.append(candidate_id)
        else:
            my_book = self.book
            use_masks = isinstance(my_book, ColumnarBook)
            my_wanted = None if use_masks else my_book.wanted()
            for candidate_id in candidates:
                peer = self.swarm.find_peer(candidate_id)
                if peer is None:
                    fallback.append(candidate_id)
                    continue
                other_book = peer.book
                if use_masks and isinstance(other_book, ColumnarBook):
                    if my_book._wmask & other_book._cmask:
                        direct.append(candidate_id)
                    else:
                        fallback.append(candidate_id)
                    continue
                if my_wanted is None:
                    my_wanted = my_book.wanted()
                if my_wanted & other_book.completed:
                    direct.append(candidate_id)
                else:
                    fallback.append(candidate_id)
        for pool in (direct, fallback):
            while pool:
                requestor_id = self.sim.rng.choice(pool)
                plan = self._plan_donation(requestor_id)
                if plan is not None:
                    return plan
                pool.remove(requestor_id)
        return None

    def on_plan_failed(self, plan: UploadPlan) -> None:
        obligation = plan.meta.get("obligation")
        if obligation is not None:
            self.obligations.insert(0, obligation)

    def on_upload_cancelled(self, plan: UploadPlan) -> None:
        super().on_upload_cancelled(plan)
        # A cancelled reciprocation leaves its obligation unfulfilled:
        # put it back so the donor can designate a replacement payee.
        obligation = plan.meta.get("obligation")
        if obligation is None or not self.active:
            return
        tx = self.state.ledger.get(obligation)
        if tx.state is TransactionState.DELIVERED \
                and obligation not in self.obligations:
            self.obligations.append(obligation)
            self.pump()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def on_payload(self, payload, uploader_id: str) -> None:
        if isinstance(payload, EncryptedPieceMessage):
            self._on_encrypted_piece(payload)
        elif isinstance(payload, PlainPieceMessage):
            self._on_plain_piece(payload)
        else:  # pragma: no cover - protocol mixing is a bug
            raise TypeError(f"unexpected payload {payload!r}")
        self.pump()

    def _dead_letter(self, transaction_id: int, piece: int) -> bool:
        """True when an in-flight piece lands on an aborted exchange.

        The transfer finished (or was stalled by fault injection)
        before the donor departed; the departure aborted the
        still-CREATED transaction, so the late payload is a dead
        letter — drop it rather than drive the ledger through an
        illegal ABORTED -> DELIVERED edge, and put the piece back on
        the want list so it is re-fetched from someone reachable.
        """
        tx = self.state.ledger.get(transaction_id)
        if tx.state is not TransactionState.ABORTED:
            return False
        self.book.unexpect(piece)
        self.swarm.metrics.recovery.dead_letters += 1
        return True

    def _on_encrypted_piece(self, msg: EncryptedPieceMessage) -> None:
        if self._dead_letter(msg.transaction_id,
                             msg.sealed.piece_index):
            return
        ledger = self.state.ledger
        self.pending_sealed[msg.transaction_id] = msg.sealed
        self.piece_log.append((self.sim.now, msg.sealed.piece_index,
                               "encrypted"))
        prev = ledger.mark_delivered(msg.transaction_id, self.sim.now)
        if prev is not None:
            self._report_as_payee(prev)
        self.obligations.append(msg.transaction_id)
        if self.state.key_timeout_s:
            self.sim.schedule(self.state.key_timeout_s,
                              self._check_key_timeout,
                              msg.transaction_id)
        self._maybe_collude(msg)

    def _on_plain_piece(self, msg: PlainPieceMessage) -> None:
        if self._dead_letter(msg.transaction_id, msg.piece_index):
            return
        ledger = self.state.ledger
        prev = ledger.mark_delivered(msg.transaction_id, self.sim.now)
        if prev is not None:
            self._report_as_payee(prev)
        self.piece_log.append((self.sim.now, msg.piece_index, "decrypted"))
        self.complete_piece(msg.piece_index)

    def _report_as_payee(self, prev: Transaction) -> None:
        """We are the payee of ``prev``: report the reciprocation,
        retransmitting with backoff until the donor's ledger shows it
        landed."""
        self._send_report(prev.transaction_id, 1)

    def _send_report(self, transaction_id: int, attempt: int) -> None:
        ledger = self.state.ledger
        tx = ledger.get(transaction_id)
        if attempt > 1:
            # Retransmission timer.  The ledger is shared state:
            # REPORTED / COMPLETED mean the report landed, and a
            # reopen (DELIVERED) or abort means our duty is void.
            if not self.active \
                    or tx.state is not TransactionState.RECIPROCATED:
                return
            self.swarm.metrics.recovery.report_retransmits += 1
        donor = self.swarm.find_peer(tx.donor_id)
        if donor is not None:
            self.swarm.send_control(self.id, donor, donor.on_report,
                                    transaction_id, True, kind="report")
        elif transaction_id in self.state.handover:
            # The donor left and handed us the key (Sec. II-B4): the
            # release is a local act, nothing to retransmit.
            self.sim.schedule(self.swarm.config.control_latency_s,
                              self._release_as_holder, transaction_id)
            return
        else:
            return  # donor gone, no handover: the plead path cleans up
        if attempt <= self.state.retry_attempts:
            self.sim.schedule(self.state.retry_delay(attempt),
                              self._send_report, transaction_id,
                              attempt + 1)

    def _release_as_holder(self, transaction_id: int) -> None:
        ledger = self.state.ledger
        tx = ledger.get(transaction_id)
        if tx.state is not TransactionState.RECIPROCATED:
            return
        ledger.report_reciprocation(transaction_id, self.sim.now)
        key = ledger.release_key(transaction_id, self.sim.now)
        requestor = self.swarm.find_peer(tx.requestor_id)
        if requestor is not None and requestor.active:
            self.swarm.send_control(self.id, requestor,
                                    requestor.receive_key,
                                    transaction_id, key, kind="key")
            self._arm_key_retry(transaction_id, 1)

    def _rearm_key_timeout(self, transaction_id: int) -> None:
        self.sim.schedule(self.state.key_timeout_s,
                          self._check_key_timeout, transaction_id)

    def _check_key_timeout(self, transaction_id: int) -> None:
        """We hold a sealed piece long past reciprocating and no key
        came: the reception report or the key release was swallowed
        (lossy control plane, silent or crashed payee).  Plead the
        case to the donor (Sec. II-B4); with the donor gone and
        nobody holding its key duty, write the exchange off."""
        if not self.active:
            return
        if transaction_id not in self.pending_sealed:
            return
        recovery = self.swarm.metrics.recovery
        tx = self.state.ledger.get(transaction_id)
        if tx.state is TransactionState.DELIVERED:
            if transaction_id not in self.obligations:
                # Not our backlog: a reopen's notification was lost —
                # requeue so the obligation is actually retried.
                self.obligations.append(transaction_id)
                self.pump()
            self._rearm_key_timeout(transaction_id)
            return
        if tx.state not in (TransactionState.RECIPROCATED,
                            TransactionState.COMPLETED):
            return
        recovery.key_timeouts += 1
        donor = self.swarm.find_peer(tx.donor_id)
        if donor is not None and donor.active:
            recovery.pleads += 1
            attempt = self._plead_attempts.get(transaction_id, 0) + 1
            self._plead_attempts[transaction_id] = attempt
            self.swarm.send_control(
                self.id, donor, donor.on_plead,
                PleadMessage(self.id, transaction_id, attempt),
                kind="plead")
            self._rearm_key_timeout(transaction_id)
            return
        if tx.state is TransactionState.RECIPROCATED \
                and transaction_id in self.state.handover:
            payee = self.swarm.find_peer(tx.payee_id) \
                if tx.payee_id else None
            if payee is not None and payee.active:
                # The departed donor handed its key duty to the
                # payee; that release is a local act which cannot be
                # lost — wait it out.
                self._rearm_key_timeout(transaction_id)
                return
        # Donor unreachable (crashed or departed) and nobody holds
        # its key duty: the exchange is orphaned.  No key is gifted —
        # drop the sealed piece and re-fetch the piece elsewhere.
        _orphan_exchange(self.state, tx)

    def on_reopened(self, transaction_id: int) -> None:
        """The donor honored our plead: the transaction is DELIVERED
        again with a fresh payee — reciprocate anew."""
        if not self.active:
            return
        if transaction_id not in self.pending_sealed:
            return
        tx = self.state.ledger.get(transaction_id)
        if tx.state is TransactionState.DELIVERED \
                and transaction_id not in self.obligations:
            self.obligations.append(transaction_id)
        self.pump()

    def receive_key(self, transaction_id: int, key) -> None:
        if not self.active:
            return
        sealed = self.pending_sealed.pop(transaction_id, None)
        if sealed is None:
            return
        expected = None
        if sealed.ciphertext is not None:
            # real_crypto mode: decrypt and verify against ground
            # truth — an authentication or content failure here is a
            # protocol bug, not a recoverable condition.
            expected = piece_payload(self.swarm.torrent,
                                     sealed.piece_index)
        sealed.open(key, expected_plaintext=expected)
        self.piece_log.append((self.sim.now, sealed.piece_index,
                               "decrypted"))
        self.complete_piece(sealed.piece_index)
        self.pump()

    def _maybe_collude(self, msg: EncryptedPieceMessage) -> None:
        """Collusion attack hook — compliant leechers never collude;
        colluding free-riders override the guard via the colluder set
        (Sec. III-A4 / Fig. 8)."""
        if not self.state.are_colluders(self.id, msg.payee_id):
            return
        payee = self.swarm.find_peer(msg.payee_id)
        donor = self.swarm.find_peer(msg.donor_id)
        if payee is None or donor is None:
            return
        latency = self.swarm.config.control_latency_s
        # The colluding payee vouches for a reciprocation that never
        # happened; the donor cannot tell and releases the key.  The
        # false report is an ordinary control message — a faulty
        # control plane drops colluders' traffic like anyone else's.
        self.swarm.send_control(msg.payee_id, donor, donor.on_report,
                                msg.transaction_id, False,
                                kind="report", latency=2 * latency)

    # ------------------------------------------------------------------
    # Departure / identity change
    # ------------------------------------------------------------------
    def _forfeit_requestor_exchanges(self) -> None:
        """Abort every unfulfilled reciprocation duty we hold."""
        ledger = self.state.ledger
        for tx in ledger.open_transactions_involving(self.id):
            if tx.requestor_id == self.id \
                    and tx.state is TransactionState.DELIVERED:
                ledger.abort(tx.transaction_id, self.sim.now)
                ledger.terminate_chain(tx.chain_id, self.sim.now)
        self.obligations.clear()
        self.pending_sealed.clear()
        self._plead_attempts.clear()

    def on_leave(self) -> None:
        # Unfulfilled obligations die with us: both the queued ones and
        # any whose reciprocation upload is being cancelled mid-flight.
        self._forfeit_requestor_exchanges()
        super().on_leave()

    def on_whitewash(self) -> None:
        """Whitewashing forfeits every in-flight exchange.

        The open transactions name the *abandoned* identity, so a
        report, plead or key addressed to or from the new identity is
        indistinguishable from a forgery and gets ignored — which is
        exactly why encrypted pieces defeat whitewashing
        (Sec. III-A3).  Unlike a departure the peer stays, so each
        dropped sealed piece is un-expected first: the piece stays
        wanted and can be re-fetched under the new identity.
        """
        for sealed in self.pending_sealed.values():
            self.book.unexpect(sealed.piece_index)
        self._forfeit_requestor_exchanges()
        super().on_whitewash()

    def on_neighbor_disconnected(self, neighbor_id: str) -> None:
        self.flow.forget(neighbor_id)
        super().on_neighbor_disconnected(neighbor_id)


def _orphan_exchange(state: TChainState, tx: Transaction) -> None:
    """Last-resort cleanup: the donor (and any key-duty holder) is
    unreachable.

    The exchange is dead.  An open transaction aborts, taking its
    chain; either way no key is gifted — the requestor drops the
    sealed piece so it can re-fetch the piece from someone reachable.
    The loss is bounded by design (Sec. II-C): one upload, never the
    whole download.
    """
    if tx.state not in (TransactionState.COMPLETED,
                        TransactionState.ABORTED):
        state.ledger.abort(tx.transaction_id, state.swarm.sim.now)
        state.ledger.terminate_chain(tx.chain_id, state.swarm.sim.now)
    state.swarm.metrics.recovery.orphaned_chains += 1
    _drop_sealed_at_requestor(state, tx)


def _drop_sealed_at_requestor(state: TChainState,
                              tx: Transaction) -> None:
    """Clear a dead transaction's sealed piece from its requestor."""
    requestor = state.swarm.find_peer(tx.requestor_id)
    if requestor is None or not requestor.active \
            or not isinstance(requestor, TChainLeecher):
        return
    sealed = requestor.pending_sealed.pop(tx.transaction_id, None)
    if sealed is not None:
        requestor.book.unexpect(sealed.piece_index)
    if tx.transaction_id in requestor.obligations:
        requestor.obligations.remove(tx.transaction_id)
    requestor.pump()
