"""Swarm orchestration.

A :class:`Swarm` owns the simulator, torrent, tracker, topology and the
peer population, and provides the experiment-facing run loop.  It is
protocol-agnostic: protocols are peer subclasses added through
:meth:`add_peer` (usually by an arrival workload).

The run loop stops when every leecher able to finish has left, or at
``max_time``.  Free-riders that can never finish (the T-Chain outcome
of Fig. 7(b)) do not keep the simulation alive forever.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import os

from repro.analysis.metrics import SwarmMetrics
from repro.bt.columnar import ColumnarState
from repro.bt.config import SwarmConfig
from repro.bt.interest import InterestIndex
from repro.bt.peer import Peer
from repro.bt.torrent import Torrent
from repro.bt.tracker import Tracker
from repro.net.topology import Topology
from repro.sim.engine import CoalesceGate, Simulator, TimerHerd


def _default_baseline_path() -> str:
    """The checked-in ``simlint-baseline.json`` (repo root, two levels
    above the ``repro`` package in the src layout)."""
    package_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))  # .../src/repro
    return os.path.join(os.path.dirname(os.path.dirname(package_dir)),
                        "simlint-baseline.json")


class Swarm:
    """One simulated file-sharing swarm."""

    def __init__(self, config: SwarmConfig):
        self.config = config
        # The raw value flows through so ``"races"`` selects the
        # order-sensitivity reporter, not just the boolean sanitizer.
        # ``profile="alloc"`` attaches the per-event allocation
        # profiler; ``pool_events=False`` disables EventHandle reuse
        # (the alloc_audit bench leg runs both ways).
        self.sim = Simulator(
            seed=config.seed,
            sanitize=config.extra.get("sanitize", False),
            profile=config.extra.get("profile", False),
            pool_events=config.extra.get("pool_events", True))
        self.torrent = Torrent(config.n_pieces, config.piece_size_kb)
        self.tracker = Tracker(self.sim.rng, config.tracker_list_size)
        self.topology = Topology(config.max_neighbors,
                                 config.refill_threshold)
        self.topology.on_disconnect = self._notify_disconnect
        #: Incremental interest index (see :mod:`repro.bt.interest`).
        #: On by default; ``extra={"interest_index": False}`` selects
        #: the naive-rescan reference paths (the trace-equality tests
        #: and the bench equivalence leg run both).
        self.interest: Optional[InterestIndex] = None
        if config.extra.get("interest_index", True):
            self.interest = InterestIndex(self)
        #: Columnar rows + bitmask books (see :mod:`repro.bt.columnar`).
        #: On by default; ``extra={"columnar": False}`` keeps the
        #: per-peer set-backed ``PieceBook`` objects (the trace-equality
        #: tests and the crowd bench equivalence leg run both).
        self.columnar: Optional[ColumnarState] = None
        if config.extra.get("columnar", True):
            self.columnar = ColumnarState(self)
        if self.interest is not None or self.columnar is not None:
            self.topology.on_edge_added = self._on_edge_added
            self.topology.on_edge_removed = self._on_edge_removed
        #: SL203-gated timer coalescing (opt-in, docs/PERF.md): the
        #: gate refuses every handler in the baseline's do-not-coalesce
        #: inventory; a missing baseline refuses everything.
        self._coalesce_gate: Optional[CoalesceGate] = None
        self._herds: Dict[Tuple[float, Optional[float]], TimerHerd] = {}
        if config.extra.get("coalesce_timers", False):
            baseline = config.extra.get("coalesce_baseline")
            if baseline is None:
                baseline = _default_baseline_path()
            self._coalesce_gate = CoalesceGate.from_baseline(baseline)
        self.metrics = SwarmMetrics()
        self.peers: Dict[str, Peer] = {}
        self.departed: Dict[str, Peer] = {}
        self.active_leechers = 0
        self.finished_leechers = 0
        self.on_finished: Optional[Callable[[Peer], None]] = None
        self.last_activity = 0.0
        self._next_auto_id = 0
        # Per-instance: a class-level counter would alias arrival
        # bookkeeping across swarms sharing one process (sweeps,
        # side-by-side protocol comparisons).
        self._pending_arrivals = 0
        #: optional :class:`repro.faults.injector.FaultInjector`;
        #: installed via ``FaultInjector.attach``, never constructed
        #: here (the swarm stays importable without the faults package)
        self.fault_injector = None
        #: Optional network substrate (:mod:`repro.net.link`).  Off by
        #: default — ``extra={"net": spec}`` enables it; the flat model
        #: then only pays ``self.net is None`` checks, keeping default
        #: runs bit-identical (tests/test_net_substrate.py).
        self.net = None
        net_spec = config.extra.get("net")
        if net_spec is not None:
            from repro.net.link import build_network
            self.net = build_network(net_spec, seed=config.seed)
            self.net.attach(self)

    # ------------------------------------------------------------------
    # Peer management
    # ------------------------------------------------------------------
    def new_peer_id(self, prefix: str = "L") -> str:
        """A fresh unique peer id."""
        self._next_auto_id += 1
        return f"{prefix}{self._next_auto_id}"

    def add_peer(self, peer: Peer) -> Peer:
        """Join a constructed peer into the swarm now."""
        peer.join()
        return peer

    def register(self, peer: Peer) -> None:
        """Called by ``Peer.join``; wires topology and counters."""
        if peer.id in self.peers:
            raise ValueError(f"duplicate peer id {peer.id!r}")
        self.peers[peer.id] = peer
        if self.columnar is not None:
            # Before the interest index sees the peer: the listener it
            # installs must land on the columnarized book.
            self.columnar.adopt(peer)
        self.topology.add_peer(peer.id,
                               unlimited=peer.unlimited_neighbors)
        if self.net is not None:
            # Place onto the substrate at registration: join order is
            # deterministic, so round-robin placement is too.
            self.net.place(peer.id)
        if self.interest is not None:
            self.interest.add_peer(peer)
        if peer.kind != "seeder":
            self.active_leechers += 1

    def note_deactivated(self, peer: Peer) -> None:
        """A peer flipped ``active = False`` (leave/crash/whitewash).

        Fired *immediately* after deactivation, before transfer
        cancellations pump other peers, so the interest index drops
        the peer in the same instant ``neighbor_peers()`` stops
        returning it.
        """
        if self.columnar is not None:
            self.columnar.on_deactivated(peer)
        if self.interest is not None:
            self.interest.remove_peer(peer)

    def deregister(self, peer: Peer) -> None:
        """Called by ``Peer.leave``."""
        if self.interest is not None:
            self.interest.remove_peer(peer)  # idempotent backstop
        self.peers.pop(peer.id, None)
        self.topology.remove_peer(peer.id)
        self.departed[peer.id] = peer
        if peer.kind != "seeder":
            self.active_leechers -= 1
        self.metrics.record_peer(peer, self.sim.now)
        if self.columnar is not None:
            # Last: the detached book keeps answering (metrics above,
            # late unexpects from cancelled transfers) off its own
            # masks; only the row is recycled here.
            self.columnar.release(peer.id)

    def find_peer(self, peer_id: str) -> Optional[Peer]:
        """Active peer by id, else None."""
        return self.peers.get(peer_id)

    def connect(self, a: str, b: str) -> bool:
        """Create a neighbor edge and fire both connection hooks.

        Re-connecting an existing edge is a no-op: the hooks fire only
        for genuinely new neighbors (tracker refills mostly return
        peers we already know; re-firing would stampede the pumps).
        """
        if self.topology.are_neighbors(a, b):
            return True
        peer_a, peer_b = self.peers.get(a), self.peers.get(b)
        if peer_a is not None and not peer_a.accepts_connection_from(b):
            return False
        if peer_b is not None and not peer_b.accepts_connection_from(a):
            return False
        if not self.topology.connect(a, b):
            return False
        peer_a, peer_b = self.peers.get(a), self.peers.get(b)
        if peer_a is not None:
            peer_a.on_neighbor_connected(b)
        if peer_b is not None:
            peer_b.on_neighbor_connected(a)
        return True

    def _notify_disconnect(self, remaining: str, departed: str) -> None:
        peer = self.peers.get(remaining)
        if peer is not None:
            peer.on_neighbor_disconnected(departed)

    def _on_edge_added(self, a: str, b: str) -> None:
        """Fan one topology edge event out to every flat view.

        Columnar first (pure adjacency bookkeeping), then the interest
        index (which reads books but never the adjacency columns) —
        neither depends on the other's update.
        """
        if self.columnar is not None:
            self.columnar.on_edge_added(a, b)
        if self.interest is not None:
            self.interest.on_edge_added(a, b)

    def _on_edge_removed(self, a: str, b: str) -> None:
        if self.columnar is not None:
            self.columnar.on_edge_removed(a, b)
        if self.interest is not None:
            self.interest.on_edge_removed(a, b)

    # ------------------------------------------------------------------
    # Timer coalescing
    # ------------------------------------------------------------------
    def periodic(self, interval_s: float, callback, key: str,
                 first_delay: Optional[float] = None):
        """Try to coalesce a periodic handler into a shared herd.

        Returns a :class:`repro.sim.engine.HerdMember` when coalescing
        is enabled (``extra={"coalesce_timers": True}``) AND the SL203
        gate permits the handler; ``None`` otherwise, in which case the
        caller constructs its own ``PeriodicTask`` — keeping the
        construction site (and thus the simrace schedule-site
        analysis) in the protocol module that owns the handler.
        """
        gate = self._coalesce_gate
        if gate is None or not gate.permits(callback):
            return None
        herd_key = (interval_s, first_delay)
        herd = self._herds.get(herd_key)
        if herd is None:
            herd = self._herds[herd_key] = TimerHerd(
                self.sim, interval_s, first_delay)
        return herd.add(key, callback)

    def rebrand(self, peer: Peer) -> str:
        """Give a peer a fresh identity (whitewashing support).

        The old id vanishes from the tracker and topology — neighbors
        are notified exactly as for a departure — and the same peer
        object rejoins under a new id with a fresh neighbor draw.  No
        metrics record is written: the peer never really left.
        """
        old_id = peer.id
        # Unregister before severing edges: disconnect notifications
        # can re-enter (refills, pumps) and must not resolve the old id.
        self.tracker.leave(old_id)
        self.peers.pop(old_id, None)
        self.topology.remove_peer(old_id)
        if self.columnar is not None:
            self.columnar.release(old_id)
        new_id = self.new_peer_id("W")
        if self.net is not None:
            # A rebrand changes identity, not geography.
            self.net.rename(old_id, new_id)
        peer.id = new_id
        self.peers[new_id] = peer
        if self.columnar is not None:
            self.columnar.adopt(peer)
        self.topology.add_peer(new_id, unlimited=peer.unlimited_neighbors)
        if self.interest is not None:
            # Re-snapshots the live book, absorbing mutations made
            # while the peer was untracked mid-whitewash.
            self.interest.add_peer(peer)
        members = self.tracker.announce(new_id)
        self.tracker.join(new_id)
        for member in members:
            self.connect(new_id, member)
        return new_id

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def send_control(self, sender_id: str, receiver: Peer,
                     callback: Callable[..., Any], *args: Any,
                     kind: str = "control",
                     latency: Optional[float] = None):
        """Deliver a control message (report, key release, plead, ...).

        The single choke point every control message crosses: the
        fault injector (when attached) decides drop / extra delay
        here, and delivery is suppressed for receivers that *crashed*
        (a dead host processes nothing — unlike a clean departure,
        after which e.g. ``on_report`` deliberately still works,
        Sec. II-B4).  Returns the event handle, or ``None`` when the
        message was dropped.
        """
        delay = latency if latency is not None \
            else self.config.control_latency_s
        if self.net is not None and not self.net._inert:
            # The substrate speaks first: route latency + per-link
            # loss fate, before the fault injector piles its own
            # drops/delays on top.  None = lost in the network
            # (per-link loss draw) or unroutable (severed partition).
            # An inert model (all-zero links, nothing severed) is
            # bypassed wholesale — no call, no counters — so an idle
            # substrate stays within noise of the flat model.
            fate = self.net.control_fate(sender_id, receiver.id)
            if fate is None:
                return None
            delay += fate
        if self.fault_injector is not None:
            fate = self.fault_injector.control_fate(
                kind, sender_id, receiver.id)
            if fate is None:
                return None
            delay += fate
        return self.sim.schedule(delay, self._deliver_control,
                                 receiver, callback, args)

    def _deliver_control(self, receiver: Peer,
                         callback: Callable[..., Any],
                         args: Tuple[Any, ...]) -> None:
        if receiver.crashed:
            return
        callback(*args)

    def on_peer_finished(self, peer: Peer) -> None:
        """A leecher completed its download."""
        self.finished_leechers += 1
        if self.on_finished is not None:
            self.on_finished(peer)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, max_time: Optional[float] = None,
            stop_when_drained: bool = True) -> None:
        """Advance the simulation.

        Stops at ``max_time`` (or ``config.max_sim_time_s``), when the
        event queue empties, or — with ``stop_when_drained`` — when no
        leecher that could still finish remains active.

        Additionally, a swarm that has been *quiet* (no piece upload
        started, no arrival) for ``extra["quiet_window_s"]`` simulated
        seconds is declared done: only bookkeeping timers are left
        (e.g. starved T-Chain free-riders re-announcing forever).
        """
        limit = max_time if max_time is not None \
            else self.config.max_sim_time_s
        quiet = self.config.extra.get("quiet_window_s", 300.0)
        sim = self.sim
        peek_time = sim.peek_time
        step = sim.step
        while True:
            if limit is not None and sim.now >= limit:
                break
            if stop_when_drained and self.active_leechers == 0 \
                    and not self._arrivals_pending():
                break
            head_time = peek_time()
            if head_time is None:
                break
            if limit is not None and head_time > limit:
                sim.now = limit
                break
            if quiet and not self._arrivals_pending() \
                    and head_time - self.last_activity > quiet:
                break
            step()

    def _arrivals_pending(self) -> bool:
        """Workloads flag future arrivals so we do not stop early."""
        return self._pending_arrivals > 0

    def note_arrival_scheduled(self) -> None:
        """A workload scheduled a future join."""
        self._pending_arrivals += 1

    def note_arrival_happened(self) -> None:
        """A scheduled join executed."""
        self._pending_arrivals -= 1
        self.last_activity = self.sim.now

    def note_activity(self) -> None:
        """A piece upload started somewhere (quiet-window bookkeeping)."""
        self.last_activity = self.sim.now

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    def leechers(self) -> List[Peer]:
        """Active non-seeder peers."""
        return [p for p in self.peers.values() if p.kind != "seeder"]  # simlint: disable=SL012 -- cold-path metrics accessor; callers need the objects

    def seeders(self) -> List[Peer]:
        """Active seeders."""
        return [p for p in self.peers.values() if p.kind == "seeder"]  # simlint: disable=SL012 -- cold-path metrics accessor; callers need the objects
