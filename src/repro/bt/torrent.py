"""The shared file: pieces and per-peer piece bookkeeping.

A :class:`Torrent` describes the file (piece count/size); a
:class:`PieceBook` is one peer's view of it — which pieces are
completed, which are expected (in flight or encrypted-pending), and
which are still needed.  The distinction between *completed* and
*expected* matters for T-Chain, where a peer may hold many encrypted
pieces it cannot use yet, and for avoiding duplicate downloads in all
protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set


@dataclass(frozen=True)
class Torrent:
    """Immutable description of the file a swarm shares."""

    n_pieces: int
    piece_size_kb: float = 256.0

    def __post_init__(self):
        if self.n_pieces < 1:
            raise ValueError("a torrent needs at least one piece")
        if self.piece_size_kb <= 0:
            raise ValueError("piece size must be positive")

    @property
    def size_kb(self) -> float:
        """Total file size in KB."""
        return self.n_pieces * self.piece_size_kb

    @property
    def size_mb(self) -> float:
        """Total file size in MB."""
        return self.size_kb / 1024.0

    def all_pieces(self) -> FrozenSet[int]:
        """The full piece index set."""
        return frozenset(range(self.n_pieces))


class PieceBook:
    """One peer's piece state.

    ``completed`` — decrypted/usable pieces; what the peer can serve.
    ``expected`` — pieces on their way: in-flight downloads plus (for
    T-Chain) encrypted pieces awaiting a key.  Piece selection skips
    expected pieces so the same piece is never fetched twice.
    """

    def __init__(self, torrent: Torrent,
                 initial_pieces: Iterable[int] = ()):
        self.torrent = torrent
        self._completed: Set[int] = set()
        self._expected: Set[int] = set()
        # Both sets are maintained incrementally: piece selection runs
        # on every upload decision and must not rebuild them.
        self._missing: Set[int] = set(range(torrent.n_pieces))
        self._wanted: Set[int] = set(range(torrent.n_pieces))
        # Interest-index listener (see repro.bt.interest): the swarm
        # index registers here to hear wanted/completed transitions.
        self._listener = None
        self._listener_owner: Optional[str] = None
        for piece in initial_pieces:
            self.add_completed(piece)

    def set_listener(self, listener, owner_id: Optional[str]) -> None:
        """Attach (or detach, with ``None``) the interest index.

        ``owner_id`` is the peer id events are reported under; a
        rebrand re-attaches under the new identity.
        """
        self._listener = listener
        self._listener_owner = owner_id

    # -- completed ------------------------------------------------------
    @property
    def completed(self) -> Set[int]:
        """Completed piece indices (live view, do not mutate)."""
        return self._completed

    def add_completed(self, piece: int) -> bool:
        """Mark a piece usable; returns False if already completed."""
        self._check(piece)
        self._expected.discard(piece)
        if piece in self._completed:
            return False
        self._completed.add(piece)
        self._missing.discard(piece)
        listener = self._listener
        if piece in self._wanted:
            self._wanted.discard(piece)
            # wanted_removed fires before completed_added so the index
            # never sees this peer as a wanter of its own new piece.
            if listener is not None:
                listener.on_wanted_removed(self._listener_owner, piece)
        if listener is not None:
            listener.on_completed_added(self._listener_owner, piece)
        return True

    def has(self, piece: int) -> bool:
        """True if the piece is completed."""
        return piece in self._completed

    @property
    def completed_count(self) -> int:
        """Number of completed pieces."""
        return len(self._completed)

    @property
    def is_complete(self) -> bool:
        """True when the whole file is downloaded."""
        return len(self._completed) == self.torrent.n_pieces

    # -- expected -------------------------------------------------------
    def expect(self, piece: int) -> None:
        """Mark a piece as in flight / pending decryption."""
        self._check(piece)
        if piece not in self._completed:
            self._expected.add(piece)
            if piece in self._wanted:
                self._wanted.discard(piece)
                if self._listener is not None:
                    self._listener.on_wanted_removed(
                        self._listener_owner, piece)

    def unexpect(self, piece: int) -> None:
        """A pending piece fell through (departure, abort)."""
        self._expected.discard(piece)
        if piece in self._missing and piece not in self._wanted:
            self._wanted.add(piece)
            if self._listener is not None:
                self._listener.on_wanted_added(
                    self._listener_owner, piece)

    def is_expected(self, piece: int) -> bool:
        """True if the piece is in flight or pending a key."""
        return piece in self._expected

    # -- derived sets ---------------------------------------------------
    def missing(self) -> Set[int]:
        """Pieces not yet completed (may include expected ones).

        Live view — treat as read-only.
        """
        return self._missing

    def wanted(self) -> Set[int]:
        """Pieces worth requesting: not completed and not expected.

        Live view — treat as read-only.
        """
        return self._wanted

    def needs_from(self, other_completed: Set[int]) -> Set[int]:
        """Wanted pieces that ``other_completed`` could provide."""
        return other_completed & self.wanted()

    def wants(self, piece: int) -> bool:
        """True if the piece is wanted (not completed, not expected)."""
        return piece in self._wanted

    def _wanted_nonempty(self) -> bool:
        """O(1) ``bool(wanted())`` without materializing a view."""
        return bool(self._wanted)

    def _check(self, piece: int) -> None:
        if not 0 <= piece < self.torrent.n_pieces:
            raise IndexError(f"piece {piece} out of range "
                             f"[0, {self.torrent.n_pieces})")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"PieceBook({self.completed_count}/"
                f"{self.torrent.n_pieces} done, "
                f"{len(self._expected)} expected)")


def piece_payload(torrent: Torrent, piece: int) -> bytes:
    """Deterministic synthetic content for a piece.

    Used by ``real_crypto`` simulations: every donor derives the same
    bytes for the same piece, so decrypted pieces can be checked
    against ground truth end to end.
    """
    if not 0 <= piece < torrent.n_pieces:
        raise IndexError(f"piece {piece} out of range")
    size = int(torrent.piece_size_kb * 1024)
    stamp = f"piece-{piece:08d}|".encode("ascii")
    reps = size // len(stamp) + 1
    return (stamp * reps)[:size]


def full_book(torrent: Torrent) -> PieceBook:
    """A seeder's book: everything completed."""
    return PieceBook(torrent, initial_pieces=range(torrent.n_pieces))


def partial_book(torrent: Torrent, fraction: float,
                 rng) -> PieceBook:
    """A book pre-filled with a random ``fraction`` of pieces.

    Used by the initial-piece-differences experiment (Fig. 6(b)).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    count = round(fraction * torrent.n_pieces)
    pieces = rng.sample(range(torrent.n_pieces), count)
    return PieceBook(torrent, initial_pieces=pieces)
