"""The tracker: random membership lists.

Mirrors the BitTorrent tracker behaviour the paper assumes
(Sec. II-A): a joining peer announces itself and receives up to 50
randomly selected current members; peers re-announce whenever their
neighbor count drops below 30.  Free-riders mounting the large-view
exploit (Sec. IV-C) re-announce every rechoke period to harvest fresh
victims — the tracker itself cannot tell and serves them normally.
"""

from __future__ import annotations

from random import Random
from typing import List, Set


class Tracker:
    """Swarm membership service."""

    def __init__(self, rng: Random, list_size: int = 50):
        if list_size < 1:
            raise ValueError("list_size must be >= 1")
        self.rng = rng
        self.list_size = list_size
        self._members: Set[str] = set()
        self.announce_count = 0

    def join(self, peer_id: str) -> None:
        """Register a peer as a swarm member."""
        self._members.add(peer_id)

    def leave(self, peer_id: str) -> None:
        """Deregister a departing peer; idempotent."""
        self._members.discard(peer_id)

    def announce(self, peer_id: str) -> List[str]:
        """Return up to ``list_size`` random members other than the
        requester (the requester need not be registered yet)."""
        self.announce_count += 1
        # Sorted so results depend only on the seeded RNG, not on
        # per-process string hashing.
        others = [m for m in sorted(self._members) if m != peer_id]
        if len(others) <= self.list_size:
            self.rng.shuffle(others)
            return others
        return self.rng.sample(others, self.list_size)

    @property
    def member_count(self) -> int:
        """Current number of registered members."""
        return len(self._members)

    def is_member(self, peer_id: str) -> bool:
        """True if the peer is currently registered."""
        return peer_id in self._members
