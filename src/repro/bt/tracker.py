"""The tracker: random membership lists.

Mirrors the BitTorrent tracker behaviour the paper assumes
(Sec. II-A): a joining peer announces itself and receives up to 50
randomly selected current members; peers re-announce whenever their
neighbor count drops below 30.  Free-riders mounting the large-view
exploit (Sec. IV-C) re-announce every rechoke period to harvest fresh
victims — the tracker itself cannot tell and serves them normally.

Scale note: membership is kept as an *incrementally sorted* list
(``insort``/bisect per join/leave) instead of re-sorting the whole
set on every announce, and the "everyone but the requester" population
handed to ``rng.sample`` is a lazy :class:`_SkipView` rather than an
O(n) copy.  Both changes are trace-neutral: the view's ``__len__`` /
``__getitem__`` return exactly what the materialized list would, so
the seeded RNG consumes the identical draw sequence.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Sequence as _SequenceABC
from random import Random
from typing import List, Optional, Set


class _SkipView(_SequenceABC):
    """Read-only view of a sorted list with one index elided.

    ``random.Random.sample`` only needs ``len()`` and integer
    indexing, so presenting the membership list minus the requester
    this way avoids copying 100k ids per announce while yielding the
    exact element sequence of the copied list.
    """

    __slots__ = ("_items", "_skip")

    def __init__(self, items: List[str], skip: Optional[int]):
        self._items = items
        self._skip = skip

    def __len__(self) -> int:
        return len(self._items) - (0 if self._skip is None else 1)

    def __getitem__(self, i):
        if isinstance(i, slice):  # pragma: no cover - sample never slices
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        skip = self._skip
        if skip is not None and i >= skip:
            i += 1
        return self._items[i]


class Tracker:
    """Swarm membership service."""

    def __init__(self, rng: Random, list_size: int = 50):
        if list_size < 1:
            raise ValueError("list_size must be >= 1")
        self.rng = rng
        self.list_size = list_size
        self._members: Set[str] = set()
        #: The members in sorted order, maintained incrementally.
        self._sorted: List[str] = []
        self.announce_count = 0

    def join(self, peer_id: str) -> None:
        """Register a peer as a swarm member."""
        if peer_id not in self._members:
            self._members.add(peer_id)
            insort(self._sorted, peer_id)

    def leave(self, peer_id: str) -> None:
        """Deregister a departing peer; idempotent."""
        if peer_id in self._members:
            self._members.discard(peer_id)
            idx = bisect_left(self._sorted, peer_id)
            del self._sorted[idx]

    def announce(self, peer_id: str) -> List[str]:
        """Return up to ``list_size`` random members other than the
        requester (the requester need not be registered yet)."""
        self.announce_count += 1
        # Sorted so results depend only on the seeded RNG, not on
        # per-process string hashing.
        members = self._sorted
        idx = bisect_left(members, peer_id)
        skip: Optional[int] = (
            idx if idx < len(members) and members[idx] == peer_id else None)
        n = len(members) - (0 if skip is None else 1)
        if n <= self.list_size:
            if skip is None:
                others = list(members)
            else:
                others = members[:skip] + members[skip + 1:]
            self.rng.shuffle(others)
            return others
        return self.rng.sample(_SkipView(members, skip), self.list_size)

    @property
    def member_count(self) -> int:
        """Current number of registered members."""
        return len(self._members)

    def is_member(self, peer_id: str) -> bool:
        """True if the peer is currently registered."""
        return peer_id in self._members
