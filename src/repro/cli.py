"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One swarm simulation with full knob control; prints a summary and
    optionally persists JSON/CSV results.
``compare``
    The same scenario across several protocols, as a table and an
    ASCII bar chart.
``figure``
    Regenerate one of the paper's figures/tables by name (fig3 ...
    fig13, table2) at a chosen scale.
``models``
    The Section III analytical results (bootstrap dynamics, collusion
    probability, overheads).
``lint``
    Run the ``simlint`` determinism/protocol static analyzer over
    source paths (rules SL001-SL007; see docs/DEVTOOLS.md).
``chaos``
    Chaos smoke test: a sanitized T-Chain swarm under seeded fault
    injection (control-message loss/delay, upload stalls, peer
    crashes); exits nonzero unless every surviving honest leecher
    finished (docs/FAULTS.md).  ``--seeds`` sweeps several scenarios,
    optionally across worker processes; ``--races`` also attaches the
    runtime order-sensitivity reporter (the dynamic half of the
    simrace SL2xx checks).
``bench``
    Pinned performance benchmark: engine timer-churn throughput, full
    protocol scenarios, and a serial-vs-parallel sweep with the
    bit-identical check; writes a JSON report (docs/PERF.md).
``sweep``
    Fault-tolerant sharded sweep through the execution fabric
    (docs/SWEEPS.md): manifested, checkpointed, resumable.  A killed
    sweep picks up with ``--resume <dir>``; ``--kill-prob`` injects
    seeded worker SIGKILLs to exercise exactly that; ``--verify``
    re-runs the matrix serially and asserts the merged summaries are
    bit-identical.

``compare``, ``figure``, ``chaos``, ``sweep`` and ``bench`` accept
``--workers N`` (or the ``REPRO_WORKERS`` environment knob) to fan
independent runs out over worker processes — ``0`` means one worker
per CPU — and results are bit-identical to serial.  ``compare``,
``figure``, ``chaos`` and ``sweep`` also accept ``--sweep-dir`` (or
``REPRO_SWEEP_DIR``) to persist checkpointed sweep state.

Examples
--------
::

    python -m repro run --protocol tchain --leechers 60 --pieces 32 \
        --freeriders 0.25 --out results/run1
    python -m repro run --net multi_dc --net-loss 0.02 --sanitize
    python -m repro compare --leechers 40 --pieces 16 --freeriders 0.25
    python -m repro figure fig7 --scale 0.5 --seeds 1 --workers 4
    python -m repro models
    python -m repro lint src/ --disable SL004
    python -m repro chaos --seeds 0 1 2 3 --workers 4
    python -m repro bench --quick --out BENCH_PR10.json
    python -m repro sweep --protocols tchain bittorrent --seeds 20 \
        --sweep-dir results/sweep1 --workers 4 --verify
    python -m repro sweep --resume results/sweep1 --workers 4
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.charts import bar_chart
from repro.analysis.persist import save_peers_csv, save_run_json
from repro.analysis.reporting import format_table
from repro.attacks.freerider import FreeRiderOptions
from repro.bt.protocols import PROTOCOLS
from repro.experiments import run_swarm
from repro.experiments.bench import DEFAULT_REPORT_PATH
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel import ENV_WORKERS, RunSpec, run_specs

#: One help string for every worker-count flag, matching what
#: resolve_workers actually implements (0 = one worker per CPU).
_WORKERS_HELP = ("worker processes (default: REPRO_WORKERS or serial; "
                 "0 = one per CPU)")

#: Shared help for the fabric's persistent-state directory flags.
_SWEEP_DIR_HELP = ("persist checkpointed sweep state under this "
                   "directory via the execution fabric (default: "
                   "REPRO_SWEEP_DIR, else no persistence)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="T-Chain (ICDCS 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one swarm simulation")
    _swarm_args(run_p)
    run_p.add_argument("--out", metavar="PREFIX",
                       help="write PREFIX.json and PREFIX.csv")
    run_p.add_argument("--net", default=None,
                       choices=["star", "mesh", "random", "fat_tree",
                                "multi_dc"],
                       help="attach the link-level network substrate "
                            "with this topology (docs/NETWORK.md)")
    run_p.add_argument("--net-nodes", type=int, default=4,
                       help="node count for star/mesh/random")
    run_p.add_argument("--net-latency-ms", type=float, default=0.0,
                       help="per-link one-way latency")
    run_p.add_argument("--net-jitter-ms", type=float, default=0.0,
                       help="per-link uniform latency jitter bound")
    run_p.add_argument("--net-loss", type=float, default=0.0,
                       help="per-link control-message loss "
                            "probability [0, 1)")
    run_p.add_argument("--net-bw-kbps", type=float, default=None,
                       help="per-link bandwidth cap (default: "
                            "unconstrained)")
    run_p.add_argument("--sanitize", action="store_true",
                       help="run under the simulation sanitizer "
                            "(fair-exchange + flow-window checks)")

    cmp_p = sub.add_parser("compare",
                           help="run a scenario across protocols")
    _swarm_args(cmp_p, with_protocol=False)
    cmp_p.add_argument("--protocols", nargs="+",
                       default=["bittorrent", "propshare",
                                "fairtorrent", "tchain"],
                       choices=sorted(PROTOCOLS))
    cmp_p.add_argument("--workers", type=int, default=None,
                       help=_WORKERS_HELP)
    cmp_p.add_argument("--sweep-dir", metavar="DIR", default=None,
                       help=_SWEEP_DIR_HELP)

    fig_p = sub.add_parser("figure",
                           help="regenerate a paper figure/table")
    fig_p.add_argument("name",
                       choices=["fig3", "fig4", "fig5", "fig6",
                                "fig7", "fig8", "fig9", "fig10",
                                "fig11", "fig12", "fig13", "table2"])
    fig_p.add_argument("--scale", type=float, default=1.0,
                       help="size multiplier (1.0 = bench default)")
    fig_p.add_argument("--seeds", type=int, default=2)
    fig_p.add_argument("--seed", type=int, default=42,
                       help="root seed")
    fig_p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the figure's seed "
                            "sweeps (default: REPRO_WORKERS or "
                            "serial; 0 = one per CPU)")
    fig_p.add_argument("--sweep-dir", metavar="DIR", default=None,
                       help=_SWEEP_DIR_HELP)

    sub.add_parser("models",
                   help="Section III analytical results")

    lint_p = sub.add_parser(
        "lint", help="simlint determinism/protocol static analysis")
    lint_p.add_argument("paths", nargs="*",
                        help="files/directories (default: [tool.simlint] "
                             "paths, else src)")
    lint_p.add_argument("--enable", nargs="+", metavar="RULE",
                        help="run only these rule ids")
    lint_p.add_argument("--disable", nargs="+", metavar="RULE",
                        default=[], help="rule ids to skip")
    lint_p.add_argument("--no-config", action="store_true",
                        help="ignore [tool.simlint] in pyproject.toml")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    lint_p.add_argument("--deep", action="store_true",
                        help="whole-program passes: interprocedural "
                             "nondeterminism taint (SL101-SL104), "
                             "protocol conformance (SL110-SL112), "
                             "simrace same-instant commutativity "
                             "(SL201-SL203) and simheat hot-path "
                             "allocation audit (SL301-SL304)")
    lint_p.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    lint_p.add_argument("--baseline", metavar="PATH",
                        help="JSON baseline of known findings to "
                             "tolerate (staged adoption)")
    lint_p.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the "
                             "--baseline file instead of failing")
    lint_p.add_argument("--prune-baseline", action="store_true",
                        help="drop --baseline entries whose finding "
                             "no longer fires (see SL013)")
    lint_p.add_argument("--strict-suppressions", action="store_true",
                        help="treat unused-suppression warnings "
                             "(SL009) as errors")
    lint_p.add_argument("--cache", metavar="PATH",
                        help="findings cache for --deep (default: "
                             ".simlint-cache.json)")
    lint_p.add_argument("--no-cache", action="store_true",
                        help="disable the --deep findings cache")

    chaos_p = sub.add_parser(
        "chaos", help="sanitized swarm run under seeded fault injection")
    chaos_p.add_argument("--leechers", type=int, default=16)
    chaos_p.add_argument("--pieces", type=int, default=10)
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument("--loss", type=float, default=0.10,
                         help="control-message loss probability")
    chaos_p.add_argument("--delay", type=float, default=0.10,
                         help="control-message delay probability")
    chaos_p.add_argument("--delay-s", type=float, default=1.0,
                         help="extra latency per delayed message (s)")
    chaos_p.add_argument("--stall", type=float, default=0.02,
                         help="upload stall probability")
    chaos_p.add_argument("--stall-s", type=float, default=5.0,
                         help="stall duration (s)")
    chaos_p.add_argument("--crashes", type=int, default=2,
                         help="seeded unclean peer crashes")
    chaos_p.add_argument("--max-time", type=float, default=None)
    chaos_p.add_argument("--races", action="store_true",
                         help="attach the runtime order-sensitivity "
                              "reporter (same-instant field-footprint "
                              "conflicts; runtime half of SL2xx)")
    chaos_p.add_argument("--seeds", type=int, nargs="+", default=None,
                         help="sweep several seeds (overrides --seed)")
    chaos_p.add_argument("--workers", type=int, default=None,
                         help="worker processes for the seed sweep "
                              "(default: REPRO_WORKERS or serial; "
                              "0 = one per CPU)")
    chaos_p.add_argument("--sweep-dir", metavar="DIR", default=None,
                         help=_SWEEP_DIR_HELP)

    sweep_p = sub.add_parser(
        "sweep", help="fault-tolerant sharded sweep: manifested, "
                      "checkpointed, resumable (docs/SWEEPS.md)")
    sweep_p.add_argument("--resume", metavar="DIR", default=None,
                         help="resume a killed sweep from its "
                              "directory (re-runs only shards without "
                              "a valid checkpoint)")
    sweep_p.add_argument("--sweep-dir", metavar="DIR", default=None,
                         help="sweep state directory (default: "
                              "REPRO_SWEEP_DIR, else a throwaway "
                              "temp directory)")
    sweep_p.add_argument("--protocols", nargs="+", default=["tchain"],
                         choices=sorted(PROTOCOLS))
    sweep_p.add_argument("--seeds", type=int, default=8,
                         help="seeds per protocol")
    sweep_p.add_argument("--seed", type=int, default=0,
                         help="first seed of the range")
    sweep_p.add_argument("--leechers", type=int, default=8)
    sweep_p.add_argument("--pieces", type=int, default=4)
    sweep_p.add_argument("--freeriders", type=float, default=0.0,
                         help="free-rider fraction [0, 1]")
    sweep_p.add_argument("--max-time", type=float, default=None)
    sweep_p.add_argument("--shard-size", type=int, default=None,
                         help="specs per shard (default: 16)")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help=_WORKERS_HELP)
    sweep_p.add_argument("--retry-budget", type=int, default=None,
                         help="failures tolerated per shard before "
                              "quarantine (default: 3)")
    sweep_p.add_argument("--shard-timeout", type=float, default=None,
                         help="per-shard wall-clock timeout in "
                              "seconds (default: none)")
    sweep_p.add_argument("--kill-prob", type=float, default=0.0,
                         help="fault injection: seeded SIGKILL "
                              "probability per spec boundary "
                              "(requires --workers >= 2)")
    sweep_p.add_argument("--kill-seed", type=int, default=0,
                         help="root seed of the kill substreams")
    sweep_p.add_argument("--verify", action="store_true",
                         help="re-run the matrix serially and assert "
                              "the merged summaries are bit-identical")

    bench_p = sub.add_parser(
        "bench", help="pinned performance benchmark (writes JSON)")
    bench_p.add_argument("--quick", action="store_true",
                         help="CI smoke matrix (smaller, 1 repetition)")
    bench_p.add_argument("--repeat", type=int, default=3,
                         help="repetitions per workload (best-of)")
    bench_p.add_argument("--out", default=DEFAULT_REPORT_PATH,
                         help="report path (default: "
                              f"{DEFAULT_REPORT_PATH})")
    bench_p.add_argument("--workers", type=int, default=None,
                         help="workers for the parallel leg (default: "
                              "min(4, cpus))")
    return parser


def _swarm_args(parser: argparse.ArgumentParser,
                with_protocol: bool = True) -> None:
    if with_protocol:
        parser.add_argument("--protocol", default="tchain",
                            choices=sorted(PROTOCOLS))
    parser.add_argument("--leechers", type=int, default=40)
    parser.add_argument("--pieces", type=int, default=32)
    parser.add_argument("--piece-kb", type=float, default=256.0)
    parser.add_argument("--freeriders", type=float, default=0.0,
                        help="free-rider fraction [0, 1]")
    parser.add_argument("--collude", action="store_true",
                        help="free-riders collude (T-Chain)")
    parser.add_argument("--arrival", default="flash",
                        choices=["flash", "trace"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-time", type=float, default=None)


def _options_from(args) -> FreeRiderOptions:
    if args.collude:
        return FreeRiderOptions(large_view=True, whitewash=False,
                                collude=True)
    return FreeRiderOptions()


def _net_spec_from(args) -> Optional[dict]:
    """The ``extra={"net": ...}`` spec for the --net flags, if any."""
    if getattr(args, "net", None) is None:
        return None
    spec = {"topology": args.net}
    if args.net in ("star", "mesh", "random"):
        spec["nodes"] = args.net_nodes
        spec["latency_ms"] = args.net_latency_ms
    if args.net_jitter_ms:
        spec["jitter_ms"] = args.net_jitter_ms
    if args.net_loss:
        spec["loss"] = args.net_loss
    if args.net_bw_kbps is not None:
        spec["bandwidth_kbps"] = args.net_bw_kbps
    return spec


def _run_one(args, protocol: str):
    net_spec = _net_spec_from(args)
    extra = {"net": net_spec} if net_spec is not None else {}
    return run_swarm(
        protocol=protocol, leechers=args.leechers, pieces=args.pieces,
        piece_size_kb=args.piece_kb, seed=args.seed,
        freerider_fraction=args.freeriders,
        freerider_options=_options_from(args),
        arrival=args.arrival, max_time=args.max_time,
        sanitize=getattr(args, "sanitize", False), extra=extra)


def cmd_run(args) -> int:
    result = _run_one(args, args.protocol)
    metrics = result.metrics
    rows = [
        ("protocol", result.protocol),
        ("leechers / free-riders",
         f"{result.n_compliant} / {result.n_freeriders}"),
        ("file", f"{result.config.file_size_mb:g} MB "
                 f"({result.config.n_pieces} x "
                 f"{result.config.piece_size_kb:g} KB)"),
        ("mean completion (s)",
         metrics.mean_completion_time("leecher")),
        ("optimal bound (s)", round(result.optimal_time(), 1)),
        ("completion rate", metrics.completion_rate("leecher")),
        ("mean uplink utilization",
         metrics.mean_utilization("leecher")),
        ("free-riders finished",
         metrics.completion_rate("freerider")),
        ("simulated seconds", round(result.swarm.sim.now, 1)),
        ("events", result.swarm.sim.events_fired),
    ]
    print(format_table(["quantity", "value"], rows,
                       title="swarm run summary"))
    if args.out:
        json_path = save_run_json(result, f"{args.out}.json")
        csv_path = save_peers_csv(result, f"{args.out}.csv")
        print(f"\nwrote {json_path} and {csv_path}")
    return 0


def _run_specs_routed(specs, workers, sweep_dir):
    """``run_specs``, or the fabric when a sweep dir is configured."""
    from repro.experiments.fabric import (resolve_sweep_dir,
                                          run_specs_fabric,
                                          sweep_subdir)
    sweep_dir = resolve_sweep_dir(sweep_dir)
    if sweep_dir is None:
        return run_specs(specs, workers=workers)
    return run_specs_fabric(specs, workers=workers,
                            sweep_dir=sweep_subdir(sweep_dir, specs))


def cmd_compare(args) -> int:
    specs = [RunSpec(
        protocol=protocol, leechers=args.leechers, pieces=args.pieces,
        piece_size_kb=args.piece_kb, seed=args.seed,
        freerider_fraction=args.freeriders,
        freerider_options=_options_from(args),
        arrival=args.arrival, max_time=args.max_time)
        for protocol in args.protocols]
    rows = []
    bars = []
    for result in _run_specs_routed(specs, args.workers,
                                    args.sweep_dir):
        metrics = result.metrics
        mct = metrics.mean_completion_time("leecher")
        rows.append((result.protocol, mct,
                     metrics.mean_utilization("leecher"),
                     metrics.completion_rate("freerider")))
        bars.append((result.protocol, round(mct or 0.0, 1)))
    print(format_table(
        ["protocol", "compliant completion (s)", "utilization",
         "free-riders finished"],
        rows, title="protocol comparison"))
    print()
    print(bar_chart(bars, title="mean compliant completion time (s)",
                    unit=" s"))
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import (fig3, fig4, fig5, fig6, fig7, fig8,
                                   fig9, fig10, fig11, fig12, fig13,
                                   table2)
    if args.workers is not None:
        # The figure modules drive their sweeps through run_many(),
        # which resolves this knob; no per-module plumbing needed.
        os.environ[ENV_WORKERS] = str(args.workers)
    if args.sweep_dir is not None:
        # Same trick for the fabric: run_many reads REPRO_SWEEP_DIR
        # and persists each figure sweep under its own subdirectory.
        from repro.experiments.fabric import ENV_SWEEP_DIR
        os.environ[ENV_SWEEP_DIR] = args.sweep_dir
    scale = ExperimentScale(factor=args.scale, seeds=args.seeds,
                            root_seed=args.seed)
    name = args.name
    if name == "fig3":
        print(fig3.render(fig3.run(scale)))
    elif name == "fig4":
        print(fig4.render(fig4.run_file_size(scale),
                          fig4.run_swarm_size(scale)))
    elif name == "fig5":
        print(fig5.render(fig5.run(scale)))
    elif name == "fig6":
        samples = fig6.run_crawler(scale)
        rows = fig6.run_initial_pieces(scale)
        print(fig6.render(samples, rows,
                          scale.pieces(fig6.BASE_PIECES_A)))
    elif name == "fig7":
        print(fig7.render(fig7.run(scale)))
    elif name == "fig8":
        print(fig8.render(fig8.run(scale)))
    elif name == "fig9":
        print(fig9.render(fig9.run(scale)))
    elif name == "fig10":
        print(fig10.render(fig10.run(scale, "flash"),
                           fig10.run(scale, "trace")))
    elif name == "fig11":
        print(fig11.render(fig11.run_cumulative(scale),
                           fig11.run_opportunistic_fraction(scale)))
    elif name == "fig12":
        print(fig12.render(fig12.run(scale)))
    elif name == "fig13":
        print(fig13.render(fig13.run(scale)))
    elif name == "table2":
        print(table2.render(table2.run(scale)))
    return 0


def cmd_models(args) -> int:
    from repro.models import (
        BitTorrentLikeModel,
        OverheadModel,
        TChainModel,
        collusion_success_probability,
        measure_encryption_rate,
    )
    n, x0 = 500, 400.0
    bt = BitTorrentLikeModel(n=n).trajectory(x0, 20)
    tc = TChainModel(n=n).trajectory(x0, 20)
    print(format_table(
        ["timeslot", "BitTorrent-like x", "T-Chain x+y"],
        [(t, round(bt[t].unbootstrapped, 1),
          round(tc[t].unbootstrapped, 1))
         for t in range(0, 21, 2)],
        title="Sec. III-B bootstrapping dynamics (n=500)"))
    print()
    print(format_table(
        ["colluders m", "P_s"],
        [(m, f"{collusion_success_probability(1000, m, 50):.3g}")
         for m in (2, 10, 50, 100, 250)],
        title="Sec. III-A4 collusion probability (N=1000)"))
    print()
    rate = measure_encryption_rate(piece_kb=64, repetitions=2)
    model = OverheadModel(cipher_rate_kb_per_s=rate)
    print(format_table(
        ["overhead", "value"],
        [("encryption (this machine)",
          f"{model.encryption_overhead:.2%}"),
         ("space", f"{model.space_overhead:.3%}"),
         ("reports+keys", f"{model.report_overhead():.3%}")],
        title="Sec. III-C overheads"))
    return 0


def cmd_lint(args) -> int:
    from repro.devtools import (RULES, SimlintConfig, lint_source,
                                load_config)
    from repro.devtools import output as lint_output
    from repro.devtools.analyzer import SuppressionIndex, iter_python_files
    if args.list_rules:
        rows = [(rule.id, rule.name, rule.description)
                for rule in (RULES[rid] for rid in sorted(RULES))]
        print(format_table(["id", "name", "checks for"], rows,
                           title="simlint rules"))
        return 0
    config = SimlintConfig() if args.no_config else load_config()
    if args.enable:
        config.enable = list(args.enable)
    if args.disable:
        config.disable = list(config.disable) + list(args.disable)
    # A typo'd rule id or path must not turn the CI gate green.
    unknown = [r for r in {*config.enable, *config.disable}
               if r.upper() not in RULES]
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(sorted(unknown))} "
              f"(see `repro lint --list-rules`)", file=sys.stderr)
        return 2
    paths = args.paths or config.paths
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    enabled = sorted(config.enabled_rules())

    if args.deep:
        from repro.devtools.deep import DEFAULT_CACHE, run_deep
        cache_path = None if args.no_cache else (args.cache
                                                 or DEFAULT_CACHE)
        report = run_deep(paths, enabled=enabled,
                          exclude=config.exclude, cache_path=cache_path)
        findings = report.findings
        # Per-pass timing on stderr: stdout must stay clean for the
        # json/sarif formats (CI pipes them straight into parsers).
        stats = report.stats
        timings = stats.get("timings", {})
        shown = ", ".join(
            f"{name[:-2]} {timings[name]:.3f}s"
            for name in ("files_s", "index_s", "taint_s", "races_s",
                         "simheat_s") if name in timings)
        cached = ", ".join(
            name for name in ("taint", "races", "simheat")
            if stats.get(f"{name}_reused"))
        print(f"simlint --deep: {stats['files']} files; {shown}; "
              f"cached: {cached or 'none (cold run)'}",
              file=sys.stderr)
    else:
        findings = []
        for path in iter_python_files(paths, exclude=config.exclude):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            index = SuppressionIndex(path, source.splitlines())
            kept = lint_source(source, path=path, enabled=enabled,
                               suppressions=index)
            findings.extend(kept)
            broken = kept and kept[0].rule == "SL000"
            if "SL009" in enabled and not broken:
                # A plain lint never runs the whole-program passes,
                # so suppressions of deep-only rules cannot be proven
                # stale here; only `--deep` may flag them.
                from repro.devtools.deep import DEEP_RULES
                findings.extend(index.filter(
                    index.unused_findings(ignore=DEEP_RULES)))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.prune_baseline and not args.baseline:
        print("error: --prune-baseline requires --baseline",
              file=sys.stderr)
        return 2
    if args.write_baseline:
        target = args.baseline or "simlint-baseline.json"
        lint_output.write_baseline(target, [
            f for f in findings
            if lint_output.severity_of(f) == "error"])
        print(f"simlint: baseline written to {target}")
        return 0
    baselined = 0
    if args.baseline:
        if not os.path.isfile(args.baseline):
            print(f"error: no such baseline: {args.baseline}",
                  file=sys.stderr)
            return 2
        baseline_fps = lint_output.load_baseline(args.baseline)
        if args.prune_baseline:
            dropped = lint_output.prune_baseline(args.baseline, findings)
            print(f"simlint: pruned {dropped} stale baseline "
                  f"entr{'y' if dropped == 1 else 'ies'} from "
                  f"{args.baseline}")
            baseline_fps = lint_output.load_baseline(args.baseline)
        elif "SL013" in enabled:
            findings = findings + lint_output.stale_baseline_findings(
                findings, baseline_fps, args.baseline)
            findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        findings, baselined = lint_output.apply_baseline(
            findings, baseline_fps)

    print(lint_output.RENDERERS[args.format](findings, baselined))
    if lint_output.in_github_actions():
        for line in lint_output.github_annotations(findings):
            print(line)
    errors = sum(1 for f in findings
                 if lint_output.severity_of(f) == "error")
    if errors:
        return 1
    if findings and args.strict_suppressions:
        return 1
    return 0


def cmd_chaos(args) -> int:
    from repro.experiments.parallel import ChaosSpec, run_chaos_specs
    seeds = args.seeds if args.seeds else [args.seed]
    specs = [ChaosSpec(
        leechers=args.leechers, pieces=args.pieces, seed=seed,
        control_loss_prob=args.loss, control_delay_prob=args.delay,
        control_delay_s=args.delay_s, upload_stall_prob=args.stall,
        upload_stall_s=args.stall_s, crashes=args.crashes,
        max_time=args.max_time, races=args.races) for seed in seeds]
    from repro.experiments.fabric import resolve_sweep_dir
    if resolve_sweep_dir(args.sweep_dir) is not None:
        summaries = _run_specs_routed(specs, args.workers,
                                      args.sweep_dir)
    else:
        summaries = run_chaos_specs(specs, workers=args.workers)
    for chaos in summaries:
        title = "chaos smoke run"
        if len(summaries) > 1:
            title += f" (seed {chaos.seed})"
        print(format_table(["quantity", "value"], chaos.rows,
                           title=title))
        verdict = "PASS" if chaos.passed else "FAIL"
        print(f"\n{verdict}: "
              f"{chaos.survivors_finished}/{chaos.survivors_total} "
              f"surviving honest leechers finished under "
              f"loss={args.loss:g} delay={args.delay:g} "
              f"crashes={chaos.crashes_executed}; "
              f"{chaos.sanitizer_checks} sanitizer checks, "
              f"0 violations")
        if args.races:
            print(f"same-instant race conflicts: "
                  f"{chaos.race_conflicts}")
            for desc in chaos.race_descriptions:
                print(f"  {desc}")
        if chaos is not summaries[-1]:
            print()
    return 0 if all(chaos.passed for chaos in summaries) else 1


def cmd_sweep(args) -> int:
    from repro.experiments.fabric import (DEFAULT_RETRY_BUDGET,
                                          DEFAULT_SHARD_SIZE,
                                          SweepIncomplete,
                                          load_manifest, resume_sweep,
                                          run_specs_fabric)
    retry_budget = (args.retry_budget if args.retry_budget is not None
                    else DEFAULT_RETRY_BUDGET)
    if args.resume:
        if args.kill_prob > 0:
            print("error: --kill-prob is a fresh-sweep fault "
                  "injection; a resume must run clean", file=sys.stderr)
            return 2
        specs = load_manifest(args.resume).specs
        try:
            summaries = resume_sweep(
                args.resume, workers=args.workers,
                retry_budget=retry_budget,
                shard_timeout_s=args.shard_timeout)
        except SweepIncomplete as exc:
            print(f"sweep incomplete: {exc}", file=sys.stderr)
            return 1
    else:
        specs = [RunSpec(
            protocol=protocol, seed=args.seed + i,
            leechers=args.leechers, pieces=args.pieces,
            freerider_fraction=args.freeriders,
            max_time=args.max_time)
            for protocol in args.protocols
            for i in range(args.seeds)]
        kill = None
        if args.kill_prob > 0:
            from repro.faults import WorkerKill
            if not args.sweep_dir:
                print("error: --kill-prob needs --sweep-dir (a "
                      "killed sweep in a temp directory leaves "
                      "nothing to resume)", file=sys.stderr)
                return 2
            kill = WorkerKill(prob=args.kill_prob, seed=args.kill_seed)
        try:
            summaries = run_specs_fabric(
                specs, workers=args.workers, sweep_dir=args.sweep_dir,
                shard_size=(args.shard_size if args.shard_size
                            is not None else DEFAULT_SHARD_SIZE),
                retry_budget=retry_budget,
                shard_timeout_s=args.shard_timeout, worker_kill=kill)
        except SweepIncomplete as exc:
            print(f"sweep incomplete: {exc}", file=sys.stderr)
            return 1

    by_protocol = {}
    for summary in summaries:
        by_protocol.setdefault(summary.protocol, []).append(summary)
    rows = []
    for protocol, group in by_protocol.items():
        mcts = [s.mean_completion_time("leecher") for s in group]
        mcts = [m for m in mcts if m is not None]
        rows.append((protocol, len(group),
                     round(sum(mcts) / len(mcts), 1) if mcts else None))
    print(format_table(
        ["protocol", "runs", "mean completion (s)"], rows,
        title=f"sweep: {len(summaries)} runs"))

    if args.verify:
        serial = run_specs(specs, workers=1)
        identical = serial == summaries
        print(f"\nverify: merged summaries "
              f"{'bit-identical to' if identical else 'DIFFER from'} "
              f"serial run_specs over {len(specs)} spec(s)")
        if not identical:
            return 1
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.bench import run_bench, write_report
    report = run_bench(quick=args.quick, repeat=args.repeat,
                       workers=args.workers)
    baseline = report["baseline_pre_pr3"]
    engine = report["engine"]
    rows = [
        ("engine churn (ev/s)", engine["events_per_second"]),
        ("engine churn baseline (ev/s)",
         baseline["engine_churn_events_per_second"]),
        ("engine speedup vs baseline",
         f"{engine['events_per_second'] / baseline['engine_churn_events_per_second']:.2f}x"),
        ("heap compactions", engine["compactions"]),
    ]
    for row in report["scenarios"]:
        rows.append((f"{row['name']} (ev/s)",
                     row["events_per_second"]))
    par = report["parallel"]
    rows.extend([
        (f"parallel sweep ({par['runs']} runs, "
         f"{par['workers']} workers)",
         f"{par['speedup']:.2f}x vs serial"),
        ("parallel == serial (bit-identical)", par["identical"]),
    ])
    fab = report["sweep_fabric"]
    rows.extend([
        (f"sweep fabric overhead ({fab['runs']} runs, "
         f"{fab['shards']} shards)",
         f"{fab['overhead']:.2f}x (ceiling {fab['limit']:.2f}x)"),
        ("sweep fabric == plain (bit-identical)", fab["identical"]),
        (f"sweep fabric kill-resume "
         f"({fab['kill_resume']['quarantined']} quarantined)",
         fab["kill_resume"]["resumed_identical"]),
    ])
    for crowd in report["tchain_crowd"]:
        rows.append(
            (f"tchain crowd {crowd['leechers']} leechers (peers/s)",
             crowd["peers_per_second"]))
        rows.append(
            (f"tchain crowd {crowd['leechers']} peak bytes/peer "
             f"({crowd['memory_source']})",
             crowd["bytes_per_peer"]))
    for audit in report["alloc_audit"]["sizes"]:
        pooled, unpooled = audit["pooled"], audit["unpooled"]
        rows.append(
            (f"alloc audit {audit['leechers']} leechers "
             f"(bytes/event pooled vs unpooled)",
             f"{pooled['bytes_per_event']} vs "
             f"{unpooled['bytes_per_event']} "
             f"(-{audit['bytes_per_event_drop']:.0%})"))
        rows.append(
            (f"alloc audit {audit['leechers']} leechers "
             f"(allocs/event pooled vs unpooled)",
             f"{pooled['allocs_per_event']} vs "
             f"{unpooled['allocs_per_event']} "
             f"(-{audit['allocs_per_event_drop']:.0%})"))
    neutral = report["alloc_audit"]["trace_neutrality"]
    rows.append((f"pooling on == off "
                 f"({neutral['events_compared']} events)",
                 neutral["identical"]))
    equiv = report["index_equivalence"]
    rows.append((f"interest index on == off "
                 f"({equiv['events_compared']} events)",
                 equiv["identical"]))
    net = report["net_substrate"]
    rows.extend([
        (f"net substrate idle == flat "
         f"({net['events_compared']} events)", net["identical"]),
        ("net substrate idle overhead",
         f"{net['idle_overhead_ratio']:.2f}x"),
        ("net substrate WAN run",
         f"{net['wan']['wall_time_s']:.3f}s "
         f"({net['wan']['events']} events)"),
    ])
    lint = report["lint_deep"]
    if "skipped" not in lint:
        rows.extend([
            (f"lint --deep cold ({lint['files']} files)",
             f"{lint['cold_s']:.3f}s"),
            ("lint --deep cached",
             f"{lint['cached_s']:.3f}s ({lint['speedup']}x)"),
        ])
    race = report["simrace"]
    static = race["static"]
    if "skipped" not in static:
        rows.append(
            (f"simrace static pass ({static['files']} files, "
             f"{static['findings']} findings)",
             f"{static['races_pass_s']:.3f}s cold, "
             f"{static['deep_cached_s']:.3f}s cached"))
    rows.extend([
        ("simrace runtime overhead (sanitize vs plain)",
         f"{race['sanitize_overhead']:.2f}x"),
        ("simrace runtime overhead (races vs sanitize)",
         f"{race['races_overhead_vs_sanitize']:.2f}x"),
        ("simrace fast path untouched when disabled", True),
    ])
    print(format_table(["benchmark", "value"], rows,
                       title="repro bench"
                             + (" --quick" if args.quick else "")))
    path = write_report(report, args.out)
    print(f"\nwrote {path}")
    return 0


COMMANDS = {
    "run": cmd_run,
    "compare": cmd_compare,
    "figure": cmd_figure,
    "models": cmd_models,
    "lint": cmd_lint,
    "chaos": cmd_chaos,
    "sweep": cmd_sweep,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
