"""T-Chain core: the paper's primary contribution.

The core package implements Section II of the paper independently of
any particular application:

* :mod:`repro.core.crypto` — the symmetric cipher, per-transaction keys
  and the sealed-piece abstraction that makes the exchange *almost
  fair*: an encrypted piece is useless until the matching key arrives.
* :mod:`repro.core.messages` — the protocol messages exchanged by
  donors, requestors and payees.
* :mod:`repro.core.transaction` / :mod:`repro.core.chain` — the
  triangle-chaining state machines (initiation, continuation,
  termination; Fig. 1 of the paper).
* :mod:`repro.core.exchange` — the per-peer exchange engine tying the
  above together, including departure handling (Sec. II-B4).
* :mod:`repro.core.flow_control` — adaptive receiver selection with a
  pending-piece window k (Sec. II-D2).
* :mod:`repro.core.policy` — payee selection (direct/indirect
  reciprocity) and opportunistic seeding decisions (Sec. II-D3).
* :mod:`repro.core.bootstrap` — the newcomer both-need piece rule
  (Sec. II-D1).

The BitTorrent application of T-Chain evaluated in Section IV lives in
:mod:`repro.bt.protocols.tchain` and drives these components.
"""

from repro.core.bootstrap import is_newcomer, select_bootstrap_piece
from repro.core.chain import Chain, ChainPhase, ChainRegistry
from repro.core.crypto import (
    Key,
    KeyStore,
    SealedPiece,
    decrypt,
    encrypt,
    generate_key,
)
from repro.core.exchange import ExchangeError, ExchangeLedger
from repro.core.flow_control import DEFAULT_PENDING_LIMIT, FlowController
from repro.core.messages import (
    EncryptedPieceMessage,
    KeyReleaseMessage,
    PlainPieceMessage,
    ReceptionReport,
)
from repro.core.policy import (
    PayeeDecision,
    ReciprocityKind,
    select_payee,
    select_requestor,
    should_opportunistically_seed,
)
from repro.core.transaction import (
    InvalidTransition,
    Transaction,
    TransactionState,
)

__all__ = [
    "Chain",
    "ChainPhase",
    "ChainRegistry",
    "DEFAULT_PENDING_LIMIT",
    "EncryptedPieceMessage",
    "ExchangeError",
    "ExchangeLedger",
    "FlowController",
    "InvalidTransition",
    "Key",
    "KeyReleaseMessage",
    "KeyStore",
    "PayeeDecision",
    "PlainPieceMessage",
    "ReceptionReport",
    "ReciprocityKind",
    "SealedPiece",
    "Transaction",
    "TransactionState",
    "decrypt",
    "encrypt",
    "generate_key",
    "is_newcomer",
    "select_bootstrap_piece",
    "select_payee",
    "select_requestor",
    "should_opportunistically_seed",
]
