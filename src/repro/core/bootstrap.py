"""Newcomer bootstrapping: the both-need piece rule (Sec. II-D1).

A newcomer has no completed pieces, so it cannot normally reciprocate.
T-Chain's fix needs no set-aside resources: the donor picks a piece
that *both* the newcomer and the designated payee need.  The newcomer
reciprocates by forwarding the (still encrypted) piece it just
received.  This is the only situation where Local-Rarest-First piece
selection is overridden.

Because the forwarded piece is encrypted, the newcomer gains nothing
unless it actually forwards it — bootstrapping generosity cannot be
free-ridden, which is the innovation the paper highlights.
"""

from __future__ import annotations

from random import Random
from typing import AbstractSet, Optional, Sequence


def is_newcomer(completed_piece_count: int) -> bool:
    """A peer with no completed (decrypted) pieces is a newcomer."""
    return completed_piece_count == 0


def select_bootstrap_piece(donor_pieces: AbstractSet[int],
                           requestor_missing: AbstractSet[int],
                           payee_missing: AbstractSet[int],
                           rng: Random) -> Optional[int]:
    """Pick a piece that the donor owns and both requestor and payee
    need; ``None`` when no such piece exists.

    The choice is uniform random over the feasible set: rarity is
    irrelevant here because the goal is to make the newcomer's
    reciprocation possible at all.
    """
    feasible = sorted(donor_pieces & requestor_missing & payee_missing)
    if not feasible:
        return None
    return rng.choice(feasible)


def payees_compatible_with_bootstrap(
        donor_pieces: AbstractSet[int],
        requestor_missing: AbstractSet[int],
        candidate_payees: Sequence[str],
        missing_by_peer: dict) -> list:
    """Filter payee candidates to those for which a both-need piece
    exists (donor ∩ requestor-missing ∩ payee-missing nonempty).

    ``missing_by_peer`` maps candidate id → set of missing pieces.
    """
    usable = donor_pieces & requestor_missing
    if not usable:
        return []
    return [
        payee for payee in candidate_payees
        if usable & missing_by_peer[payee]
    ]
