"""Chains of reciprocal transactions (Sec. II-B).

A chain is the sequence ``(t_1, t_2, ...)`` where each transaction's
completion begins the next: the requestor of ``t_j`` becomes the donor
of ``t_{j+1}`` and the payee of ``t_j`` becomes its requestor.  Chains
are *initiated* by seeders (initiation phase) or by leechers via
opportunistic seeding (Sec. II-D3), *continue* while donors can find
payees, and *terminate* with an unencrypted upload when no payee exists
(Fig. 1(c)).

:class:`ChainRegistry` provides the bookkeeping behind the paper's
chain-characteristics experiments (Figs. 10 and 11): active-chain
counts over time and cumulative initiation counts split by initiator
type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.transaction import Transaction


class ChainPhase(enum.Enum):
    """Where in its lifecycle a chain currently is."""

    INITIATION = "initiation"
    CONTINUATION = "continuation"
    TERMINATED = "terminated"


@dataclass
class Chain:
    """One pay-it-forward chain.

    Attributes
    ----------
    chain_id:
        Unique id within a swarm.
    initiator_id:
        Peer that started the chain.
    seeded_by_seeder:
        True for initiation-phase chains started by a seeder; False for
        opportunistic seeding by a leecher.
    created_at / terminated_at:
        Simulation timestamps.
    """

    chain_id: int
    initiator_id: str
    seeded_by_seeder: bool
    created_at: float
    transactions: List[Transaction] = field(default_factory=list)
    terminated_at: Optional[float] = None

    @property
    def phase(self) -> ChainPhase:
        """Current phase, derived from the transaction log."""
        if self.terminated_at is not None:
            return ChainPhase.TERMINATED
        if len(self.transactions) <= 1:
            return ChainPhase.INITIATION
        return ChainPhase.CONTINUATION

    @property
    def active(self) -> bool:
        """True until the chain terminates."""
        return self.terminated_at is None

    @property
    def length(self) -> int:
        """Number of transactions so far."""
        return len(self.transactions)

    def append(self, transaction: Transaction) -> None:
        """Record the next transaction of the chain."""
        if not self.active:
            raise RuntimeError(
                f"chain {self.chain_id} already terminated")
        transaction.index_in_chain = len(self.transactions)
        self.transactions.append(transaction)

    def terminate(self, now: float) -> None:
        """Mark the chain terminated (idempotent)."""
        if self.terminated_at is None:
            self.terminated_at = now


class ChainRegistry:
    """Swarm-wide chain bookkeeping and statistics.

    Tracks every chain ever created, supports sampling the number of
    active chains over time (Fig. 10) and cumulative initiation counts
    by initiator type (Fig. 11(a)), and the fraction of chains created
    by opportunistic seeding (Fig. 11(b)).
    """

    def __init__(self):
        self._chains: Dict[int, Chain] = {}
        self._next_id = 0
        self._active = 0
        self.created_by_seeder = 0
        self.created_by_leechers = 0
        self.samples: List[tuple] = []  # (time, active, total)

    def create(self, initiator_id: str, seeded_by_seeder: bool,
               now: float) -> Chain:
        """Open a new chain."""
        chain = Chain(chain_id=self._next_id, initiator_id=initiator_id,
                      seeded_by_seeder=seeded_by_seeder, created_at=now)
        self._chains[chain.chain_id] = chain
        self._next_id += 1
        self._active += 1
        if seeded_by_seeder:
            self.created_by_seeder += 1
        else:
            self.created_by_leechers += 1
        return chain

    def get(self, chain_id: int) -> Chain:
        """Look up a chain by id."""
        return self._chains[chain_id]

    def terminate(self, chain_id: int, now: float) -> None:
        """Terminate a chain (idempotent)."""
        chain = self._chains[chain_id]
        if chain.active:
            chain.terminate(now)
            self._active -= 1

    def revive(self, chain_id: int) -> None:
        """Undo a termination: a presumed-dead chain progressed after
        all (e.g. the stall watchdog misjudged a slow requestor)."""
        chain = self._chains[chain_id]
        if not chain.active:
            chain.terminated_at = None
            self._active += 1

    @property
    def active_count(self) -> int:
        """Number of currently active chains."""
        return self._active

    @property
    def total_count(self) -> int:
        """Number of chains ever created."""
        return len(self._chains)

    @property
    def opportunistic_fraction(self) -> float:
        """Fraction of all chains initiated by leechers (Fig. 11(b))."""
        if not self._chains:
            return 0.0
        return self.created_by_leechers / len(self._chains)

    def sample(self, now: float) -> None:
        """Record (time, active, total) for time-series plots."""
        self.samples.append((now, self._active, self.total_count))

    def chain_lengths(self) -> List[int]:
        """Lengths of all chains (for distribution statistics)."""
        return [c.length for c in self._chains.values()]

    def all_chains(self) -> List[Chain]:
        """All chains ever created, in creation order."""
        return [self._chains[i] for i in sorted(self._chains)]
