"""Symmetric-key cryptography for the almost-fair exchange.

The paper builds T-Chain's fairness on a lightweight symmetric cipher:
the donor encrypts a file piece with a fresh key ``K^{ij}_{D,R}`` and
only releases the key after the requestor reciprocates.  We implement a
real cipher from the standard library (pycryptodome is unavailable in
this offline environment): a SHA-256-based CTR keystream XORed with the
plaintext, plus an HMAC-SHA256 tag for integrity.  This is the classic
"hash-counter stream cipher" construction; it is semantically adequate
here because every key encrypts exactly one piece and is never reused
(footnote 2 of the paper makes the same single-use assumption).

Two layers of API are offered:

* byte-level :func:`encrypt` / :func:`decrypt` used by unit tests, the
  quickstart example and the Section III-C overhead benchmark; and
* :class:`SealedPiece`, the object that flows through simulations.  A
  sealed piece knows *which* key opens it but does not carry plaintext;
  large-scale behavioural simulations therefore do not pay the cost of
  ciphering gigabytes, while the protocol-visible semantics (cannot use
  a piece before the key arrives) are identical.  Passing
  ``payload=...`` produces a sealed piece with real ciphertext.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

_BLOCK = hashlib.sha256().digest_size  # 32 bytes of keystream per counter
_TAG_LEN = 32

KEY_SIZE_BYTES = 32
"""256-bit keys, matching the paper's overhead accounting (Sec. III-C3)."""


class CryptoError(ValueError):
    """Raised on decryption failures (wrong key or corrupted data)."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of SHA-256 CTR keystream.

    Batched: the ``key || nonce`` prefix is absorbed once and the
    per-counter states are forked with ``copy()``, and all blocks are
    joined in a single allocation — versus rehashing the prefix and
    growing a bytearray 32 bytes at a time, this roughly halves the
    keystream cost on large pieces (the dominant term of the
    Sec. III-C encryption-overhead benchmark).
    """
    if length <= 0:
        return b""
    base = hashlib.sha256(key + nonce)
    n_blocks = -(-length // _BLOCK)  # ceil division
    blocks = []
    for counter in range(n_blocks):
        h = base.copy()
        h.update(counter.to_bytes(8, "big"))
        blocks.append(h.digest())
    out = b"".join(blocks)
    return out[:length] if len(out) != length else out


def _xor_fast(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings via int arithmetic (fast path)."""
    n = len(data)
    return (int.from_bytes(data, "big")
            ^ int.from_bytes(stream, "big")).to_bytes(n, "big")


def encrypt(key: bytes, plaintext: bytes, nonce: Optional[bytes] = None
            ) -> bytes:
    """Encrypt ``plaintext`` under ``key``.

    Output layout: ``nonce (16) || ciphertext || tag (32)``.  The tag is
    ``HMAC-SHA256(key, nonce || ciphertext)``; it lets the receiver of a
    *key release* verify the key actually opens the piece it holds.
    """
    if len(key) != KEY_SIZE_BYTES:
        raise CryptoError(f"key must be {KEY_SIZE_BYTES} bytes")
    if nonce is None:
        nonce = os.urandom(16)
    if len(nonce) != 16:
        raise CryptoError("nonce must be 16 bytes")
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = _xor_fast(plaintext, stream) if plaintext else b""
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def decrypt(key: bytes, blob: bytes) -> bytes:
    """Decrypt a blob produced by :func:`encrypt`.

    Raises :class:`CryptoError` if the key is wrong or the blob was
    tampered with.
    """
    if len(key) != KEY_SIZE_BYTES:
        raise CryptoError(f"key must be {KEY_SIZE_BYTES} bytes")
    if len(blob) < 16 + _TAG_LEN:
        raise CryptoError("blob too short")
    nonce, body, tag = blob[:16], blob[16:-_TAG_LEN], blob[-_TAG_LEN:]
    expected = hmac.new(key, nonce + body, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise CryptoError("authentication failed (wrong key or corrupt data)")
    stream = _keystream(key, nonce, len(body))
    return _xor_fast(body, stream) if body else b""


@dataclass(frozen=True)
class Key:
    """A single-use symmetric key ``K^{ij}_{D,R}``.

    ``key_id`` identifies the key inside a simulation (donor id,
    transaction id); ``material`` is the 256-bit secret.  In logical
    mode the material is deterministic per key id, which is fine
    because no adversary inside the simulation can compute it without
    being *given* the Key object — possession of the object is the
    model of knowledge.
    """

    key_id: Tuple
    material: bytes = field(repr=False, default=b"")

    @staticmethod
    def derive(key_id: Tuple) -> "Key":
        material = hashlib.sha256(repr(key_id).encode("utf-8")).digest()
        return Key(key_id=key_id, material=material)


def generate_key(key_id: Tuple) -> Key:
    """Generate the per-transaction key for ``key_id``."""
    return Key.derive(key_id)


@dataclass
class SealedPiece:
    """An encrypted file piece in transit or pending decryption.

    Attributes
    ----------
    piece_index:
        Which piece of the shared file this is.
    key_id:
        Identifier of the key that opens it.
    ciphertext:
        Real ciphertext when the simulation runs with ``real_crypto``;
        ``None`` in logical mode.
    """

    piece_index: int
    key_id: Tuple
    ciphertext: Optional[bytes] = field(repr=False, default=None)

    def open(self, key: Key, expected_plaintext: Optional[bytes] = None
             ) -> Optional[bytes]:
        """Unseal with ``key``.

        Raises :class:`CryptoError` when the key does not match.  In
        logical mode returns ``None``; with real ciphertext returns the
        plaintext (and checks it against ``expected_plaintext`` when
        provided).
        """
        if key.key_id != self.key_id:
            raise CryptoError(
                f"key {key.key_id!r} does not open piece sealed under "
                f"{self.key_id!r}")
        if self.ciphertext is None:
            return None
        plaintext = decrypt(key.material, self.ciphertext)
        if (expected_plaintext is not None
                and plaintext != expected_plaintext):
            raise CryptoError("decrypted plaintext mismatch")
        return plaintext

    @staticmethod
    def seal(piece_index: int, key: Key,
             payload: Optional[bytes] = None) -> "SealedPiece":
        """Seal a piece under ``key``.

        ``payload`` supplies the plaintext for real encryption; omit it
        for logical (token) sealing used in large simulations.
        """
        ciphertext = None
        if payload is not None:
            # Deterministic nonce derived from the key id keeps sealed
            # pieces reproducible across runs with the same seed.
            nonce = hashlib.sha256(
                b"nonce" + repr(key.key_id).encode()).digest()[:16]
            ciphertext = encrypt(key.material, payload, nonce=nonce)
        return SealedPiece(piece_index=piece_index, key_id=key.key_id,
                           ciphertext=ciphertext)


class KeyStore:
    """Per-peer storage of keys for pieces this peer has *uploaded*.

    A donor keeps the key for every sealed piece it sent until the
    reception report arrives, at which point the key is released (and
    may be dropped).  Section III-C3 sizes this storage at 256 bits per
    outstanding piece.
    """

    def __init__(self):
        self._keys: Dict[Tuple, Key] = {}

    def put(self, key: Key) -> None:
        """Store a key under its id."""
        self._keys[key.key_id] = key

    def get(self, key_id: Tuple) -> Key:
        """Fetch a stored key; KeyError if unknown."""
        return self._keys[key_id]

    def pop(self, key_id: Tuple) -> Key:
        """Remove and return a stored key; KeyError if unknown."""
        return self._keys.pop(key_id)

    def __contains__(self, key_id: Tuple) -> bool:
        return key_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def storage_bytes(self) -> int:
        """Bytes of key material currently held (overhead accounting)."""
        return len(self._keys) * KEY_SIZE_BYTES
