"""The almost-fair exchange ledger.

:class:`ExchangeLedger` is the pure-logic heart of T-Chain: it owns the
transaction and chain state machines, generates the per-transaction
keys, links each reciprocation to the transaction it fulfils, and
decides when keys may be released.  It knows nothing about time-to-
transfer or bandwidth — the application layer (e.g. the BitTorrent
glue in :mod:`repro.bt.protocols.tchain`) schedules uploads and calls
back into the ledger as messages land.

The ledger enforces the paper's fairness core: a key is only released
after a reception report, and honest reports only follow an actual
reciprocation.  The *single* hole the paper admits — a colluding payee
filing a false report (Sec. III-A4) — is modelled explicitly via
``truthful=False`` and counted in :attr:`collusion_successes`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.chain import Chain, ChainRegistry
from repro.core.crypto import Key, SealedPiece, generate_key
from repro.core.transaction import Transaction, TransactionState


class ExchangeError(RuntimeError):
    """Raised on protocol-violating ledger calls."""


class ExchangeLedger:
    """Swarm-wide transaction/chain bookkeeping for T-Chain.

    Parameters
    ----------
    registry:
        Chain registry to record chains in; a fresh one is created when
        omitted.
    real_crypto:
        When True, sealed pieces carry real ciphertext (the caller must
        pass piece payloads to :meth:`create_transaction`).
    """

    def __init__(self, registry: Optional[ChainRegistry] = None,
                 real_crypto: bool = False):
        self.registry = registry if registry is not None else ChainRegistry()
        self.real_crypto = real_crypto
        #: Optional :class:`repro.devtools.sanitizer.SimulationSanitizer`
        #: mirroring the ledger's state transitions; set by whoever
        #: owns the simulator (e.g. ``TChainState``) when the run is
        #: sanitized.
        self.sanitizer = None
        self._transactions: Dict[int, Transaction] = {}
        self._keys: Dict[int, Key] = {}
        self._sealed: Dict[int, SealedPiece] = {}
        self._open_by_peer: Dict[str, set] = {}
        self._next_tx_id = 0
        self.collusion_successes = 0
        self.completed_transactions = 0
        self.aborted_transactions = 0
        self.forgiven_transactions = 0

    # ------------------------------------------------------------------
    # Chain and transaction creation
    # ------------------------------------------------------------------
    def begin_chain(self, initiator_id: str, seeded_by_seeder: bool,
                    now: float) -> Chain:
        """Open a new chain (seeder initiation or opportunistic seeding)."""
        return self.registry.create(initiator_id, seeded_by_seeder, now)

    def create_transaction(self, chain: Chain, donor_id: str,
                           requestor_id: str, payee_id: Optional[str],
                           piece_index: int, now: float,
                           reciprocates: Optional[int] = None,
                           encrypted: bool = True,
                           direct: bool = False,
                           payload: Optional[bytes] = None,
                           forward_of: Optional[int] = None,
                           ) -> Tuple[Transaction, Optional[SealedPiece]]:
        """Create the next transaction of ``chain``.

        Returns the transaction and the sealed piece the donor must
        upload (``None`` for unencrypted termination uploads).

        ``forward_of`` implements newcomer bootstrapping (Sec. II-D1):
        the donor is a newcomer forwarding the still-encrypted piece it
        received in transaction ``forward_of``; the new transaction
        reuses that piece's key and ciphertext, and the key is released
        through the normal report flow once the original donor has
        released it up-chain.
        """
        if encrypted and payee_id is None:
            raise ExchangeError("encrypted transactions need a payee")
        if not encrypted and payee_id is not None:
            raise ExchangeError("termination uploads carry no payee")
        if reciprocates is not None:
            prev = self._transactions.get(reciprocates)
            if prev is None:
                raise ExchangeError(f"unknown transaction {reciprocates}")
            if prev.requestor_id != donor_id:
                raise ExchangeError(
                    "only the previous requestor may reciprocate")
            if prev.payee_id != requestor_id:
                raise ExchangeError(
                    "reciprocation must go to the designated payee")
        tx = Transaction(
            transaction_id=self._next_tx_id,
            chain_id=chain.chain_id,
            index_in_chain=0,  # set by chain.append
            donor_id=donor_id,
            requestor_id=requestor_id,
            payee_id=payee_id,
            piece_index=piece_index,
            reciprocates=reciprocates,
            encrypted=encrypted,
            direct=direct,
            created_at=now,
        )
        self._next_tx_id += 1
        sealed: Optional[SealedPiece] = None
        if encrypted:
            if forward_of is not None:
                if forward_of not in self._keys:
                    raise ExchangeError(
                        f"cannot forward unknown transaction {forward_of}")
                original = self._transactions[forward_of]
                if original.piece_index != piece_index:
                    raise ExchangeError(
                        "a forwarded piece must keep its piece index")
                key = self._keys[forward_of]
                tx.key_id = key.key_id
                self._keys[tx.transaction_id] = key
                sealed = self._sealed[forward_of]
            else:
                key = generate_key(
                    (donor_id, requestor_id, tx.transaction_id))
                tx.key_id = key.key_id
                self._keys[tx.transaction_id] = key
                sealed = SealedPiece.seal(
                    piece_index, key,
                    payload=payload if self.real_crypto else None)
            self._sealed[tx.transaction_id] = sealed
        chain.append(tx)
        self._transactions[tx.transaction_id] = tx
        for party in tx.parties():
            self._open_by_peer.setdefault(party, set()).add(
                tx.transaction_id)
        if self.sanitizer is not None:
            self.sanitizer.on_transaction_created(tx)
        return tx, sealed

    def _close_index(self, tx: Transaction) -> None:
        for party in tx.parties():
            open_set = self._open_by_peer.get(party)
            if open_set is not None:
                open_set.discard(tx.transaction_id)

    # ------------------------------------------------------------------
    # Protocol progress
    # ------------------------------------------------------------------
    def get(self, transaction_id: int) -> Transaction:
        """Look up a transaction."""
        return self._transactions[transaction_id]

    def mark_delivered(self, transaction_id: int, now: float
                       ) -> Optional[Transaction]:
        """The donor's upload reached the requestor.

        For unencrypted uploads the transaction completes immediately
        and its chain terminates.  Returns the *earlier* transaction
        that this delivery reciprocates (now RECIPROCATED), or ``None``
        for chain initiations — the caller uses it to route the payee's
        reception report.
        """
        tx = self._transactions[transaction_id]
        tx.advance(TransactionState.DELIVERED)
        tx.delivered_at = now
        if self.sanitizer is not None:
            self.sanitizer.on_delivered(tx)
        if not tx.encrypted:
            tx.advance(TransactionState.COMPLETED)
            tx.completed_at = now
            self.completed_transactions += 1
            self._close_index(tx)
            self.registry.terminate(tx.chain_id, now)
        if tx.reciprocates is None:
            return None
        prev = self._transactions[tx.reciprocates]
        if prev.state is TransactionState.DELIVERED:
            prev.advance(TransactionState.RECIPROCATED)
            if self.sanitizer is not None:
                self.sanitizer.on_reciprocated(prev, tx)
            return prev
        return None

    def report_reciprocation(self, transaction_id: int, now: float,
                             truthful: bool = True) -> None:
        """The payee's reception report reached the donor.

        ``truthful=False`` models the collusion/Sybil attack: the payee
        vouches for a reciprocation that never happened.  The ledger
        permits it (the donor cannot tell) and records the fairness
        breach.
        """
        tx = self._transactions[transaction_id]
        if tx.state is TransactionState.RECIPROCATED:
            tx.advance(TransactionState.REPORTED)
        elif tx.state is TransactionState.DELIVERED:
            if truthful:
                raise ExchangeError(
                    f"truthful report for unreciprocated transaction "
                    f"{transaction_id}")
            tx.unreciprocated_completion = True
            self.collusion_successes += 1
            tx.advance(TransactionState.REPORTED)
        else:
            raise ExchangeError(
                f"report for transaction {transaction_id} in state "
                f"{tx.state.value}")
        if self.sanitizer is not None:
            self.sanitizer.on_report(tx, truthful)

    def release_key(self, transaction_id: int, now: float) -> Key:
        """The donor releases the key; the transaction completes.

        Only legal after a reception report — this is the fairness
        guarantee: no report, no key.
        """
        tx = self._transactions[transaction_id]
        if tx.state is not TransactionState.REPORTED:
            raise ExchangeError(
                f"key release for transaction {transaction_id} in state "
                f"{tx.state.value} (report required first)")
        if self.sanitizer is not None:
            self.sanitizer.on_key_release(tx)
        tx.advance(TransactionState.COMPLETED)
        tx.completed_at = now
        self.completed_transactions += 1
        self._close_index(tx)
        return self._keys[transaction_id]

    def peek_key(self, transaction_id: int) -> Key:
        """The key for a transaction, without completing it.

        Used for the departure handover of Sec. II-B4 (a leaving donor
        forwards its key to the payee).
        """
        return self._keys[transaction_id]

    def reopen(self, transaction_id: int, now: float) -> None:
        """Roll a reciprocated-but-unreported transaction back to
        DELIVERED so the requestor can reciprocate again.

        Covers the silent-payee failure: the requestor uploaded to the
        designated payee but no reception report ever reached the
        donor (the payee departed uncleanly or is malicious).  The
        requestor pleads its case to the donor, which reassigns the
        payee; the requestor must still pay again — no key changes
        hands here, so there is nothing to exploit.
        """
        tx = self._transactions[transaction_id]
        if tx.state is not TransactionState.RECIPROCATED:
            raise ExchangeError(
                f"can only reopen a reciprocated transaction, not "
                f"{tx.state.value}")
        tx.advance(TransactionState.DELIVERED)
        if self.sanitizer is not None:
            # Shadow-state rollback: the observed reciprocation no
            # longer counts, so a later truthful report must follow a
            # *new* reciprocal upload — and the fresh one must not
            # read as a false violation.
            self.sanitizer.on_reopen(tx)

    def forgive(self, transaction_id: int, now: float) -> Key:
        """Release a requestor from its reciprocation duty.

        Covers the rare no-payee-exists situations of Secs. II-B3/B4:
        the donor (or the departing donor's stand-in) frees the
        requestor and hands over the key without reciprocation.  This
        is *not* a collusion breach — it is the protocol's sanctioned
        escape hatch — and is counted separately.
        """
        tx = self._transactions[transaction_id]
        if tx.state is not TransactionState.DELIVERED:
            raise ExchangeError(
                f"can only forgive a delivered transaction, not "
                f"{tx.state.value}")
        if self.sanitizer is not None:
            self.sanitizer.on_forgive(tx)
        tx.advance(TransactionState.REPORTED)
        tx.advance(TransactionState.COMPLETED)
        tx.completed_at = now
        self.completed_transactions += 1
        self.forgiven_transactions += 1
        self._close_index(tx)
        return self._keys[transaction_id]

    def abort(self, transaction_id: int, now: float) -> None:
        """Abort an open transaction (unrecoverable departure)."""
        tx = self._transactions[transaction_id]
        if tx.is_open:
            tx.advance(TransactionState.ABORTED)
            self.aborted_transactions += 1
            self._close_index(tx)
            if self.sanitizer is not None:
                self.sanitizer.on_abort(tx)

    def reassign_payee(self, transaction_id: int, new_payee: str) -> None:
        """Sec. II-B4: the payee left (or needs nothing) before the
        requestor reciprocated; the donor designates a replacement."""
        tx = self._transactions[transaction_id]
        if tx.state is not TransactionState.DELIVERED:
            raise ExchangeError(
                f"cannot reassign payee in state {tx.state.value}")
        old_payee = tx.payee_id
        tx.payee_id = new_payee
        if old_payee is not None and old_payee not in (
                tx.donor_id, tx.requestor_id):
            open_set = self._open_by_peer.get(old_payee)
            if open_set is not None:
                open_set.discard(tx.transaction_id)
        self._open_by_peer.setdefault(new_payee, set()).add(
            tx.transaction_id)

    def terminate_chain(self, chain_id: int, now: float) -> None:
        """Terminate a chain explicitly (e.g. stalled by a free-rider)."""
        self.registry.terminate(chain_id, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def open_transactions(self) -> int:
        """Transactions still in flight."""
        return sum(1 for t in self._transactions.values() if t.is_open)

    def transactions_involving(self, peer_id: str) -> list:
        """All transactions in which ``peer_id`` plays any role."""
        return [t for t in self._transactions.values()
                if peer_id in t.parties()]

    def open_transactions_involving(self, peer_id: str) -> list:
        """Open transactions involving ``peer_id`` (indexed; O(own))."""
        ids = self._open_by_peer.get(peer_id, ())
        return [self._transactions[i] for i in sorted(ids)]
