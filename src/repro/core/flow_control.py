"""Flow control: adaptive receiver selection (Sec. II-D2).

Each peer records, per neighbor, the number of *pending* file pieces —
encrypted pieces it uploaded to that neighbor for which no notification
of reciprocation has arrived yet.  A neighbor with ``k`` or more
pending pieces is neither selected to receive pieces nor designated as
a payee until its backlog drains.  The paper fixes ``k = 2``.

This one mechanism both smooths heterogeneous upload capacities and
starves free-riders: a peer that never reciprocates accumulates pending
pieces at every honest neighbor and is quietly banned everywhere, with
no reputation system or information sharing required.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

DEFAULT_PENDING_LIMIT = 2
"""The paper's k = 2 (Sec. II-D2)."""


class FlowController:
    """Per-peer pending-piece accounting.

    Parameters
    ----------
    pending_limit:
        The window k.  Neighbors at or above the limit are ineligible.
    """

    def __init__(self, pending_limit: int = DEFAULT_PENDING_LIMIT):
        if pending_limit < 1:
            raise ValueError("pending_limit must be >= 1")
        self.pending_limit = pending_limit
        self._pending: Dict[str, int] = {}
        self._forgotten: set = set()
        #: Decrements that arrived with an already-empty window.  A
        #: nonzero count after a run where no neighbor was forgotten
        #: means some exchange was confirmed/written off twice — the
        #: window would have re-opened early without the zero floor.
        self.underflows = 0
        #: Fired as ``(neighbor_id, blocked)`` whenever a neighbor
        #: crosses the window boundary in either direction — i.e. only
        #: when ``eligible(neighbor_id)`` actually flips.  The interest
        #: index machinery mirrors eligibility into a per-donor blocked
        #: set through this hook.
        self.on_window_change: Optional[Callable[[str, bool], None]] = None
        #: Fired as ``(neighbor_id,)`` when a decrement finds an empty
        #: window.  The count stays floored at zero and no window event
        #: fires; the owner decides whether the underflow is benign (a
        #: confirm straggling in after ``forget``) or an accounting bug
        #: worth escalating to the sanitizer.
        self.on_underflow: Optional[Callable[[str], None]] = None

    def on_piece_sent(self, neighbor_id: str) -> None:
        """An encrypted piece was uploaded to ``neighbor_id``."""
        count = self._pending.get(neighbor_id, 0) + 1
        self._pending[neighbor_id] = count
        # count steps by one, so == pending_limit is exactly the
        # eligible -> blocked flip.
        if count == self.pending_limit and self.on_window_change is not None:
            self.on_window_change(neighbor_id, True)

    def on_reciprocation_confirmed(self, neighbor_id: str) -> None:
        """A reciprocation notification for ``neighbor_id`` arrived."""
        count = self._pending.get(neighbor_id, 0)
        if count == 0:
            # Floor at zero: a duplicate confirm/write-off must not
            # push the window negative (the next on_piece_sent would
            # then under-count the true backlog and re-open a blocked
            # neighbor early).
            self.underflows += 1
            if self.on_underflow is not None:
                self.on_underflow(neighbor_id)
            return
        if count == 1:
            self._pending.pop(neighbor_id, None)
        else:
            self._pending[neighbor_id] = count - 1
        # Fire only on the blocked -> eligible flip, i.e. when the
        # count drops off the limit.  Counts above the limit (possible
        # when the limit was lowered mid-run) stay blocked silently.
        if count == self.pending_limit and self.on_window_change is not None:
            self.on_window_change(neighbor_id, False)

    def write_off(self, neighbor_id: str) -> None:
        """Write one dead exchange off the neighbor's window.

        Called when the donor abandons a transaction (stall watchdog,
        abort): pending pieces track *outstanding* exchanges, not
        lifetime debt, so a written-off exchange stops occupying the
        window.  A persistent non-reciprocator still spends its whole
        window on dead exchanges at any moment — it stays starved of
        throughput — but is not banned beyond the write-off horizon.
        """
        self.on_reciprocation_confirmed(neighbor_id)

    def forget(self, neighbor_id: str) -> None:
        """Drop state for a departed neighbor.

        The id is remembered in :attr:`was_forgotten` so a straggling
        confirm (a report in flight when the neighbor disconnected)
        can be told apart from a genuine double-drain underflow.
        """
        count = self._pending.pop(neighbor_id, None)
        self._forgotten.add(neighbor_id)
        if (count is not None and count >= self.pending_limit
                and self.on_window_change is not None):
            self.on_window_change(neighbor_id, False)

    def was_forgotten(self, neighbor_id: str) -> bool:
        """True if ``forget`` was ever called for this neighbor."""
        return neighbor_id in self._forgotten

    def pending(self, neighbor_id: str) -> int:
        """Current pending count for a neighbor."""
        return self._pending.get(neighbor_id, 0)

    def eligible(self, neighbor_id: str) -> bool:
        """True while the neighbor is under the window."""
        # Inlined pending(): this check runs for every neighbor on
        # every donor-planning pass.
        return self._pending.get(neighbor_id, 0) < self.pending_limit

    def filter_eligible(self, neighbor_ids: Iterable[str]) -> List[str]:
        """Subset of ``neighbor_ids`` that pass the window check."""
        return [n for n in neighbor_ids if self.eligible(n)]

    def least_loaded(self, neighbor_ids: Iterable[str]) -> List[str]:
        """Neighbors with the smallest pending count (the alternative
        selection rule mentioned in Sec. II-D2)."""
        ids = list(neighbor_ids)
        if not ids:
            return []
        low = min(self.pending(n) for n in ids)
        return [n for n in ids if self.pending(n) == low]

    @property
    def total_pending(self) -> int:
        """Total outstanding pieces across all neighbors."""
        return sum(self._pending.values())
