"""Protocol messages of the T-Chain exchange (Fig. 1 of the paper).

Five message types cross the wire:

* :class:`EncryptedPieceMessage` — step 2 of each transaction: the donor
  uploads ``K[p]`` to the requestor together with the payee designation
  and a back-reference identifying which earlier transaction this upload
  reciprocates (``(i1, A)`` in the paper's notation).
* :class:`ReceptionReport` — the payee notifies the *previous* donor
  that the requestor reciprocated (``r_C = [B | i1]``).
* :class:`KeyReleaseMessage` — the donor releases the decryption key.
* :class:`PlainPieceMessage` — chain termination: an unencrypted piece
  that carries no reciprocation obligation.
* :class:`PleadMessage` — recovery (Sec. II-B4): a requestor that
  reciprocated but never received its key pleads its case back to the
  donor (the reception report was lost or the payee stayed silent);
  the donor reopens the transaction and reassigns the payee, or
  re-releases a key whose delivery was lost.

These are plain dataclasses; the simulation layers decide how long they
take to deliver (pieces occupy uplink slots, control messages are
near-free per Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.crypto import Key, SealedPiece


@dataclass(frozen=True, slots=True)
class EncryptedPieceMessage:
    """Donor → requestor: a sealed piece plus the reciprocation order.

    Attributes
    ----------
    transaction_id:
        Id of the transaction this upload *starts*.
    chain_id:
        The chain the transaction belongs to.
    sealed:
        The encrypted piece.
    donor_id / requestor_id / payee_id:
        The three parties; ``payee_id`` is whom the requestor must
        upload to next.
    reciprocates:
        Id of the earlier transaction this upload fulfils, or ``None``
        when the donor is initiating a chain (seeder or opportunistic
        seeding).
    """

    transaction_id: int
    chain_id: int
    sealed: SealedPiece
    donor_id: str
    requestor_id: str
    payee_id: str
    reciprocates: Optional[int] = None


@dataclass(frozen=True, slots=True)
class ReceptionReport:
    """Payee → previous donor: "your requestor reciprocated to me".

    ``truthful`` is False when a colluding payee files the report even
    though no piece arrived (the Sybil/collusion attack of
    Sec. III-A4); honest peers always send truthful reports.
    """

    reporter_id: str
    requestor_id: str
    reported_transaction_id: int
    truthful: bool = True


@dataclass(frozen=True, slots=True)
class KeyReleaseMessage:
    """Donor → requestor: the decryption key completing a transaction."""

    transaction_id: int
    key: Key


@dataclass(frozen=True, slots=True)
class PleadMessage:
    """Requestor → donor: "I reciprocated and no key ever came".

    Sent after a key-release timeout.  ``attempt`` counts pleads for
    this transaction (each timeout re-pleads — the plead itself may be
    lost on a faulty control plane).  The donor decides from its
    ledger view: a COMPLETED transaction means the key release was
    lost (resend the key); a RECIPROCATED one means the reception
    report was swallowed (reopen + reassign the payee).
    """

    requestor_id: str
    transaction_id: int
    attempt: int = 1


@dataclass(frozen=True, slots=True)
class PlainPieceMessage:
    """Chain termination: an unencrypted piece, no strings attached.

    The paper's termination phase (Fig. 1(c)) releases the receiver
    from any obligation, ending the chain.

    Plain-piece messages are the highest-volume message type in a
    converged swarm (every chain terminates with one per piece), so
    they are poolable: build them with :func:`acquire_plain_piece`
    and hand consumed ones back with :func:`release_plain_piece`.
    Direct construction stays valid — the pool is an optimization,
    not a protocol change.
    """

    transaction_id: int
    chain_id: int
    piece_index: int
    donor_id: str
    requestor_id: str
    reciprocates: Optional[int] = None


#: Free-list for :class:`PlainPieceMessage` (bounded; see SL304).
_PLAIN_PIECE_POOL: list = []
_PLAIN_PIECE_POOL_MAX = 256


def acquire_plain_piece(transaction_id: int, chain_id: int,
                        piece_index: int, donor_id: str,
                        requestor_id: str,
                        reciprocates: Optional[int] = None,
                        ) -> PlainPieceMessage:
    """A :class:`PlainPieceMessage`, recycled from the pool when one
    is available.

    Frozen-dataclass fields are reinitialized via
    ``object.__setattr__`` — the one sanctioned way to write a frozen
    instance, confined to this module so the immutability contract
    holds everywhere else.
    """
    if _PLAIN_PIECE_POOL:
        msg = _PLAIN_PIECE_POOL.pop()
        object.__setattr__(msg, "transaction_id", transaction_id)
        object.__setattr__(msg, "chain_id", chain_id)
        object.__setattr__(msg, "piece_index", piece_index)
        object.__setattr__(msg, "donor_id", donor_id)
        object.__setattr__(msg, "requestor_id", requestor_id)
        object.__setattr__(msg, "reciprocates", reciprocates)
        return msg
    return PlainPieceMessage(  # simlint: disable=SL304 -- this IS the pool: miss path when the free-list is empty
        transaction_id=transaction_id, chain_id=chain_id,
        piece_index=piece_index, donor_id=donor_id,
        requestor_id=requestor_id, reciprocates=reciprocates)


def release_plain_piece(msg: PlainPieceMessage) -> None:
    """Return a consumed message to the pool.

    Callers must guarantee nothing else retains ``msg`` (the tchain
    receive path checks the refcount before releasing); the pool
    drops returns beyond its bound instead of growing unboundedly.
    """
    if len(_PLAIN_PIECE_POOL) < _PLAIN_PIECE_POOL_MAX:
        _PLAIN_PIECE_POOL.append(msg)
