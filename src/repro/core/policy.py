"""Payee selection: direct vs. indirect reciprocity (Sec. II-B2).

When a donor uploads to a requestor it must designate the payee the
requestor will reciprocate to:

* **Direct reciprocity** — if the requestor owns at least one piece the
  donor needs, the donor designates *itself*; the pair behaves like
  encrypted tit-for-tat.
* **Indirect reciprocity** — otherwise the donor picks a random
  neighbor that needs at least one of the requestor's completed pieces
  (pay-it-forward).
* **Termination** — if no such neighbor exists the donor uploads an
  unencrypted piece and the chain ends (Fig. 1(c)).

The functions here are pure: the caller supplies the candidate sets and
the flow-control view, which keeps the decision logic testable without
a simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from random import Random
from typing import Iterable, List, Optional

from repro.core.flow_control import FlowController


class ReciprocityKind(enum.Enum):
    """Outcome of payee selection."""

    DIRECT = "direct"
    INDIRECT = "indirect"
    TERMINATE = "terminate"


@dataclass(frozen=True)
class PayeeDecision:
    """The donor's choice of payee (or the decision to terminate)."""

    kind: ReciprocityKind
    payee_id: Optional[str]

    @property
    def terminates_chain(self) -> bool:
        """True when the donor must upload unencrypted."""
        return self.kind is ReciprocityKind.TERMINATE


def select_payee(donor_id: str,
                 requestor_id: str,
                 requestor_has_piece_donor_needs: bool,
                 candidate_payees: Iterable[str],
                 flow: FlowController,
                 rng: Random,
                 least_loaded: bool = False) -> PayeeDecision:
    """Choose the payee for the next transaction.

    Parameters
    ----------
    requestor_has_piece_donor_needs:
        Direct-reciprocity test: does the requestor own a completed
        piece the donor still needs?
    candidate_payees:
        Donor's neighbors that need at least one of the requestor's
        completed pieces (including the piece about to be uploaded);
        the donor and the requestor themselves must not be included.
    flow:
        The donor's flow controller; over-window candidates are
        filtered out (Sec. II-D2).
    least_loaded:
        Use the smallest-pending-count rule instead of uniform random
        choice among eligible candidates.
    """
    if requestor_has_piece_donor_needs:
        return PayeeDecision(ReciprocityKind.DIRECT, donor_id)
    eligible: List[str] = [
        c for c in candidate_payees
        if c not in (donor_id, requestor_id) and flow.eligible(c)
    ]
    if not eligible:
        return PayeeDecision(ReciprocityKind.TERMINATE, None)
    if least_loaded:
        eligible = flow.least_loaded(eligible)
    return PayeeDecision(ReciprocityKind.INDIRECT, rng.choice(eligible))


def select_requestor(candidates: Iterable[str],
                     flow: FlowController,
                     rng: Random) -> Optional[str]:
    """Pick whom to upload to when initiating a chain.

    Used by seeders (initiation phase) and by opportunistic seeders
    (Sec. II-D3): a uniform random choice among flow-eligible
    requesting neighbors; ``None`` when nobody qualifies.
    """
    eligible = flow.filter_eligible(candidates)
    if not eligible:
        return None
    return rng.choice(eligible)


def should_opportunistically_seed(completed_pieces: int,
                                  unfulfilled_obligations: int) -> bool:
    """Opportunistic-seeding trigger (Sec. II-D3).

    A leecher may initiate a chain when it owns at least one completed
    piece and has no pending (not yet reciprocated) file pieces — i.e.
    no received piece whose reciprocation it still owes.  With nothing
    left to reciprocate, idle upload capacity is put to work by
    starting new chains, "immediately increasing the number of chains
    in which B is participating".
    """
    return completed_pieces >= 1 and unfulfilled_obligations == 0
