"""Transactions: the unit step of a T-Chain.

A transaction ``t_j`` has a donor ``D_j``, a requestor ``R_j`` and a
payee ``P_j`` (Table I).  The donor uploads an encrypted piece to the
requestor; the requestor reciprocates by uploading to the payee; the
payee reports to the donor; the donor releases the key.  The state
machine below tracks exactly that lifecycle:

::

    CREATED --upload done--> DELIVERED --requestor uploads to payee-->
    RECIPROCATED --payee report--> REPORTED --key release--> COMPLETED

Terminating transactions (unencrypted upload, Fig. 1(c)) jump straight
from DELIVERED to COMPLETED.  ``ABORTED`` covers unrecoverable peer
departures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class TransactionState(enum.Enum):
    """Lifecycle states of a transaction (see module docstring)."""

    CREATED = "created"
    DELIVERED = "delivered"
    RECIPROCATED = "reciprocated"
    REPORTED = "reported"
    COMPLETED = "completed"
    ABORTED = "aborted"


_VALID_TRANSITIONS = {
    TransactionState.CREATED: {TransactionState.DELIVERED,
                               TransactionState.ABORTED},
    TransactionState.DELIVERED: {TransactionState.RECIPROCATED,
                                 TransactionState.REPORTED,  # collusion
                                 TransactionState.COMPLETED,  # unencrypted
                                 TransactionState.ABORTED},
    TransactionState.RECIPROCATED: {TransactionState.REPORTED,
                                    TransactionState.DELIVERED,  # reopen
                                    TransactionState.ABORTED},
    TransactionState.REPORTED: {TransactionState.COMPLETED,
                                TransactionState.ABORTED},
    TransactionState.COMPLETED: set(),
    TransactionState.ABORTED: set(),
}


class InvalidTransition(RuntimeError):
    """Raised when a transaction is driven through an illegal edge."""


@dataclass(slots=True)
class Transaction:
    """One donor→requestor→payee exchange.

    Attributes
    ----------
    transaction_id / chain_id / index_in_chain:
        Identity and position.
    donor_id / requestor_id / payee_id:
        The three parties.  For terminating (unencrypted) transactions
        ``payee_id`` is ``None``.
    piece_index:
        Which file piece the donor uploads.
    key_id:
        Key identifier for the sealed piece (``None`` if unencrypted).
    reciprocates:
        The earlier transaction this one fulfils, or ``None`` for chain
        initiations.
    encrypted:
        False only for termination-phase uploads.
    direct:
        True when the payee is the donor itself (direct reciprocity).
    created_at / delivered_at / completed_at:
        Simulation timestamps for latency analysis (Fig. 5).
    unreciprocated_completion:
        True when the key was released on a *false* report — a
        successful collusion attack (Sec. III-A4 metric).
    """

    transaction_id: int
    chain_id: int
    index_in_chain: int
    donor_id: str
    requestor_id: str
    payee_id: Optional[str]
    piece_index: int
    key_id: Optional[Tuple] = None
    reciprocates: Optional[int] = None
    encrypted: bool = True
    direct: bool = False
    state: TransactionState = TransactionState.CREATED
    created_at: float = 0.0
    delivered_at: Optional[float] = None
    completed_at: Optional[float] = None
    unreciprocated_completion: bool = field(default=False)
    #: the donor wrote this exchange off its pending window
    written_off: bool = field(default=False)

    def advance(self, new_state: TransactionState) -> None:
        """Move to ``new_state``; raises :class:`InvalidTransition` on
        illegal edges so protocol bugs fail loudly."""
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise InvalidTransition(
                f"transaction {self.transaction_id}: "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state

    @property
    def is_open(self) -> bool:
        """True while the transaction still awaits progress."""
        return self.state not in (TransactionState.COMPLETED,
                                  TransactionState.ABORTED)

    @property
    def is_initiation(self) -> bool:
        """True for the first transaction of a chain."""
        return self.reciprocates is None

    def parties(self) -> Tuple[str, ...]:
        """All peer ids involved (payee omitted when absent)."""
        if self.payee_id is None:
            return (self.donor_id, self.requestor_id)
        return (self.donor_id, self.requestor_id, self.payee_id)
