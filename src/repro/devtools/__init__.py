"""Developer tooling guarding the determinism contract.

Two complementary halves:

* :mod:`repro.devtools.rules` / :mod:`repro.devtools.analyzer` — the
  ``simlint`` static analyzer (``repro lint``): AST rules SL001-SL007
  catching nondeterminism and protocol hazards at review time.
* :mod:`repro.devtools.sanitizer` — the runtime simulation sanitizer
  (``Simulator(sanitize=True)``): shadow-state invariant checks on
  live runs.

See ``docs/DEVTOOLS.md`` for the rule catalogue and suppression
syntax.
"""

from repro.devtools.analyzer import (
    format_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.devtools.config import SimlintConfig, load_config
from repro.devtools.rules import RULES, Finding, Rule, all_rule_ids
from repro.devtools.sanitizer import SanitizerError, SimulationSanitizer

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "SanitizerError",
    "SimlintConfig",
    "SimulationSanitizer",
    "all_rule_ids",
    "format_findings",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
