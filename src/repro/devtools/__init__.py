"""Developer tooling guarding the determinism contract.

Three complementary layers:

* :mod:`repro.devtools.rules` / :mod:`repro.devtools.analyzer` — the
  ``simlint`` static analyzer (``repro lint``): per-file AST rules
  SL001-SL009 catching nondeterminism and protocol hazards at review
  time.
* :mod:`repro.devtools.callgraph` / :mod:`repro.devtools.taint` /
  :mod:`repro.devtools.protocol_spec` / :mod:`repro.devtools.deep` —
  the whole-program layer (``repro lint --deep``): interprocedural
  nondeterminism taint (SL101-SL104) and T-Chain exchange-lifecycle
  conformance (SL110-SL112), with a content-hash findings cache,
  baseline support and JSON/SARIF output
  (:mod:`repro.devtools.output`).
* :mod:`repro.devtools.sanitizer` — the runtime simulation sanitizer
  (``Simulator(sanitize=True)``): shadow-state invariant checks on
  live runs.

See ``docs/DEVTOOLS.md`` for the rule catalogue and suppression
syntax.
"""

from repro.devtools.analyzer import (
    SuppressionIndex,
    format_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    raw_findings,
)
from repro.devtools.config import SimlintConfig, load_config
from repro.devtools.rules import RULES, Finding, Rule, all_rule_ids
from repro.devtools.sanitizer import SanitizerError, SimulationSanitizer

__all__ = [
    "RULES",
    "Finding",
    "Rule",
    "SanitizerError",
    "SimlintConfig",
    "SimulationSanitizer",
    "SuppressionIndex",
    "all_rule_ids",
    "format_findings",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "raw_findings",
]
