"""Interprocedural hot-path allocation audit (simheat, SL301–SL304).

The third whole-program layer behind ``repro lint --deep``.  The
hot-region inference (:mod:`repro.devtools.hotpath`) classifies every
function by static frequency; this pass summarizes each function's
**allocation sites** and reports the ones sitting in per-event
regions, with the full seed→function chain explaining why the region
is hot (mirroring the taint pass's source→sink traces).

Allocation kinds summarized per function:

* comprehensions (list/set/dict/generator expressions);
* ``list()`` / ``dict()`` / ``set()`` / ``tuple()`` / ``sorted()`` /
  ``frozenset()`` copies and fresh containers;
* tuple displays and resolved dataclass/class construction;
* lambda / nested ``def`` / ``functools.partial`` creation;
* f-strings, ``%``-formatting and ``.format`` calls;
* slicing copies (``xs[1:]``).

Sites inside ``raise`` / ``assert`` statements are skipped — error
paths are cold by definition, and f-string diagnostics there are the
dominant false-positive source.

Rules:

* **SL301** — constant-size allocation in a per-event hot path: each
  simulation event pays it, so at 10^5 peers it is the per-event
  garbage bill.
* **SL302** — an O(peers)/O(pieces)-scale copy, comprehension or
  slicing in a per-event region (the interprocedural generalization
  of the file-local SL010/SL012 rescan rules): the *size* of the
  allocation grows with the swarm.
* **SL303** — closure/partial creation per event: the code object is
  constant, so the closure should be hoisted to setup (a bound
  method, a module function, or a prebuilt partial).
* **SL304** — per-event construction of a *poolable* type (engine
  events, piece-pump messages) for which a free-list exists; use the
  pool instead of the constructor.

One finding per (rule, function), anchored at the function's first
offending site so an inline simlint ``disable=SL30x`` suppression on
that line covers it; the message lists up to three sites plus the
hot chain.  ``tests/``, ``examples/`` and ``benchmarks/`` trees are
out of scope — scenario builders allocate freely by design — and so
is ``devtools/`` itself: sanitizer/race-reporter observers run only
in opt-in diagnostic modes that deliberately trade allocation for
observability (the default fast path never invokes them).
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Set

from .callgraph import FunctionInfo, ProjectIndex, iter_own_nodes
from .hotpath import FREQ_EVENT, HotRegion, infer_hot_regions, render_chain
from .rules import Finding

#: Builtin calls that copy or build a container.
_CONTAINER_CALLS = frozenset({"list", "dict", "set", "tuple",
                              "frozenset", "sorted"})

#: Identifier substrings that mark an expression as swarm-scale
#: (peers/pieces populations); drives the SL301/SL302 split.
_SCALE_HINTS = ("peer", "neighbor", "member", "wanter", "candidate",
                "piece", "book", "obligation", "leecher", "seeder",
                "wanted", "offered", "completed", "ids")

#: Poolable types with an existing free-list, for SL304.
POOLABLE_TYPES: Dict[str, str] = {
    "EventHandle": "the engine's pool_events free-list "
                   "(Simulator(pool_events=True) recycles handles)",
    "PlainPieceMessage": "the plain-piece message pool "
                         "(repro.core.messages.acquire_plain_piece)",
}

#: Caps keeping diagnostics readable and the real-tree inventory
#: reviewable.
_MAX_SITES_IN_MESSAGE = 3

_RULE_LABEL = {
    "SL301": "per-event allocation",
    "SL302": "O(swarm)-scale allocation in a per-event region",
    "SL303": "per-event closure creation",
    "SL304": "per-event construction of a poolable type",
}

#: Path segments outside the audit's scope (``devtools``: opt-in
#: diagnostic observers allocate for observability by design).
_SKIP_SEGMENTS = frozenset({"tests", "examples", "benchmarks",
                            "devtools"})


class AllocSite(NamedTuple):
    """One allocation expression inside a function body."""

    kind: str        # comprehension | copy | constructor | closure |
                     # format | slice
    desc: str        # human-readable, e.g. "list(self.peers) copy"
    line: int
    col: int
    linear: bool     # True when the size scales with the swarm
    type_name: str   # constructed type for kind == "constructor"


def _identifiers(node: ast.AST) -> List[str]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
    return out


def _swarm_scale(node: ast.AST) -> bool:
    """Does the expression plausibly denote a peers/pieces-sized
    collection?"""
    for ident in _identifiers(node):
        low = ident.lower()
        if any(hint in low for hint in _SCALE_HINTS):
            return True
    return False


def _cold_nodes(info: FunctionInfo) -> Set[int]:
    """ids of nodes inside ``raise``/``assert`` statements (error
    paths: cold by definition, skipped by the audit)."""
    cold: Set[int] = set()
    for node in iter_own_nodes(info):
        if isinstance(node, (ast.Raise, ast.Assert)):
            for sub in ast.walk(node):
                cold.add(id(sub))
    return cold


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _site_for(node: ast.AST) -> Optional[AllocSite]:
    """Classify one AST node as an allocation site (or not)."""
    line = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        label = {ast.ListComp: "list", ast.SetComp: "set",
                 ast.DictComp: "dict",
                 ast.GeneratorExp: "generator"}[type(node)]
        linear = any(_swarm_scale(gen.iter) for gen in node.generators)
        return AllocSite("comprehension", f"{label} comprehension",
                         line, col, linear, "")
    if isinstance(node, ast.Lambda):
        return AllocSite("closure", "lambda", line, col, False, "")
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return AllocSite("closure", f"nested def {node.name}",
                         line, col, False, "")
    if isinstance(node, ast.JoinedStr):
        if any(isinstance(v, ast.FormattedValue) for v in node.values):
            return AllocSite("format", "f-string", line, col, False, "")
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
            and isinstance(node.left, ast.Constant) \
            and isinstance(node.left.value, str):
        return AllocSite("format", "%-format", line, col, False, "")
    if isinstance(node, ast.Subscript) and isinstance(node.slice,
                                                      ast.Slice):
        return AllocSite("slice", "slicing copy", line, col,
                         _swarm_scale(node.value), "")
    if not isinstance(node, ast.Call):
        return None
    name = _call_name(node)
    if name is None:
        return None
    if name in _CONTAINER_CALLS:
        if not node.args and not node.keywords:
            return AllocSite("copy", f"fresh {name}()", line, col,
                             False, "")
        linear = any(_swarm_scale(a) for a in node.args)
        return AllocSite("copy", f"{name}(...) copy", line, col,
                         linear, "")
    if name == "partial":
        return AllocSite("closure", "functools.partial", line, col,
                         False, "")
    if name == "format" and isinstance(node.func, ast.Attribute):
        return AllocSite("format", ".format(...)", line, col, False, "")
    # CamelCase call: a type construction, resolved or not.
    if name[:1].isupper() and not name.isupper() and "_" not in name:
        return AllocSite("constructor", f"{name}(...) construction",
                         line, col, False, name)
    return None


def function_alloc_sites(info: FunctionInfo) -> List[AllocSite]:
    """This function's own allocation sites, in source order."""
    cold = _cold_nodes(info)
    sites: List[AllocSite] = []
    for node in iter_own_nodes(info):
        if id(node) in cold:
            continue
        site = _site_for(node)
        if site is not None:
            sites.append(site)
    sites.sort(key=lambda s: (s.line, s.col, s.kind))
    return sites


def _rule_of(site: AllocSite) -> str:
    if site.kind == "closure":
        return "SL303"
    if site.kind == "constructor" and site.type_name in POOLABLE_TYPES:
        return "SL304"
    if site.linear:
        return "SL302"
    return "SL301"


def _skip_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(part in _SKIP_SEGMENTS for part in parts)


def _message(rule: str, qualname: str, sites: List[AllocSite],
             region: HotRegion) -> str:
    shown = "; ".join(f"{s.desc} (line {s.line})"
                      for s in sites[:_MAX_SITES_IN_MESSAGE])
    more = len(sites) - _MAX_SITES_IN_MESSAGE
    if more > 0:
        shown += f"; +{more} more"
    extra = ""
    if rule == "SL304":
        pools = sorted({POOLABLE_TYPES[s.type_name] for s in sites
                        if s.type_name in POOLABLE_TYPES})
        extra = f"; use {'; '.join(pools)}"
    elif rule == "SL303":
        extra = "; hoist to setup (bound method / module function)"
    return (f"{_RULE_LABEL[rule]} in {qualname}: {shown}{extra}; "
            f"hot via: {render_chain(region.chain)}")


def run_simheat(index: ProjectIndex) -> List[Finding]:
    """The whole-program allocation audit: SL301–SL304 findings."""
    regions = infer_hot_regions(index)
    findings: List[Finding] = []
    for qualname in sorted(regions):
        region = regions[qualname]
        if region.freq != FREQ_EVENT:
            continue
        info = index.functions.get(qualname)
        if info is None or _skip_path(info.path):
            continue
        sites = function_alloc_sites(info)
        if not sites:
            continue
        by_rule: Dict[str, List[AllocSite]] = {}
        for site in sites:
            by_rule.setdefault(_rule_of(site), []).append(site)
        for rule in sorted(by_rule):
            group = by_rule[rule]
            findings.append(Finding(
                rule=rule, path=info.path, line=group[0].line,
                col=group[0].col + 1,
                message=_message(rule, qualname, group, region)))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
