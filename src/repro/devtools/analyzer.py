"""File/tree analysis driver for ``simlint``.

Runs the registered rules (:mod:`repro.devtools.rules`) over source
files and filters the findings through suppression comments:

* line suppression — trailing comment on the *reported* line::

      x = time.time()  # simlint: disable=SL002 -- benchmarking reason

* file suppression — a comment anywhere (conventionally the top)::

      # simlint: disable-file=SL003

``disable=all`` suppresses every rule.  An optional ``-- reason``
after the rule list documents *why*; the linter keeps it out of the
match but reviewers should insist on it.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.devtools.rules import RULES, FileContext, Finding

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$")


def _parse_suppressions(lines: Sequence[str]):
    """(file-wide rule ids, {line number -> rule ids}).

    ``{"all"}`` in a set suppresses every rule at that scope.
    """
    file_wide: Set[str] = set()
    by_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "simlint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        kind, spec = match.group(1), match.group(2)
        rules = {r.strip().upper() if r.strip().lower() != "all" else "all"
                 for r in spec.split(",") if r.strip()}
        if kind == "disable-file":
            file_wide |= rules
        else:
            by_line.setdefault(lineno, set()).update(rules)
    return file_wide, by_line


def _suppressed(finding: Finding, file_wide: Set[str],
                by_line: Dict[int, Set[str]]) -> bool:
    if "all" in file_wide or finding.rule in file_wide:
        return True
    line_rules = by_line.get(finding.line, ())
    return "all" in line_rules or finding.rule in line_rules


def lint_source(source: str, path: str = "<string>",
                enabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one source string; returns unsuppressed findings sorted by
    location.  A syntax error becomes a single ``SL000`` finding."""
    rule_ids = sorted(enabled) if enabled is not None else sorted(RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="SL000", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    file_wide, by_line = _parse_suppressions(ctx.lines)
    findings: Set[Finding] = set()
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        if rule is None:
            continue
        for finding in rule.check(ctx):
            if not _suppressed(finding, file_wide, by_line):
                findings.add(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(path: str,
              enabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, enabled=enabled)


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__",) and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    def excluded(candidate: str) -> bool:
        norm = candidate.replace(os.sep, "/")
        return any(part and part in norm for part in exclude)
    return sorted(c for c in dict.fromkeys(out) if not excluded(c))


def lint_paths(paths: Sequence[str],
               enabled: Optional[Iterable[str]] = None,
               exclude: Sequence[str] = ()) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths, exclude=exclude):
        findings.extend(lint_file(path, enabled=enabled))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [f.format() for f in findings]
    count = len(findings)
    lines.append(f"simlint: {count} finding{'s' if count != 1 else ''}")
    return "\n".join(lines)
