"""File/tree analysis driver for ``simlint``.

Runs the registered rules (:mod:`repro.devtools.rules`) over source
files and filters the findings through suppression comments:

* line suppression — trailing comment on the *reported* line::

      x = time.time()  # simlint: disable=SL002 -- benchmarking reason

* file suppression — a comment anywhere (conventionally the top)::

      # simlint: disable-file=SL003

``disable=all`` suppresses every rule.  An optional ``-- reason``
after the rule list documents *why*; the linter keeps it out of the
match but reviewers should insist on it.
"""

from __future__ import annotations

# simlint: disable-file=SL009 -- the module docstring above shows
# suppression-comment syntax examples, which the raw line scan cannot
# tell apart from live suppressions.

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.devtools.rules import RULES, FileContext, Finding

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$")


class SuppressionIndex:
    """The suppression comments of one file, with usage tracking.

    Every suppression that :meth:`filter` actually applies to a
    finding is marked *used*; :meth:`unused_findings` turns the
    leftovers into SL009 diagnostics — a stale ``disable=`` comment
    hides nothing today but will silently swallow the next real
    finding on that line.
    """

    def __init__(self, path: str, lines: Sequence[str]):
        self.path = path
        #: (lineno, kind, rule-or-"all"); kind is "line" or "file"
        self.declared: List[tuple] = []
        self._used: Set[tuple] = set()
        self.file_wide: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(lines, start=1):
            if "simlint" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            kind, spec = match.group(1), match.group(2)
            rules = {r.strip().upper()
                     if r.strip().lower() != "all" else "all"
                     for r in spec.split(",") if r.strip()}
            if kind == "disable-file":
                self.file_wide |= rules
                scope = "file"
            else:
                self.by_line.setdefault(lineno, set()).update(rules)
                scope = "line"
            for rule in rules:
                self.declared.append((lineno, scope, rule))

    def suppresses(self, finding: Finding) -> bool:
        """True when a comment hides ``finding`` (marks it used)."""
        hit = None
        if "all" in self.file_wide:
            hit = ("file", "all")
        elif finding.rule in self.file_wide:
            hit = ("file", finding.rule)
        else:
            line_rules = self.by_line.get(finding.line, ())
            if "all" in line_rules:
                hit = ("line", "all", finding.line)
            elif finding.rule in line_rules:
                hit = ("line", finding.rule, finding.line)
        if hit is None:
            return False
        self._used.add(hit)
        return True

    def filter(self, findings: Iterable[Finding]) -> List[Finding]:
        return [f for f in findings if not self.suppresses(f)]

    def unused_findings(self,
                        ignore: Iterable[str] = ()) -> List[Finding]:
        """SL009 diagnostics for suppressions that matched nothing.

        ``ignore`` names rules whose passes did not run this
        invocation (the deep-only ids on a plain lint): their
        suppressions cannot be proven stale, so they are skipped
        instead of flagged.
        """
        skip = set(ignore)
        out = []
        for lineno, scope, rule in self.declared:
            if rule in skip:
                continue
            key = ("file", rule) if scope == "file" \
                else ("line", rule, lineno)
            if key in self._used:
                continue
            kind = "disable-file" if scope == "file" else "disable"
            out.append(Finding(
                rule="SL009", path=self.path, line=lineno, col=1,
                message=(f"unused suppression `# simlint: "
                         f"{kind}={rule}` — no {rule} finding here; "
                         f"remove it before it hides a real one")))
        return out


def lint_source(source: str, path: str = "<string>",
                enabled: Optional[Iterable[str]] = None,
                suppressions: Optional[SuppressionIndex] = None,
                ) -> List[Finding]:
    """Lint one source string; returns unsuppressed findings sorted by
    location.  A syntax error becomes a single ``SL000`` finding.

    Passing a :class:`SuppressionIndex` lets the caller accumulate
    suppression *usage* across several passes (the deep driver filters
    its own findings through the same index before asking it for
    unused-suppression diagnostics).
    """
    raw = raw_findings(source, path, enabled)
    if raw and raw[0].rule == "SL000":
        return raw
    if suppressions is None:
        suppressions = SuppressionIndex(path, source.splitlines())
    return suppressions.filter(raw)


def raw_findings(source: str, path: str = "<string>",
                 enabled: Optional[Iterable[str]] = None
                 ) -> List[Finding]:
    """Per-file rule findings with *no* suppression filtering."""
    rule_ids = sorted(enabled) if enabled is not None else sorted(RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="SL000", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    findings: Set[Finding] = set()
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        if rule is None:
            continue
        findings.update(rule.check(ctx))
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(path: str,
              enabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, enabled=enabled)


def iter_python_files(paths: Sequence[str],
                      exclude: Sequence[str] = ()) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__",) and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    def excluded(candidate: str) -> bool:
        norm = candidate.replace(os.sep, "/")
        return any(part and part in norm for part in exclude)
    return sorted(c for c in dict.fromkeys(out) if not excluded(c))


def lint_paths(paths: Sequence[str],
               enabled: Optional[Iterable[str]] = None,
               exclude: Sequence[str] = ()) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths, exclude=exclude):
        findings.extend(lint_file(path, enabled=enabled))
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [f.format() for f in findings]
    count = len(findings)
    lines.append(f"simlint: {count} finding{'s' if count != 1 else ''}")
    return "\n".join(lines)
