"""Project-wide symbol table and call graph for ``simlint --deep``.

The per-file rules (:mod:`repro.devtools.rules`) see one module at a
time, so a hazard laundered through a helper call — ``delay =
jitter()`` where ``jitter`` lives two modules away and reads the wall
clock — is invisible to them.  The deep analyses
(:mod:`repro.devtools.taint`, :mod:`repro.devtools.protocol_spec`)
need to follow calls across modules, which requires:

* a **module map** — every linted file named by the dotted module the
  import system would give it (``src/repro/bt/peer.py`` →
  ``repro.bt.peer``);
* a **symbol table** — every function and method, keyed by qualified
  name (``repro.bt.peer.Peer.pump``);
* **call resolution** — for each call site, the qualified name of the
  target when it can be determined statically: direct names through
  the file's imports, ``self.method`` through the class hierarchy,
  ``Class.method``/``Class()`` constructors, and — because the event
  loop is the backbone of this codebase — the *callback* argument of
  ``schedule``/``schedule_at``/``call_now``, which is a call that
  merely happens later.

Resolution is deliberately conservative-but-useful: an attribute call
on an unknown receiver resolves only when exactly one class in the
project defines a method of that name (unique-method heuristic); an
ambiguous or out-of-project target stays unresolved and the deep
passes treat it as opaque.  Precision errs toward *missing* exotic
flows rather than inventing them — the per-file rules still cover the
direct hazards.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Path components that anchor dotted module names.  A file under any
#: of these roots is named relative to the root; anything else gets a
#: pseudo-module from its path (tests, examples, ad-hoc scripts).
_SOURCE_ROOTS = ("src",)


def module_name_for(path: str) -> str:
    """The dotted module name a file would import as.

    ``src/repro/bt/peer.py`` → ``repro.bt.peer``;
    ``tests/test_x.py`` → ``tests.test_x`` (a pseudo-module: good
    enough to key the symbol table, never actually imported).
    """
    norm = os.path.normpath(path).replace(os.sep, "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    for root in _SOURCE_ROOTS:
        if root in parts:
            parts = parts[parts.index(root) + 1:]
            break
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str                 # module.Class.method or module.func
    module: str
    path: str
    lineno: int
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    class_name: Optional[str] = None
    #: positional parameter names, ``self``/``cls`` already dropped
    params: Tuple[str, ...] = ()
    #: resolved call sites: (callee qualname, line, via_schedule)
    calls: List[Tuple[str, int, bool]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition: its methods and (textual) bases."""

    qualname: str                 # module.Class
    module: str
    bases: Tuple[str, ...] = ()   # dotted source text of base exprs
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


#: Methods whose *callback argument* we resolve as an extra call edge.
SCHEDULE_METHODS = {"schedule", "schedule_at", "call_now"}


def _common_root(paths: Sequence[str]) -> Optional[str]:
    """Deepest directory containing every file, or None."""
    dirs = {os.path.dirname(os.path.abspath(p)) for p in paths}
    if not dirs:
        return None
    try:
        return os.path.commonpath(sorted(dirs))
    except ValueError:  # pragma: no cover - mixed drives on Windows
        return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local name → fully dotted origin, resolving relative imports
    against ``module``'s package (``from . import x`` in
    ``repro.bt.peer`` binds ``x`` to ``repro.bt.x``)."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = module.split(".")[:-node.level]
                base = ".".join(anchor)
                if node.module:
                    base = f"{base}.{node.module}" if base \
                        else node.module
            for alias in node.names:
                origin = f"{base}.{alias.name}" if base else alias.name
                mapping[alias.asname or alias.name] = origin
    return mapping


def iter_own_nodes(info: "FunctionInfo"):
    """AST nodes belonging to ``info`` itself.

    For the module pseudo-function this is every top-level statement
    *except* function/class definitions (those are indexed on their
    own); for a real function it is the whole body, nested closures
    included (closures are not indexed separately, so their hazards
    are attributed to the enclosing definition).
    """
    if info.name == "<module>":
        for stmt in info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield from ast.walk(stmt)
    else:
        for stmt in info.node.body:
            for sub in ast.walk(stmt):
                yield sub


class ProjectIndex:
    """Symbol table + call graph over a set of parsed files."""

    def __init__(self) -> None:
        #: path → parsed module
        self.trees: Dict[str, ast.Module] = {}
        #: path → source text
        self.sources: Dict[str, str] = {}
        #: path → dotted module name
        self.modules: Dict[str, str] = {}
        #: dotted module name → path
        self.module_paths: Dict[str, str] = {}
        #: qualname → FunctionInfo (functions and methods)
        self.functions: Dict[str, FunctionInfo] = {}
        #: module.Class qualname → ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: module → import map
        self.imports: Dict[str, Dict[str, str]] = {}
        #: method name → qualnames of every definition (for the
        #: unique-method heuristic)
        self._methods_by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Sequence[Tuple[str, str]]) -> "ProjectIndex":
        """Index ``(path, source)`` pairs; unparsable files are skipped
        (the per-file pass reports their syntax error)."""
        index = cls()
        index._common_root = _common_root([path for path, _ in files])
        for path, source in files:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            index._add_file(path, source, tree)
        index._resolve_calls()
        return index

    def _module_name(self, path: str) -> str:
        """Dotted module name; files outside any source root are named
        relative to the file set's common directory, so a project
        linted by absolute path (e.g. a tmp dir in tests) still gets
        ``helpers`` rather than ``tmp.xyz.helpers`` and its intra-
        project imports resolve."""
        parts = [p for p in os.path.normpath(path)
                 .replace(os.sep, "/").split("/") if p not in ("", ".")]
        root = getattr(self, "_common_root", None)
        if root and not any(r in parts for r in _SOURCE_ROOTS):
            rel = os.path.relpath(path, root)
            if not rel.startswith(".."):
                return module_name_for(rel)
        return module_name_for(path)

    def _add_file(self, path: str, source: str,
                  tree: ast.Module) -> None:
        module = self._module_name(path)
        self.trees[path] = tree
        self.sources[path] = source
        self.modules[path] = module
        self.module_paths[module] = path
        self.imports[module] = _import_map(tree, module)
        # Module top-level code is modelled as a pseudo-function so
        # taint sources/sinks at module scope participate too.
        top = FunctionInfo(qualname=f"{module}.<module>", module=module,
                           path=path, lineno=1, node=tree)
        self.functions[top.qualname] = top
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, path, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, path, node)

    def _add_function(self, module: str, path: str, node,
                      class_name: Optional[str]) -> None:
        if class_name is None:
            qualname = f"{module}.{node.name}"
        else:
            qualname = f"{module}.{class_name}.{node.name}"
        args = list(node.args.posonlyargs) + list(node.args.args)
        params = tuple(a.arg for a in args)
        if class_name is not None and params \
                and not any(isinstance(d, ast.Name)
                            and d.id == "staticmethod"
                            for d in node.decorator_list):
            params = params[1:]
        info = FunctionInfo(qualname=qualname, module=module, path=path,
                            lineno=node.lineno, node=node,
                            class_name=class_name, params=params)
        self.functions[qualname] = info
        if class_name is not None:
            self.classes[f"{module}.{class_name}"].methods[node.name] = \
                info
            self._methods_by_name.setdefault(node.name, []).append(
                qualname)

    def _add_class(self, module: str, path: str,
                   node: ast.ClassDef) -> None:
        bases = tuple(b for b in (_dotted(base) for base in node.bases)
                      if b is not None)
        cls_qual = f"{module}.{node.name}"
        self.classes[cls_qual] = ClassInfo(qualname=cls_qual,
                                           module=module, bases=bases)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, path, item,
                                   class_name=node.name)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_class(self, module: str,
                      name: str) -> Optional[ClassInfo]:
        """A class named ``name`` as seen from ``module`` (local or
        imported)."""
        local = self.classes.get(f"{module}.{name}")
        if local is not None:
            return local
        origin = self.imports.get(module, {}).get(name.split(".")[0])
        if origin is None:
            return None
        if "." in name:
            origin = f"{origin}.{name.split('.', 1)[1]}"
        return self.classes.get(origin)

    def _mro(self, cls: ClassInfo,
             seen: Optional[Set[str]] = None) -> List[ClassInfo]:
        """The class plus its in-project bases, depth-first."""
        if seen is None:
            seen = set()
        if cls.qualname in seen:
            return []
        seen.add(cls.qualname)
        out = [cls]
        for base in cls.bases:
            resolved = self.resolve_class(cls.module, base)
            if resolved is not None:
                out.extend(self._mro(resolved, seen))
        return out

    def resolve_method(self, cls: ClassInfo,
                       name: str) -> Optional[FunctionInfo]:
        """Look ``name`` up through the in-project class hierarchy."""
        for klass in self._mro(cls):
            info = klass.methods.get(name)
            if info is not None:
                return info
        return None

    def _unique_method(self, name: str) -> Optional[str]:
        """The sole project-wide definition of method ``name``, if any.

        When several *unrelated* classes define the name the call stays
        unresolved; definitions that override each other within one
        hierarchy do not count as ambiguity (any of them keeps the
        chain going — we pick the first by qualname for determinism).
        """
        qualnames = self._methods_by_name.get(name)
        if not qualnames:
            return None
        if len(qualnames) == 1:
            return qualnames[0]
        owners = []
        for qualname in qualnames:
            cls_qual = qualname.rsplit(".", 1)[0]
            cls = self.classes.get(cls_qual)
            if cls is None:
                return None
            owners.append(cls)
        # All definitions within a single hierarchy?  Find roots.
        root_names: Set[str] = set()
        for cls in owners:
            chain = self._mro(cls)
            root_names.add(chain[-1].qualname)
        if len(root_names) == 1:
            return sorted(qualnames)[0]
        return None

    def resolve_callable(self, func: FunctionInfo,
                         node: ast.AST) -> Optional[str]:
        """Qualname of the function a callable expression denotes, as
        seen from inside ``func`` — used both for call targets and for
        ``schedule(...)`` callback arguments."""
        module = func.module
        imports = self.imports.get(module, {})
        if isinstance(node, ast.Name):
            name = node.id
            origin = imports.get(name)
            if origin is not None:
                if origin in self.functions:
                    return origin
                if origin in self.classes:
                    ctor = self.resolve_method(self.classes[origin],
                                               "__init__")
                    return ctor.qualname if ctor else None
                return None
            if f"{module}.{name}" in self.functions:
                return f"{module}.{name}"
            if f"{module}.{name}" in self.classes:
                ctor = self.resolve_method(
                    self.classes[f"{module}.{name}"], "__init__")
                return ctor.qualname if ctor else None
            return None
        if not isinstance(node, ast.Attribute):
            return None
        attr = node.attr
        base = node.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls") \
                and func.class_name is not None:
            cls = self.classes.get(f"{module}.{func.class_name}")
            if cls is not None:
                info = self.resolve_method(cls, attr)
                if info is not None:
                    return info.qualname
            return self._unique_method(attr)
        dotted = _dotted(node)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            origin = imports.get(head)
            if origin is not None and rest:
                full = f"{origin}.{rest}"
                if full in self.functions:
                    return full
                # module.Class(...) constructor
                cls_qual, _, meth = full.rpartition(".")
                if cls_qual in self.classes:
                    info = self.resolve_method(self.classes[cls_qual],
                                               meth)
                    if info is not None:
                        return info.qualname
                if full in self.classes:
                    ctor = self.resolve_method(self.classes[full],
                                               "__init__")
                    return ctor.qualname if ctor else None
                if origin in self.module_paths:
                    return None  # in-project module, unknown attr
            # Class.method referenced directly
            cls = self.resolve_class(module, head)
            if cls is not None and rest:
                info = self.resolve_method(cls, rest.split(".")[-1])
                if info is not None:
                    return info.qualname
        # Unknown receiver: unique-method heuristic.
        return self._unique_method(attr)

    def _resolve_calls(self) -> None:
        for info in list(self.functions.values()):
            for sub in iter_own_nodes(info):
                if not isinstance(sub, ast.Call):
                    continue
                target = self.resolve_callable(info, sub.func)
                if target is not None:
                    info.calls.append((target, sub.lineno, False))
                cb = self._callback_argument(sub)
                if cb is not None:
                    cb_target = self.resolve_callable(info, cb)
                    if cb_target is not None:
                        info.calls.append((cb_target, sub.lineno, True))

    @staticmethod
    def _callback_argument(node: ast.Call) -> Optional[ast.AST]:
        """The callback expression of a schedule-family call, if any."""
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in SCHEDULE_METHODS:
            return None
        cb_index = 0 if node.func.attr == "call_now" else 1
        if len(node.args) > cb_index:
            return node.args[cb_index]
        return None

    # ------------------------------------------------------------------
    # Introspection helpers used by the deep passes
    # ------------------------------------------------------------------
    def functions_in(self, path: str) -> List[FunctionInfo]:
        """Every function defined in ``path`` (module pseudo-function
        included), in definition order."""
        return sorted((f for f in self.functions.values()
                       if f.path == path), key=lambda f: f.lineno)

    def callers_of(self, qualname: str) -> List[Tuple[str, int]]:
        """(caller qualname, call line) pairs for every resolved call
        site targeting ``qualname``."""
        out = []
        for info in self.functions.values():
            for target, line, _ in info.calls:
                if target == qualname:
                    out.append((info.qualname, line))
        return sorted(out)
