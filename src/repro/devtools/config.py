"""``[tool.simlint]`` configuration.

Lives in ``pyproject.toml`` so rule rollout does not require CI edits::

    [tool.simlint]
    enable = ["SL001", "SL002"]   # default: every registered rule
    disable = ["SL004"]
    paths = ["src"]               # default lint targets
    exclude = ["experiments/legacy"]

CLI flags override the file; ``--no-config`` ignores it entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - legacy interpreters
    _toml = None

from repro.devtools.rules import all_rule_ids


@dataclass
class SimlintConfig:
    """Resolved configuration for one lint run."""

    enable: List[str] = field(default_factory=all_rule_ids)
    disable: List[str] = field(default_factory=list)
    paths: List[str] = field(default_factory=lambda: ["src"])
    exclude: List[str] = field(default_factory=list)
    source: Optional[str] = None  # pyproject path, for diagnostics

    def enabled_rules(self) -> List[str]:
        """Effective rule ids: ``enable`` minus ``disable``."""
        disabled = {r.upper() for r in self.disable}
        return [r for r in (rid.upper() for rid in self.enable)
                if r not in disabled]


def find_pyproject(start_dir: str = ".") -> Optional[str]:
    """Nearest ``pyproject.toml`` at or above ``start_dir``."""
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def load_config(start_dir: str = ".") -> SimlintConfig:
    """The ``[tool.simlint]`` block of the nearest pyproject.toml,
    defaults when absent (or when ``tomllib`` is unavailable)."""
    pyproject = find_pyproject(start_dir)
    if pyproject is None or _toml is None:
        return SimlintConfig()
    with open(pyproject, "rb") as handle:
        try:
            data = _toml.load(handle)
        except Exception:  # malformed file: fall back to defaults
            return SimlintConfig(source=pyproject)
    block = data.get("tool", {}).get("simlint", {})
    config = SimlintConfig(source=pyproject)
    if "enable" in block:
        config.enable = [str(r) for r in block["enable"]]
    if "disable" in block:
        config.disable = [str(r) for r in block["disable"]]
    if "paths" in block:
        config.paths = [str(p) for p in block["paths"]]
    if "exclude" in block:
        config.exclude = [str(p) for p in block["exclude"]]
    return config
