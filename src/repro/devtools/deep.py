"""Whole-program driver behind ``repro lint --deep``.

Composes the analysis passes over one file set:

* per-file rule findings (SL0xx, via :mod:`repro.devtools.rules`);
* protocol state-machine conformance (SL110-series, file-local, via
  :func:`repro.devtools.protocol_spec.check_file`);
* interprocedural nondeterminism taint (SL101–SL104, whole-program,
  via :mod:`repro.devtools.taint`);
* same-instant commutativity races (SL201–SL203, whole-program, via
  :mod:`repro.devtools.races` over the effect summaries of
  :mod:`repro.devtools.effects`);
* hot-path allocation audit (SL301–SL304, whole-program, via
  :mod:`repro.devtools.allocsum` over the hot regions of
  :mod:`repro.devtools.hotpath`).

Caching model — honest about scope:

* rule and protocol findings are **file-local**, so they are cached
  per file under the file's content sha256;
* taint, race and simheat findings depend on the entire call graph,
  so each is cached under a whole-project fingerprint (the hash of
  every file's hash); touching *any* file re-runs those passes
  globally (the :class:`~repro.devtools.callgraph.ProjectIndex` is
  built once and shared when any miss).

Suppression comments are re-read every run (they live in the files,
so an edited comment changes the hash anyway) and usage is tracked
across every pass before unused-suppression (SL009) diagnostics are
emitted.  ``stats["timings"]`` carries per-pass wall time so the
``lint_deep`` bench leg can attribute cost (cold vs cached) to each
pass.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.allocsum import run_simheat
from repro.devtools.analyzer import (SuppressionIndex, iter_python_files,
                                     raw_findings)
from repro.devtools.callgraph import ProjectIndex
from repro.devtools.output import severity_of
from repro.devtools.protocol_spec import check_file as check_protocol_file
from repro.devtools.races import run_races
from repro.devtools.rules import Finding
from repro.devtools.taint import run_taint

CACHE_VERSION = 3
DEFAULT_CACHE = ".simlint-cache.json"

#: Deep-only rule ids (metadata-registered in rules.py; produced here).
DEEP_RULES = ("SL101", "SL102", "SL103", "SL104",
              "SL110", "SL111", "SL112",
              "SL201", "SL202", "SL203",
              "SL301", "SL302", "SL303", "SL304")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode(findings: Sequence[Finding]) -> List[List[object]]:
    return [[f.rule, f.path, f.line, f.col, f.message] for f in findings]


def _decode(rows: Iterable[Sequence[object]]) -> List[Finding]:
    return [Finding(rule=str(r[0]), path=str(r[1]), line=int(r[2]),
                    col=int(r[3]), message=str(r[4])) for r in rows]


@dataclass
class DeepReport:
    """Outcome of one deep run, pre-baseline."""

    findings: List[Finding] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if severity_of(f) == "error"]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if severity_of(f) == "warning"]


class _Cache:
    """JSON-backed findings cache; drops itself on any meta mismatch."""

    def __init__(self, path: Optional[str], enabled_key: List[str]):
        self.path = path
        self.meta = {"version": CACHE_VERSION, "enabled": enabled_key}
        self.files: Dict[str, Dict[str, object]] = {}
        self.taint: Dict[str, object] = {}
        self.races: Dict[str, object] = {}
        self.simheat: Dict[str, object] = {}
        if path is None or not os.path.isfile(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("meta") != self.meta:
            return
        files = data.get("files")
        taint = data.get("taint")
        races = data.get("races")
        simheat = data.get("simheat")
        if isinstance(files, dict):
            self.files = files
        if isinstance(taint, dict):
            self.taint = taint
        if isinstance(races, dict):
            self.races = races
        if isinstance(simheat, dict):
            self.simheat = simheat

    def file_entry(self, path: str, digest: str
                   ) -> Optional[Dict[str, object]]:
        entry = self.files.get(path)
        if isinstance(entry, dict) and entry.get("hash") == digest:
            return entry
        return None

    def save(self, files: Dict[str, Dict[str, object]],
             taint: Dict[str, object],
             races: Dict[str, object],
             simheat: Dict[str, object]) -> None:
        if self.path is None:
            return
        payload = {"meta": self.meta, "files": files, "taint": taint,
                   "races": races, "simheat": simheat}
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
        except OSError:
            pass  # caching is best-effort; the analysis already ran


def _rule_filter(findings: Iterable[Finding],
                 enabled: Optional[Iterable[str]]) -> List[Finding]:
    if enabled is None:
        return list(findings)
    keep = set(enabled) | {"SL000"}
    return [f for f in findings if f.rule in keep]


def _now() -> float:
    """Wall clock for per-pass timing: analyzer tooling, not sim code."""
    return time.perf_counter()  # simlint: disable=SL002 -- lint-pass timing runs on the host clock, outside any simulation


def run_deep(paths: Sequence[str],
             enabled: Optional[Iterable[str]] = None,
             exclude: Sequence[str] = (),
             cache_path: Optional[str] = None,
             report_unused_suppressions: bool = True) -> DeepReport:
    """Run all passes over the ``.py`` files beneath ``paths``."""
    enabled_list = sorted(enabled) if enabled is not None else None
    enabled_key = enabled_list if enabled_list is not None else ["*"]
    cache = _Cache(cache_path, enabled_key)

    files = iter_python_files(paths, exclude=exclude)
    sources: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            sources[path] = handle.read()
        digests[path] = _sha256(sources[path])

    timings: Dict[str, float] = {}
    new_file_cache: Dict[str, Dict[str, object]] = {}
    per_file: Dict[str, List[Finding]] = {}
    reused = 0
    t0 = _now()
    for path in files:
        entry = cache.file_entry(path, digests[path])
        if entry is not None:
            per_file[path] = _decode(entry.get("findings", []))
            new_file_cache[path] = entry
            reused += 1
            continue
        findings = raw_findings(sources[path], path=path,
                                enabled=enabled_list)
        if not (findings and findings[0].rule == "SL000"):
            try:
                tree = ast.parse(sources[path], filename=path)
            except SyntaxError:
                tree = None
            if tree is not None:
                findings = findings + _rule_filter(
                    check_protocol_file(path, tree), enabled_list)
        per_file[path] = findings
        new_file_cache[path] = {"hash": digests[path],
                                "findings": _encode(findings)}
    timings["files_s"] = _now() - t0

    # Whole-project fingerprint: any content change re-runs the
    # whole-program passes (taint, races, simheat); one shared index
    # serves all of them when any miss.
    project_hash = _sha256(json.dumps(
        [[p.replace(os.sep, "/"), digests[p]] for p in files]))
    taint_reused = cache.taint.get("fingerprint") == project_hash
    races_reused = cache.races.get("fingerprint") == project_hash
    simheat_reused = cache.simheat.get("fingerprint") == project_hash
    index = None
    if not (taint_reused and races_reused and simheat_reused):
        t0 = _now()
        clean = [(p, sources[p]) for p in files
                 if not (per_file[p] and per_file[p][0].rule == "SL000")]
        index = ProjectIndex.build(clean)
        timings["index_s"] = _now() - t0
    t0 = _now()
    if taint_reused:
        taint_findings = _decode(cache.taint.get("findings", []))
    else:
        taint_findings = _rule_filter(run_taint(index), enabled_list)
    timings["taint_s"] = _now() - t0
    t0 = _now()
    if races_reused:
        races_findings = _decode(cache.races.get("findings", []))
    else:
        races_findings = _rule_filter(run_races(index), enabled_list)
    timings["races_s"] = _now() - t0
    t0 = _now()
    if simheat_reused:
        simheat_findings = _decode(cache.simheat.get("findings", []))
    else:
        simheat_findings = _rule_filter(run_simheat(index), enabled_list)
    timings["simheat_s"] = _now() - t0
    cache.save(new_file_cache,
               {"fingerprint": project_hash,
                "findings": _encode(taint_findings)},
               {"fingerprint": project_hash,
                "findings": _encode(races_findings)},
               {"fingerprint": project_hash,
                "findings": _encode(simheat_findings)})

    # Suppression filtering + usage accounting across every pass.
    all_findings: List[Finding] = []
    taint_by_path: Dict[str, List[Finding]] = {}
    for finding in taint_findings + races_findings + simheat_findings:
        taint_by_path.setdefault(finding.path, []).append(finding)
    for path in files:
        idx = SuppressionIndex(path, sources[path].splitlines())
        kept = idx.filter(per_file[path]
                          + taint_by_path.get(path, []))
        all_findings.extend(kept)
        broken = kept and kept[0].rule == "SL000"
        if report_unused_suppressions and not broken and (
                enabled_list is None or "SL009" in enabled_list):
            all_findings.extend(idx.filter(idx.unused_findings()))

    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report = DeepReport(findings=all_findings)
    report.stats = {
        "files": len(files),
        "files_reused": reused,
        "files_analyzed": len(files) - reused,
        "taint_reused": taint_reused,
        "races_reused": races_reused,
        "simheat_reused": simheat_reused,
        "timings": {key: round(value, 6)
                    for key, value in sorted(timings.items())},
        "cache": cache_path,
    }
    return report
