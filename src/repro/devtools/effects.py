"""Interprocedural state-effect inference for ``simrace``.

Where the taint pass (:mod:`repro.devtools.taint`) asks *"where does
this value come from?"*, the effect pass asks *"what state does this
handler touch?"* — the prerequisite for deciding whether two event
handlers **commute** when the engine fires them at the same instant
(:mod:`repro.devtools.races`).

Every function in the project gets an **effect summary**: the set of
:class:`Effect` atoms it may perform, directly or through any resolved
call, each carrying a source→field trace for diagnostics.  An effect
is a ``(kind, owner, field)`` triple:

**kind** — how the state is touched:

* ``read``  — attribute load;
* ``write`` — attribute store, or a call of a known mutator method
  (``append``/``add``/``update``/...) on the attribute;
* ``accum`` — augmented assignment with a commutative operator
  (``+=``/``-=``/``*=``): two accumulations of the same field commute,
  so accum/accum pairs are *not* conflicts;
* ``rng``   — a draw from the simulation ``rng`` (consumes shared
  generator state: reordering draws changes every later value).

**owner** — whose state, as far as a purely static analysis can tell:

* ``self``   — reached through the method's own ``self``; two
  *different* instances of the class have disjoint ``self`` state, so
  self/self pairs across handlers are never reported (the analysis
  cannot prove both handlers are bound to the same instance);
* ``other``  — reached through a parameter, local, or a non-``self``
  receiver: identity unknown, so it *may* alias anything of matching
  shape;
* ``shared`` — process-of-the-simulation singletons: ``metrics``
  paths and the ``rng`` stream.

**field** — ``Class.attr[.sub]`` for ``self``-rooted accesses (the
class supplies the namespace), the bare dotted path for unknown
receivers, ``metrics.attr`` for metrics state, ``rng`` for the
generator.  Two fields *match* when they are equal, or when their
terminal attribute matches and at least one side's identity is
unknown (``other``-owned or unqualified) — conservative aliasing in
the same spirit as the call graph's unique-method heuristic.

Summaries propagate over the call graph with a receiver mapping: a
``self.helper()`` call keeps the callee's ``self`` effects as
``self``; a call on any other receiver demotes them to ``other``; a
constructor call drops them entirely (a freshly built object is
unreachable from any co-scheduled handler until published).  The
fixpoint mirrors ``taint.py``'s summary iteration and is bounded the
same way.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from .callgraph import FunctionInfo, ProjectIndex, iter_own_nodes
from .rules import RNG_METHODS, dotted_name

#: Methods that mutate their receiver in place.  Calling one of these
#: on an attribute path is a write to that path.
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
}

_MAX_CHAIN = 8         # steps kept per effect trace
_MAX_EFFECTS = 64      # distinct effects kept per summary
_MAX_ROUNDS = 25       # fixpoint iteration cap (call-graph diameter)

#: Kinds that change state (participate in conflicts as writers).
WRITE_KINDS = frozenset({"write", "accum"})


class Effect(NamedTuple):
    """One way a function may touch state (see module docstring)."""

    kind: str    # "read" | "write" | "accum" | "rng"
    owner: str   # "self" | "other" | "shared"
    field: str   # "Class.attr", bare path, "metrics.attr", or "rng"

    @property
    def terminal(self) -> str:
        return self.field.rsplit(".", 1)[-1]


class EffectStep(NamedTuple):
    text: str
    path: str
    line: int


class TracedEffect(NamedTuple):
    """An effect plus the call chain that reaches it."""

    effect: Effect
    chain: Tuple[EffectStep, ...]


class EffectCall(NamedTuple):
    """A resolved call site and how its receiver maps ``self``."""

    callee: str
    line: int
    receiver: str   # "self" | "other" | "plain" | "ctor"


class FunctionEffects(NamedTuple):
    """Per-function extraction result."""

    info: FunctionInfo
    direct: Tuple[TracedEffect, ...]
    calls: Tuple[EffectCall, ...]


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def fields_match(a: Effect, b: Effect) -> bool:
    """Could ``a`` and ``b`` denote the same storage location?

    Exact field equality always matches.  Terminal-attribute equality
    matches only when at least one side's object identity is unknown
    (``other``-owned, or an unqualified single-segment field) — two
    fully-qualified ``self`` fields of different classes are distinct
    namespaces and never alias.
    """
    if a.field == b.field:
        return True
    if a.terminal != b.terminal:
        return False
    identity_unknown = (a.owner == "other" or b.owner == "other"
                        or "." not in a.field or "." not in b.field)
    return identity_unknown


# ----------------------------------------------------------------------
# Per-function extraction
# ----------------------------------------------------------------------
class _EffectExtractor:
    """Collect the direct effects and resolved calls of one function."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo):
        self.index = index
        self.info = info
        self.effects: Dict[Effect, TracedEffect] = {}
        self.calls: List[EffectCall] = []
        cls = None
        if info.class_name is not None:
            cls = index.classes.get(f"{info.module}.{info.class_name}")
        #: method names of the enclosing class (and in-project bases):
        #: ``self.method`` loads are lookups, not state reads.
        self.own_methods: Set[str] = set()
        if cls is not None:
            for klass in index._mro(cls):
                self.own_methods.update(klass.methods)

    def run(self) -> FunctionEffects:
        call_funcs = set()
        own = list(iter_own_nodes(self.info))
        for node in own:
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                self._visit_call(node)
        for node in own:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    self._visit_store(target, node.lineno, kind="write")
            elif isinstance(node, ast.AugAssign):
                commutes = isinstance(node.op,
                                      (ast.Add, ast.Sub, ast.Mult))
                self._visit_store(node.target, node.lineno,
                                  kind="accum" if commutes else "write")
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load) \
                    and id(node) not in call_funcs:
                self._visit_load(node)
        return FunctionEffects(info=self.info,
                               direct=tuple(self.effects.values()),
                               calls=tuple(self.calls))

    # -- classification helpers -----------------------------------------
    def _classify(self, dotted: str) -> Optional[Effect]:
        """Owner/field for an attribute path, or None to ignore."""
        parts = dotted.split(".")
        root, rest = parts[0], parts[1:]
        if not rest:
            return None  # bare name: local variable, not object state
        if "metrics" in parts[:-1]:
            return Effect("read", "shared", f"metrics.{parts[-1]}")
        if root in ("self", "cls"):
            if len(rest) == 1 and rest[0] in self.own_methods:
                return None  # method lookup, not state
            cls = self.info.class_name or "?"
            return Effect("read", "self", ".".join([cls] + rest))
        return Effect("read", "other", ".".join(rest))

    def _add(self, effect: Effect, line: int, verb: str) -> None:
        if effect in self.effects:
            return
        step = EffectStep(f"{verb} `{effect.field}`",
                          self.info.path, line)
        self.effects[effect] = TracedEffect(effect, (step,))

    # -- visitors --------------------------------------------------------
    def _visit_store(self, target: ast.AST, line: int,
                     kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_store(elt, line, kind)
            return
        if isinstance(target, ast.Starred):
            self._visit_store(target.value, line, kind)
            return
        if isinstance(target, ast.Subscript):
            # `self.have[i] = x` writes the container `self.have`.
            target = target.value
        dotted = dotted_name(target)
        if dotted is None:
            return
        base = self._classify(dotted)
        if base is None:
            return
        verb = "accumulates into" if kind == "accum" else "writes"
        self._add(Effect(kind, base.owner, base.field), line, verb)

    def _visit_load(self, node: ast.Attribute) -> None:
        dotted = dotted_name(node)
        if dotted is None:
            return
        effect = self._classify(dotted)
        if effect is not None:
            self._add(effect, node.lineno, "reads")

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        dotted = dotted_name(func)
        if dotted is not None and "." in dotted:
            parts = dotted.split(".")
            # rng draw: consumes the shared generator stream.
            if "rng" in parts[:-1] and parts[-1] in RNG_METHODS:
                self._add(Effect("rng", "shared", "rng"), node.lineno,
                          "draws from")
                return
            # Mutator method on an attribute path: write to the path.
            if parts[-1] in MUTATOR_METHODS and len(parts) > 2:
                receiver = ".".join(parts[:-1])
                base = self._classify(receiver)
                if base is not None:
                    self._add(Effect("write", base.owner, base.field),
                              node.lineno,
                              f"mutates (`.{parts[-1]}()`)")
                # fall through: the mutator may also resolve in-project
        target = self.index.resolve_callable(self.info, func)
        if target is None or target not in self.index.functions:
            return
        if target.endswith(".__init__") and dotted is not None \
                and dotted.split(".")[-1][:1].isupper():
            receiver = "ctor"
        elif isinstance(func, ast.Attribute) and dotted is not None \
                and dotted.split(".")[0] in ("self", "cls") \
                and len(dotted.split(".")) == 2:
            receiver = "self"
        elif isinstance(func, ast.Attribute):
            receiver = "other"
        else:
            receiver = "plain"
        self.calls.append(EffectCall(callee=target, line=node.lineno,
                                     receiver=receiver))


# ----------------------------------------------------------------------
# Whole-program fixpoint
# ----------------------------------------------------------------------
def _map_effect(te: TracedEffect, receiver: str
                ) -> Optional[TracedEffect]:
    """A callee effect as seen by the caller through ``receiver``."""
    effect = te.effect
    if effect.owner != "self":
        return te
    if receiver == "self":
        return te
    if receiver == "other":
        return TracedEffect(Effect(effect.kind, "other", effect.field),
                            te.chain)
    # "ctor": the fresh object is unpublished; "plain": a module-level
    # function has no self (defensive — such effects cannot exist).
    return None


#: Summary ranking under the size cap: state-changing effects and rng
#: draws must survive before reads (reads only matter opposite a
#: write, which the writer's summary still carries).
_KIND_PRIORITY = {"write": 0, "accum": 1, "rng": 2, "read": 3}


class EffectAnalysis:
    """Effect-summary propagation over the call graph."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.fes: Dict[str, FunctionEffects] = {}
        for qualname, info in index.functions.items():
            self.fes[qualname] = _EffectExtractor(index, info).run()
        self.summaries: Dict[str, Tuple[TracedEffect, ...]] = {
            q: () for q in self.fes}

    def _summarize(self, fe: FunctionEffects
                   ) -> Tuple[TracedEffect, ...]:
        merged: Dict[Effect, TracedEffect] = {}

        def add(te: TracedEffect) -> None:
            old = merged.get(te.effect)
            if old is None or len(te.chain) < len(old.chain):
                merged[te.effect] = te

        for te in fe.direct:
            add(te)
        for call in fe.calls:
            callee_summary = self.summaries.get(call.callee, ())
            if not callee_summary:
                continue
            step = EffectStep(f"via {_short(call.callee)}()",
                              fe.info.path, call.line)
            for te in callee_summary:
                if len(te.chain) >= _MAX_CHAIN:
                    continue
                mapped = _map_effect(te, call.receiver)
                if mapped is not None:
                    add(TracedEffect(mapped.effect,
                                     (step,) + mapped.chain))
        ranked = sorted(
            merged.values(),
            key=lambda te: (_KIND_PRIORITY.get(te.effect.kind, 9),
                            te.effect.owner, te.effect.field))
        return tuple(ranked[:_MAX_EFFECTS])

    def fixpoint(self) -> Dict[str, Tuple[TracedEffect, ...]]:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname, fe in self.fes.items():
                new = self._summarize(fe)
                if new != self.summaries[qualname]:
                    self.summaries[qualname] = new
                    changed = True
            if not changed:
                break
        return self.summaries


def infer_effects(index: ProjectIndex
                  ) -> Dict[str, Tuple[TracedEffect, ...]]:
    """Effect summary for every function in an indexed project."""
    return EffectAnalysis(index).fixpoint()


def render_chain(chain: Tuple[EffectStep, ...]) -> str:
    return " -> ".join(f"{step.text} ({step.path}:{step.line})"
                       for step in chain)
