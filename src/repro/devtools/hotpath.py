"""Hot-region inference for the simheat allocation audit (SL3xx).

Every function in the project is assigned a **static frequency
class** — how often it runs relative to the simulation's event loop —
by seeding the call graph (:mod:`repro.devtools.callgraph`) from the
same schedule-site population :mod:`repro.devtools.races` buckets and
propagating along call and schedule-callback edges:

* ``event`` — runs once per simulation event (or a constant multiple
  of it).  Seeds: ``call_now(...)`` / ``schedule(0, ...)`` sites,
  schedule sites whose delay is a *computed* expression (transfer
  completions, data-driven backoff — those fire as often as the
  events that schedule them), and protocol message handlers
  (``on_*`` / ``receive_*`` / ``handle_*`` methods, the entry points
  control-plane delivery invokes per message).
* ``round`` — runs once per timer round.  Seeds:
  :class:`~repro.sim.events.PeriodicTask` callbacks and schedule
  sites whose delay is a literal or an ALL-CAPS constant (rechoke
  intervals, retry backoff bases).
* ``setup`` — everything else: module import, constructors and
  wiring reached only from them.  Setup regions are never reported.

Frequency is monotone along calls: a callee inherits the fastest
class of any caller (a helper called from one handler and one
constructor is ``event``).  A ``round`` function *upgrades* to
``event`` when an event-class region reaches it, because scheduling
*from* a hot region makes the callback hot regardless of its delay:
a 30 s timeout armed per piece upload still allocates one timer per
event.

Each classified function carries the shortest seed→function **chain**
(mirroring the taint pass's source→sink traces) so SL3xx diagnostics
can show *why* the analysis considers a region hot.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Tuple

from .callgraph import (FunctionInfo, ProjectIndex, SCHEDULE_METHODS,
                        iter_own_nodes)
from .rules import dotted_name

#: Frequency classes, fastest first.
FREQ_EVENT = "event"
FREQ_ROUND = "round"
FREQ_SETUP = "setup"

_RANK = {FREQ_EVENT: 2, FREQ_ROUND: 1, FREQ_SETUP: 0}

#: Method-name prefixes that mark protocol message handlers (the
#: receive-side per-event entry points control delivery invokes).
HANDLER_PREFIXES = ("on_", "_on_", "receive_", "handle_")

#: ``on_*`` names that are *lifecycle* hooks, not message handlers:
#: they fire per join/leave/round, so they must not seed the event
#: class (propagation still upgrades them if a hot region calls in).
LIFECYCLE_HANDLERS = frozenset({
    "on_join", "on_leave", "on_rescan", "on_whitewash", "on_rebranded",
    "on_download_complete", "on_neighbor_connected",
    "on_neighbor_disconnected", "on_peer_finished",
})

#: Cap on chain length carried in diagnostics.
_MAX_CHAIN = 10


class HotStep(NamedTuple):
    """One link of a seed→function chain."""

    text: str
    path: str
    line: int


class HotRegion(NamedTuple):
    """A function with its inferred frequency class and provenance."""

    qualname: str
    freq: str
    chain: Tuple[HotStep, ...]


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def _is_const_delay(node: ast.AST) -> bool:
    """Literal number, ALL-CAPS constant, or attribute chain ending in
    one (``self.state.key_timeout_s`` counts: config-pinned, not
    event-data-driven)."""
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_const_delay(node.operand)
    dotted = dotted_name(node)
    return dotted is not None


class _Seed(NamedTuple):
    qualname: str
    freq: str
    step: HotStep


def _schedule_seeds(index: ProjectIndex) -> List[_Seed]:
    """Seeds from schedule/call_now/PeriodicTask sites."""
    seeds: List[_Seed] = []
    for info in index.functions.values():
        for node in iter_own_nodes(info):
            if not isinstance(node, ast.Call):
                continue
            seed = _schedule_seed(index, info, node) \
                or _periodic_seed(index, info, node)
            if seed is not None:
                seeds.append(seed)
    return seeds


def _schedule_seed(index: ProjectIndex, info: FunctionInfo,
                   node: ast.Call) -> Optional[_Seed]:
    func = node.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in SCHEDULE_METHODS:
        return None
    method = func.attr
    cb_index = 0 if method == "call_now" else 1
    if len(node.args) <= cb_index:
        return None
    handler = index.resolve_callable(info, node.args[cb_index])
    if handler is None:
        return None
    if method == "call_now":
        freq, how = FREQ_EVENT, "scheduled same-instant (call_now)"
    elif method == "schedule_at":
        # Absolute deadlines are one-shot setup unless the scheduling
        # region itself is hot (propagation covers that case).
        freq, how = FREQ_SETUP, "scheduled at an absolute time"
    else:
        delay = node.args[0]
        if isinstance(delay, ast.Constant) and delay.value == 0:
            freq, how = FREQ_EVENT, "scheduled same-instant (delay 0)"
        elif _is_const_delay(delay):
            freq, how = FREQ_ROUND, "timer with a constant delay"
        else:
            freq, how = FREQ_EVENT, "scheduled with an event-driven delay"
    if freq == FREQ_SETUP:
        return None
    step = HotStep(f"{_short(handler)} {how} in {_short(info.qualname)}",
                   info.path, node.lineno)
    return _Seed(handler, freq, step)


def _periodic_seed(index: ProjectIndex, info: FunctionInfo,
                   node: ast.Call) -> Optional[_Seed]:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if name != "PeriodicTask" or len(node.args) < 3:
        return None
    handler = index.resolve_callable(info, node.args[2])
    if handler is None:
        return None
    step = HotStep(f"{_short(handler)} is a PeriodicTask callback "
                   f"in {_short(info.qualname)}", info.path, node.lineno)
    return _Seed(handler, FREQ_ROUND, step)


def _handler_seeds(index: ProjectIndex) -> List[_Seed]:
    """Protocol message handlers: per-event by convention."""
    seeds: List[_Seed] = []
    for qualname, info in index.functions.items():
        if info.class_name is None:
            continue
        if not any(info.name.startswith(p) for p in HANDLER_PREFIXES):
            continue
        if info.name in LIFECYCLE_HANDLERS:
            continue
        step = HotStep(f"{_short(qualname)} is a protocol message "
                       f"handler", info.path, info.lineno)
        seeds.append(_Seed(qualname, FREQ_EVENT, step))
    return seeds


def _override_map(index: ProjectIndex) -> Dict[str, List[str]]:
    """Base-method qualname → subclass overrides of it.

    A hot call site ``self.next_upload()`` resolves statically to the
    *base* definition, but at runtime it dispatches to whichever
    override the object carries — so hotness must flow from a method
    to every override beneath it in the project's class hierarchy.
    """
    out: Dict[str, List[str]] = {}
    for cls in index.classes.values():
        for base in index._mro(cls)[1:]:
            for name, info in cls.methods.items():
                base_info = base.methods.get(name)
                if base_info is not None \
                        and base_info.qualname != info.qualname:
                    out.setdefault(base_info.qualname,
                                   []).append(info.qualname)
    return {key: sorted(set(value)) for key, value in out.items()}


def infer_hot_regions(index: ProjectIndex) -> Dict[str, HotRegion]:
    """Frequency class + provenance chain for every non-setup function.

    Returns only ``event`` and ``round`` regions; anything absent from
    the mapping is setup-frequency and outside the audit's scope.
    """
    seeds = _schedule_seeds(index) + _handler_seeds(index)
    # Deterministic worklist: process event seeds before round seeds
    # and sort ties so chains are stable across runs.
    seeds.sort(key=lambda s: (-_RANK[s.freq], s.qualname,
                              s.step.path, s.step.line))
    regions: Dict[str, HotRegion] = {}
    work: List[str] = []

    def assign(qualname: str, freq: str,
               chain: Tuple[HotStep, ...]) -> None:
        have = regions.get(qualname)
        if have is not None and _RANK[have.freq] >= _RANK[freq]:
            return
        regions[qualname] = HotRegion(qualname, freq, chain)
        work.append(qualname)

    overrides = _override_map(index)
    for seed in seeds:
        if seed.qualname in index.functions:
            assign(seed.qualname, seed.freq, (seed.step,))
    while work:
        qualname = work.pop(0)
        region = regions[qualname]
        info = index.functions.get(qualname)
        if info is None or len(region.chain) >= _MAX_CHAIN:
            continue
        for callee, line, _via_schedule in sorted(info.calls):
            if callee not in index.functions:
                continue
            step = HotStep(f"{_short(qualname)} calls {_short(callee)}",
                           info.path, line)
            assign(callee, region.freq, region.chain + (step,))
        # Virtual dispatch: a hot base method heats every override.
        for override in overrides.get(qualname, ()):
            target = index.functions.get(override)
            if target is None:
                continue
            step = HotStep(f"{_short(override)} overrides "
                           f"{_short(qualname)} (virtual dispatch)",
                           target.path, target.lineno)
            assign(override, region.freq, region.chain + (step,))
    return regions


def render_chain(chain: Tuple[HotStep, ...]) -> str:
    """Human-readable seed→function provenance, taint-trace style."""
    return " -> ".join(f"{step.text} ({step.path}:{step.line})"
                       for step in chain)
