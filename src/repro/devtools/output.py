"""Report rendering and baseline handling for ``repro lint``.

Three renderers over the same finding list:

* ``text`` — the classic one-line-per-finding console format;
* ``json`` — a stable machine-readable envelope for tooling;
* ``sarif`` — minimal SARIF 2.1.0 for code-scanning upload.

Plus two CI affordances:

* GitHub workflow annotations (``::error file=...``) emitted when the
  ``GITHUB_ACTIONS`` environment variable is set, so findings land
  inline on PR diffs;
* a baseline file of finding fingerprints (``RULE:path:line``) for
  staged adoption — baselined findings are reported as suppressed
  counts, not failures.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.devtools.rules import RULES, Finding

#: Rules that warn rather than fail the run (see ``--strict-suppressions``).
WARNING_RULES = frozenset({"SL009", "SL013"})

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def severity_of(finding: Finding) -> str:
    return "warning" if finding.rule in WARNING_RULES else "error"


def fingerprint(finding: Finding) -> str:
    """Stable identity used by baseline files: ``RULE:path:line``.

    Column and message are deliberately excluded so reworded
    diagnostics and cosmetic shifts don't churn the baseline.
    """
    path = finding.path.replace(os.sep, "/")
    return f"{finding.rule}:{path}:{finding.line}"


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file; returns the set of fingerprints.

    Accepts ``{"fingerprints": [...]}`` (the written format) and, for
    hand-edited files, a bare JSON list.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        entries = data.get("fingerprints", [])
    else:
        entries = data
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must be a list of fingerprints")
    return {str(e) for e in entries}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload = {
        "format": "simlint-baseline",
        "version": 1,
        "fingerprints": sorted({fingerprint(f) for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(findings: Sequence[Finding], baseline: Set[str],
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (kept, number suppressed by the baseline)."""
    kept = [f for f in findings if fingerprint(f) not in baseline]
    return kept, len(findings) - len(kept)


def stale_baseline_findings(findings: Sequence[Finding],
                            baseline: Set[str],
                            baseline_path: str) -> List[Finding]:
    """SL013 warnings for baseline entries that match no finding.

    The mirror image of SL009 for baseline files: a fingerprint that
    suppressed nothing this run is a standing grant waiting to
    swallow a *future* finding at the same ``rule:path:line``.  Each
    stale entry anchors at the location it names so the warning is
    clickable next to the code it once covered.
    """
    live = {fingerprint(f) for f in findings}
    out: List[Finding] = []
    for entry in sorted(baseline - live):
        rule, _, rest = entry.partition(":")
        path, _, line = rest.rpartition(":")
        try:
            lineno = int(line)
        except ValueError:
            path, lineno = rest, 1
        out.append(Finding(
            rule="SL013", path=path or baseline_path, line=lineno,
            col=1,
            message=(f"baseline entry `{entry}` in {baseline_path} "
                     f"matches no current finding; prune with "
                     f"--prune-baseline")))
    return out


def prune_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Drop baseline entries that match no finding; returns the count.

    Rewrites only the ``fingerprints`` list — ``notes`` and any other
    hand-maintained keys survive.  Accepts the bare-list format too
    (rewritten as a bare list).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    live = {fingerprint(f) for f in findings}
    if isinstance(data, dict):
        entries = data.get("fingerprints", [])
        kept = [e for e in entries if str(e) in live]
        dropped = len(entries) - len(kept)
        if dropped:
            data["fingerprints"] = kept
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=False)
                handle.write("\n")
        return dropped
    kept = [e for e in data if str(e) in live]
    dropped = len(data) - len(kept)
    if dropped:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(kept, handle, indent=2)
            handle.write("\n")
    return dropped


def render_text(findings: Sequence[Finding], baselined: int = 0) -> str:
    lines = [f.format() for f in findings]
    count = len(findings)
    summary = f"simlint: {count} finding{'s' if count != 1 else ''}"
    if baselined:
        summary += f" ({baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "path": finding.path.replace(os.sep, "/"),
        "line": finding.line,
        "col": finding.col,
        "severity": severity_of(finding),
        "message": finding.message,
        "fingerprint": fingerprint(finding),
    }


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    payload = {
        "tool": "simlint",
        "findings": [_finding_dict(f) for f in findings],
        "summary": {
            "total": len(findings),
            "errors": sum(1 for f in findings
                          if severity_of(f) == "error"),
            "warnings": sum(1 for f in findings
                            if severity_of(f) == "warning"),
            "baselined": baselined,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding], baselined: int = 0) -> str:
    """Minimal SARIF 2.1.0 log: one run, one result per finding."""
    seen_rules = sorted({f.rule for f in findings})
    rules = []
    for rule_id in seen_rules:
        rule = RULES.get(rule_id)
        descriptor = {"id": rule_id}
        if rule is not None:
            descriptor["name"] = rule.name
            descriptor["shortDescription"] = {
                "text": (rule.__doc__ or rule.name).strip().splitlines()[0]}
        rules.append(descriptor)
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule,
            "level": severity_of(finding),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/")},
                    "region": {"startLine": finding.line,
                               "startColumn": max(finding.col, 1)},
                },
            }],
            "partialFingerprints": {
                "simlint/v1": fingerprint(finding)},
        })
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "simlint",
                "informationUri": "https://example.invalid/simlint",
                "rules": rules,
            }},
            "results": results,
            "properties": {"baselined": baselined},
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def github_annotations(findings: Iterable[Finding]) -> List[str]:
    """``::error``/``::warning`` workflow commands, one per finding."""
    out = []
    for finding in findings:
        level = severity_of(finding)
        message = finding.message.replace("%", "%25")
        message = message.replace("\r", "%0D").replace("\n", "%0A")
        path = finding.path.replace(os.sep, "/")
        out.append(f"::{level} file={path},line={finding.line},"
                   f"col={max(finding.col, 1)},"
                   f"title=simlint {finding.rule}::{message}")
    return out


def in_github_actions() -> bool:
    return bool(os.environ.get("GITHUB_ACTIONS"))
