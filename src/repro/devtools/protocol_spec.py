"""T-Chain protocol state-machine conformance (``simlint --deep``).

:class:`repro.core.exchange.ExchangeLedger` enforces the exchange
lifecycle at *runtime* — ``release_key`` raises unless a reception
report arrived first.  That guard fires deep inside a simulation, long
after the handler bug that drove the illegal edge.  This checker moves
the contract to lint time: a **declarative spec** of the lifecycle
(:data:`EXCHANGE_SPEC`, mirroring ``_VALID_TRANSITIONS`` in
:mod:`repro.core.transaction` — a test asserts they agree) plus a
symbolic walk of every handler that tracks, per transaction variable,
the set of states it can be in:

* ``tx = ledger.get(i)`` / ``prev = ledger.mark_delivered(i, now)``
  bind transaction variables (``mark_delivered``'s return is the
  reciprocated predecessor — RECIPROCATED by contract);
* ``if tx.state is [not] TransactionState.X`` (also ``in``/``not in``
  tuples, ``and``/``or``, ``assert``, early ``return``) refine the
  state set along each branch;
* ledger operations apply their spec'd postcondition (after
  ``report_reciprocation`` the transaction *is* REPORTED);
* passing a transaction to an opaque call forgets its facts.

Three rule ids come out of the walk:

========  ===========================================================
SL110     ``release_key`` on a path with no proof of REPORTED — the
          fair-exchange core ("no report, no key") must be *evident*
          in protocol code, not assumed
SL111     ``reopen`` outside the plead path, or without proof of
          RECIPROCATED — reopen exists solely for the requestor-plead
          recovery flow (Sec. II-B4)
SL112     any ledger operation whose spec'd legal source states are
          provably disjoint from the tracked state set
========  ===========================================================

SL110/SL111 are *strict* — they demand positive evidence — but only
inside protocol driver code (paths containing ``protocols`` or
``replication``); elsewhere (tests, examples, experiments) only the
provable-contradiction rule SL112 applies, and operations inside a
``pytest.raises(...)`` block are exempt (tests deliberately drive
illegal edges).  The ledger/transaction implementation itself is
excluded — it *is* the runtime contract being mirrored.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .rules import Finding, dotted_name

# ----------------------------------------------------------------------
# The declarative spec
# ----------------------------------------------------------------------
STATES = ("CREATED", "DELIVERED", "RECIPROCATED", "REPORTED",
          "COMPLETED", "ABORTED")

_OPEN_STATES = frozenset(("CREATED", "DELIVERED", "RECIPROCATED",
                          "REPORTED"))


@dataclass(frozen=True)
class OpSpec:
    """Conformance contract of one :class:`ExchangeLedger` operation."""

    #: states the operation is legal from (None: any)
    legal_from: Optional[Tuple[str, ...]] = None
    #: states the argument transaction can be in afterwards
    #: (None: unchanged)
    post: Optional[Tuple[str, ...]] = None
    #: states of the *returned* transaction (None: returns no tx)
    returns_states: Optional[Tuple[str, ...]] = None
    #: the return value is ``(tx, ...)`` rather than a bare tx
    returns_tuple: bool = False
    #: the op returns the transaction named by its first argument
    binds_arg: bool = False
    #: ``(from, to)`` side effect on *other* transactions — e.g.
    #: ``mark_delivered`` advances the reciprocated predecessor
    ripples: Optional[Tuple[str, str]] = None
    #: strict rule id enforced in protocol paths (None: SL112 only)
    strict_rule: Optional[str] = None
    #: substrings, one of which must appear in the enclosing function's
    #: name inside protocol paths (the reopen/plead coupling)
    allowed_callers: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol lifecycle: states, legal edges, operation contracts."""

    states: Tuple[str, ...]
    #: state → states reachable in one step (mirror of the runtime
    #: ``_VALID_TRANSITIONS`` table; test-asserted to agree)
    transitions: Dict[str, Tuple[str, ...]]
    ops: Dict[str, OpSpec]
    #: receiver attribute naming the ledger in driver code
    receiver: str = "ledger"
    #: a path containing any of these parts gets the strict rules
    strict_path_parts: Tuple[str, ...] = ()
    #: paths containing any of these substrings are skipped entirely
    exclude_paths: Tuple[str, ...] = ()

    def is_strict_path(self, path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return any(p in parts for p in self.strict_path_parts)

    def is_excluded(self, path: str) -> bool:
        norm = path.replace("\\", "/")
        return any(s in norm for s in self.exclude_paths)


EXCHANGE_SPEC = ProtocolSpec(
    states=STATES,
    transitions={
        "CREATED": ("DELIVERED", "ABORTED"),
        "DELIVERED": ("RECIPROCATED", "REPORTED",   # false report
                      "COMPLETED",                  # unencrypted
                      "ABORTED"),
        "RECIPROCATED": ("REPORTED", "DELIVERED",   # reopen
                         "ABORTED"),
        "REPORTED": ("COMPLETED", "ABORTED"),
        "COMPLETED": (),
        "ABORTED": (),
    },
    ops={
        "get": OpSpec(binds_arg=True),
        "create_transaction": OpSpec(returns_states=("CREATED",),
                                     returns_tuple=True),
        "mark_delivered": OpSpec(
            legal_from=("CREATED",),
            post=("DELIVERED", "COMPLETED"),        # unencrypted jump
            returns_states=("RECIPROCATED",),       # the predecessor
            ripples=("DELIVERED", "RECIPROCATED")),
        "report_reciprocation": OpSpec(
            legal_from=("RECIPROCATED", "DELIVERED"),
            post=("REPORTED",)),
        "release_key": OpSpec(
            legal_from=("REPORTED",), post=("COMPLETED",),
            strict_rule="SL110"),
        "reopen": OpSpec(
            legal_from=("RECIPROCATED",), post=("DELIVERED",),
            strict_rule="SL111", allowed_callers=("plead",)),
        "forgive": OpSpec(
            legal_from=("DELIVERED",), post=("COMPLETED",)),
        "abort": OpSpec(post=("ABORTED", "COMPLETED")),
        "reassign_payee": OpSpec(legal_from=("DELIVERED",)),
        "peek_key": OpSpec(),
    },
    strict_path_parts=("protocols", "replication"),
    exclude_paths=("core/exchange.py", "core/transaction.py",
                   "devtools/sanitizer.py"),
)


def spec_consistency_errors(spec: ProtocolSpec) -> List[str]:
    """Internal sanity: every op's ``legal_from → post`` must be an
    edge (or identity) of the transition table."""
    errors = []
    for name, op in spec.ops.items():
        if op.legal_from is None or op.post is None:
            continue
        for src in op.legal_from:
            reachable = set(spec.transitions.get(src, ())) | {src}
            # Multi-step ops (forgive: DELIVERED→REPORTED→COMPLETED)
            # are closed over one extra hop.
            for mid in spec.transitions.get(src, ()):
                reachable |= set(spec.transitions.get(mid, ()))
            for dst in op.post:
                if dst not in reachable:
                    errors.append(
                        f"op {name}: {src} cannot reach {dst}")
    return errors


# ----------------------------------------------------------------------
# Symbolic state tracking
# ----------------------------------------------------------------------
class _Env:
    """Per-path facts: transaction cell → possible states (None =
    unknown), plus variable→cell aliases."""

    __slots__ = ("cells", "aliases")

    def __init__(self) -> None:
        self.cells: Dict[str, Optional[FrozenSet[str]]] = {}
        self.aliases: Dict[str, str] = {}

    def copy(self) -> "_Env":
        env = _Env()
        env.cells = dict(self.cells)
        env.aliases = dict(self.aliases)
        return env

    def get(self, cell: str) -> Optional[FrozenSet[str]]:
        return self.cells.get(cell)

    def set(self, cell: str, states: Optional[Iterable[str]]) -> None:
        self.cells[cell] = None if states is None \
            else frozenset(states)

    @staticmethod
    def join(a: Optional["_Env"],
             b: Optional["_Env"]) -> Optional["_Env"]:
        """Merge two branch outcomes (None = path diverged)."""
        if a is None:
            return b
        if b is None:
            return a
        out = _Env()
        for cell in set(a.cells) | set(b.cells):
            sa, sb = a.cells.get(cell), b.cells.get(cell)
            out.cells[cell] = sa | sb \
                if sa is not None and sb is not None else None
        out.aliases = {name: cell for name, cell in a.aliases.items()
                       if b.aliases.get(name) == cell}
        return out


_PROTOCOL_ERRORS = ("ExchangeError", "InvalidTransition",
                    "RuntimeError", "Exception", "BaseException")


def _catches_protocol_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts \
        if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        dotted = dotted_name(t)
        if dotted is not None \
                and dotted.split(".")[-1] in _PROTOCOL_ERRORS:
            return True
    return False


def _is_raises_context(node: ast.withitem) -> bool:
    expr = node.context_expr
    if not isinstance(expr, ast.Call):
        return False
    dotted = dotted_name(expr.func)
    return dotted is not None \
        and dotted.split(".")[-1] in ("raises", "assertRaises")


class ProtocolChecker:
    """Walk one file's handlers against a :class:`ProtocolSpec`."""

    def __init__(self, spec: ProtocolSpec, path: str, tree: ast.Module):
        self.spec = spec
        self.path = path
        self.tree = tree
        self.strict = spec.is_strict_path(path)
        self.findings: List[Finding] = []
        self._func_name = "<module>"

    # -- entry ----------------------------------------------------------
    def run(self) -> List[Finding]:
        if self.spec.is_excluded(self.path):
            return []
        self._walk_scope(self.tree.body)
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._func_name = node.name
                self._walk_body(node.body, _Env(), exempt=False)
        return sorted(self.findings,
                      key=lambda f: (f.line, f.rule, f.message))

    def _walk_scope(self, body: List[ast.stmt]) -> None:
        """Module-level statements (everything except defs)."""
        stmts = [s for s in body
                 if not isinstance(s, (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef))]
        self._func_name = "<module>"
        self._walk_body(stmts, _Env(), exempt=False)

    # -- cells ----------------------------------------------------------
    def _cell_for(self, env: _Env, node: ast.AST) -> Optional[str]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        if dotted in env.aliases:
            return env.aliases[dotted]
        if dotted.endswith(".transaction_id"):
            base = dotted[: -len(".transaction_id")]
            if base in env.aliases:
                return env.aliases[base]
            return base
        return dotted

    def _bind(self, env: _Env, name: str, cell: str,
              states: Optional[Iterable[str]]) -> None:
        env.aliases[name] = cell
        env.set(cell, states)

    # -- guard refinement ----------------------------------------------
    def _state_tests(self, env: _Env, test: ast.AST
                     ) -> Optional[Tuple[str, FrozenSet[str], bool]]:
        """``(cell, states, negated)`` when ``test`` is a recognizable
        transaction-state comparison."""
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        cell = self._state_operand(env, left)
        if cell is None:
            return None
        if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
            state = self._state_literal(right)
            if state is None:
                return None
            negated = isinstance(op, (ast.IsNot, ast.NotEq))
            return cell, frozenset((state,)), negated
        if isinstance(op, (ast.In, ast.NotIn)) \
                and isinstance(right, (ast.Tuple, ast.List, ast.Set)):
            states = [self._state_literal(e) for e in right.elts]
            if any(s is None for s in states):
                return None
            return cell, frozenset(states), isinstance(op, ast.NotIn)
        return None

    def _state_operand(self, env: _Env,
                       node: ast.AST) -> Optional[str]:
        """The cell behind a ``<tx>.state`` expression."""
        if isinstance(node, ast.Attribute) and node.attr == "state":
            return self._cell_for(env, node.value)
        return None

    @staticmethod
    def _state_literal(node: ast.AST) -> Optional[str]:
        dotted = dotted_name(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[-1] in STATES and (len(parts) == 1
                                    or parts[-2] == "TransactionState"):
            return parts[-1]
        return None

    def _refine(self, env: _Env,
                test: ast.AST) -> Tuple[_Env, _Env]:
        """Branch environments for a guard's true and false arms."""
        true_env, false_env = env.copy(), env.copy()
        self._apply_test(true_env, test, value=True)
        self._apply_test(false_env, test, value=False)
        return true_env, false_env

    def _apply_test(self, env: _Env, test: ast.AST,
                    value: bool) -> None:
        if isinstance(test, ast.UnaryOp) \
                and isinstance(test.op, ast.Not):
            self._apply_test(env, test.operand, not value)
            return
        if isinstance(test, ast.BoolOp):
            # `A and B` is known true ⇒ both hold; `A or B` known
            # false ⇒ both fail.  The other polarities prove nothing.
            conjunctive = isinstance(test.op, ast.And)
            if conjunctive == value:
                for operand in test.values:
                    self._apply_test(env, operand, value)
            return
        parsed = self._state_tests(env, test)
        if parsed is None:
            return
        cell, states, negated = parsed
        holds = value != negated        # the membership itself
        current = env.get(cell)
        universe = current if current is not None \
            else frozenset(self.spec.states)
        env.set(cell, universe & states if holds
                else universe - states)

    # -- statement walk -------------------------------------------------
    def _walk_body(self, body: List[ast.stmt], env: _Env,
                   exempt: bool) -> Optional[_Env]:
        """Returns the fall-through environment, or None when every
        path diverges (return/raise/continue/break)."""
        current: Optional[_Env] = env
        for stmt in body:
            if current is None:
                break
            current = self._walk_stmt(stmt, current, exempt)
        return current

    def _walk_stmt(self, stmt: ast.stmt, env: _Env,
                   exempt: bool) -> Optional[_Env]:
        if isinstance(stmt, ast.If):
            self._scan_ops(stmt.test, env, exempt)
            true_env, false_env = self._refine(env, stmt.test)
            after_true = self._walk_body(stmt.body, true_env, exempt)
            after_false = self._walk_body(stmt.orelse, false_env,
                                          exempt)
            return _Env.join(after_true, after_false)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._scan_ops(stmt.value, env, exempt)
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._scan_ops(stmt.exc, env, exempt)
            return None
        if isinstance(stmt, (ast.Continue, ast.Break)):
            return None
        if isinstance(stmt, ast.Assert):
            self._scan_ops(stmt.test, env, exempt)
            refined, _ = self._refine(env, stmt.test)
            return refined
        if isinstance(stmt, ast.Assign):
            return self._walk_assign(stmt, env, exempt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_ops(stmt.iter, env, exempt)
            loop_env = env.copy()
            self._bind_loop_target(loop_env, stmt)
            after = self._walk_body(stmt.body, loop_env, exempt)
            merged = _Env.join(env.copy(), after)
            else_env = self._walk_body(stmt.orelse,
                                       merged or env.copy(), exempt)
            return else_env
        if isinstance(stmt, ast.While):
            self._scan_ops(stmt.test, env, exempt)
            after = self._walk_body(stmt.body, env.copy(), exempt)
            return _Env.join(env.copy(), after)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_exempt = exempt or any(_is_raises_context(item)
                                        for item in stmt.items)
            for item in stmt.items:
                self._scan_ops(item.context_expr, env, exempt)
            after = self._walk_body(stmt.body, env, body_exempt)
            return after if after is not None else env
        if isinstance(stmt, ast.Try):
            # `try: op() except ExchangeError: ...` probes an illegal
            # edge on purpose, exactly like `pytest.raises`.
            body_exempt = exempt or any(
                _catches_protocol_error(h) for h in stmt.handlers)
            after_try = self._walk_body(stmt.body, env.copy(),
                                        body_exempt)
            outcomes = [after_try]
            for handler in stmt.handlers:
                outcomes.append(self._walk_body(handler.body,
                                                env.copy(), exempt))
            merged: Optional[_Env] = None
            for outcome in outcomes:
                merged = _Env.join(merged, outcome)
            if stmt.finalbody:
                merged = self._walk_body(stmt.finalbody,
                                         merged or env.copy(), exempt)
            return merged
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env      # nested defs walked on their own
        # Leaf statement: scan for ledger ops and invalidations.
        self._scan_ops(stmt, env, exempt)
        return env

    def _bind_loop_target(self, env: _Env, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name) \
                or not isinstance(stmt.iter, ast.Call):
            return
        dotted = dotted_name(stmt.iter.func)
        if dotted is None:
            return
        attr = dotted.split(".")[-1]
        if attr == "open_transactions_involving":
            self._bind(env, stmt.target.id,
                       f"<loop@{stmt.lineno}>", _OPEN_STATES)
        elif attr == "transactions_involving":
            self._bind(env, stmt.target.id,
                       f"<loop@{stmt.lineno}>", None)

    def _walk_assign(self, stmt: ast.Assign, env: _Env,
                     exempt: bool) -> _Env:
        value = stmt.value
        op_name = self._ledger_op(value)
        handled = False
        if op_name is not None:
            op = self.spec.ops[op_name]
            self._apply_op(value, op_name, op, env, exempt)
            target = stmt.targets[0] if len(stmt.targets) == 1 else None
            if op.binds_arg and isinstance(target, ast.Name) \
                    and value.args:
                cell = self._cell_for(env, value.args[0])
                if cell is not None:
                    current = env.get(cell)
                    self._bind(env, target.id, cell, current)
                    handled = True
            elif op.returns_states is not None:
                bind_to = target
                if op.returns_tuple \
                        and isinstance(target, (ast.Tuple, ast.List)) \
                        and target.elts:
                    bind_to = target.elts[0]
                if isinstance(bind_to, ast.Name):
                    self._bind(env, bind_to.id,
                               f"<ret@{stmt.lineno}>",
                               op.returns_states)
                    handled = True
        else:
            self._scan_ops(value, env, exempt)
        if not handled:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.aliases.pop(target.id, None)
        return env

    # -- ledger operations ----------------------------------------------
    def _ledger_op(self, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            return None
        if node.func.attr not in self.spec.ops:
            return None
        receiver = dotted_name(node.func.value)
        if receiver is None \
                or receiver.split(".")[-1] != self.spec.receiver:
            return None
        return node.func.attr

    def _scan_ops(self, node: ast.AST, env: _Env,
                  exempt: bool) -> None:
        """Apply every ledger op (and alias invalidation) inside an
        expression/statement subtree, in source order."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            op_name = self._ledger_op(sub)
            if op_name is not None:
                self._apply_op(sub, op_name, self.spec.ops[op_name],
                               env, exempt)
            else:
                # A transaction handed to an opaque call may be
                # mutated arbitrarily: forget its facts.
                for arg in sub.args:
                    if not isinstance(arg, ast.Name):
                        continue
                    if arg.id in env.aliases:
                        env.set(env.aliases[arg.id], None)
                    elif arg.id in env.cells:
                        env.set(arg.id, None)

    def _apply_op(self, call: ast.Call, op_name: str, op: OpSpec,
                  env: _Env, exempt: bool) -> None:
        cell = self._cell_for(env, call.args[0]) if call.args else None
        facts = env.get(cell) if cell is not None else None
        if not exempt:
            self._check_op(call, op_name, op, facts)
        if op.ripples is not None:
            src, dst = op.ripples
            for other, states in env.cells.items():
                if other != cell and states is not None \
                        and src in states:
                    env.set(other, states | {dst})
        if cell is not None and op.post is not None:
            env.set(cell, None if exempt else op.post)

    def _check_op(self, call: ast.Call, op_name: str, op: OpSpec,
                  facts: Optional[FrozenSet[str]]) -> None:
        if op.legal_from is None:
            return
        legal = frozenset(op.legal_from)
        strict = self.strict and op.strict_rule is not None
        if strict and op.allowed_callers is not None \
                and not any(part in self._func_name
                            for part in op.allowed_callers):
            self.findings.append(Finding(
                rule=op.strict_rule, path=self.path, line=call.lineno,
                col=call.col_offset + 1,
                message=(f"`{op_name}()` called from "
                         f"`{self._func_name}`, outside the "
                         f"{'/'.join(op.allowed_callers)} path it is "
                         f"reserved for")))
            return
        if strict and (facts is None or not facts <= legal):
            proven = "unproven state" if facts is None else \
                "proven state {%s}" % ", ".join(sorted(facts))
            self.findings.append(Finding(
                rule=op.strict_rule, path=self.path, line=call.lineno,
                col=call.col_offset + 1,
                message=(f"`{op_name}()` without evidence of "
                         f"{{{', '.join(op.legal_from)}}} "
                         f"({proven}); protocol handlers must prove "
                         f"the transition before driving it")))
            return
        if not strict and facts is not None and not (facts & legal):
            self.findings.append(Finding(
                rule="SL112", path=self.path, line=call.lineno,
                col=call.col_offset + 1,
                message=(f"`{op_name}()` on a transaction proven to "
                         f"be in {{{', '.join(sorted(facts))}}} — "
                         f"legal only from "
                         f"{{{', '.join(op.legal_from)}}} per "
                         f"EXCHANGE_SPEC")))


def check_file(path: str, tree: ast.Module,
               spec: ProtocolSpec = EXCHANGE_SPEC) -> List[Finding]:
    """All SL110–SL112 findings for one parsed file."""
    return ProtocolChecker(spec, path, tree).run()


def run_protocol(index) -> List[Finding]:
    """All SL110–SL112 findings for an indexed project."""
    findings: List[Finding] = []
    for path, tree in sorted(index.trees.items()):
        findings.extend(check_file(path, tree))
    return findings
