"""Same-instant commutativity checking (``simrace``, SL201–SL203).

The engine's ``(time, seq)`` tie-break makes same-instant event order
deterministic but *silently load-bearing*: two handlers that can land
on the same timestamp and do not commute have a well-defined outcome
today, yet any reordering — and in particular the event **coalescing**
that ROADMAP item 1's 10^5-peer scaling depends on — changes the
trace.  This pass finds those pairs statically:

1. collect every **schedule site** whose firing instant is statically
   characterizable, and bucket the ones that can coincide:

   * ``("now",)`` — ``call_now(...)`` and ``schedule(0, ...)``: all
     such events scheduled from the same firing instant share it;
   * ``("const", NAME)`` — delays/deadlines named by a shared
     ALL-CAPS constant: two sites anchored to the same constant from
     the same instant coincide;
   * ``("at", value)`` — ``schedule_at`` with a literal time;
   * ``("period", key)`` — :class:`~repro.sim.events.PeriodicTask`
     construction sites with the same interval (and first-delay)
     expression: every instance's ticks align, which is exactly the
     population a coalescing optimizer would batch;

2. intersect the handlers' **effect summaries**
   (:mod:`repro.devtools.effects`) pairwise within each bucket:

   * both write a matching field (and not accum/accum, which
     commutes) → **SL201** — conflicting writes;
   * one writes what the other reads → **SL202** — the reader's
     outcome depends on seq order;

   self/self pairs are skipped (different handler *instances* have
   disjoint ``self`` state and the analysis cannot prove both
   handlers are bound to the same object) and rng draws are excluded
   here — every pair of rng-using handlers would otherwise conflict;

3. check each periodic handler *against itself across instances* —
   the coalescing transform collapses N same-tick invocations into
   one batch, which is only trace-safe if invocations commute with
   each other.  A handler that draws from the shared rng, plainly
   writes ``shared``/``other`` state, or writes a ``self`` field it
   also reads through another instance, is provably unsafe to
   coalesce → **SL203**, the safety gate for ROADMAP item 1.

Findings anchor at the schedule (or timer-construction) site, so a
``simlint: disable=SL20x -- reason`` comment there suppresses the
pair, and diagnostics carry the full schedule-site → handler → field
chain from the effect traces.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Tuple

from .callgraph import (FunctionInfo, ProjectIndex, SCHEDULE_METHODS,
                        iter_own_nodes)
from .effects import (TracedEffect, WRITE_KINDS, fields_match,
                      infer_effects, render_chain)
from .rules import Finding, dotted_name

#: Cap on findings emitted per handler pair (the first conflicts are
#: the diagnosis; fifty more fields of the same pair are noise).
_MAX_PER_PAIR = 2

#: Cap on reasons listed in one SL203 message.
_MAX_REASONS = 3


class ScheduleSite(NamedTuple):
    """One statically characterized schedule/timer site."""

    handler: str               # resolved callback qualname
    path: str
    line: int
    bucket: Tuple[object, ...]
    desc: str                  # how this site pins its instant
    periodic: bool


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


def _const_key(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(key, display) when ``node`` names an ALL-CAPS constant."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    terminal = dotted.split(".")[-1]
    if terminal.isupper() and len(terminal) > 1:
        return terminal, dotted
    return None


def _interval_key(node: ast.AST) -> Optional[Tuple[str, str]]:
    """Bucket key for a timer-interval expression: literal values and
    named intervals bucket; arbitrary arithmetic stays unbucketed
    (different phases / jittered periods never provably align)."""
    if isinstance(node, ast.Constant) \
            and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return repr(float(node.value)), repr(node.value)
    dotted = dotted_name(node)
    if dotted is not None:
        terminal = dotted.split(".")[-1]
        return terminal, dotted
    if isinstance(node, ast.UnaryOp):
        return _interval_key(node.operand)
    return None


# ----------------------------------------------------------------------
# Site collection
# ----------------------------------------------------------------------
def _collect_sites(index: ProjectIndex) -> List[ScheduleSite]:
    sites: List[ScheduleSite] = []
    for info in index.functions.values():
        for node in iter_own_nodes(info):
            if not isinstance(node, ast.Call):
                continue
            site = _schedule_site(index, info, node) \
                or _periodic_site(index, info, node)
            if site is not None:
                sites.append(site)
    sites.sort(key=lambda s: (s.path, s.line, s.handler))
    return sites


def _schedule_site(index: ProjectIndex, info: FunctionInfo,
                   node: ast.Call) -> Optional[ScheduleSite]:
    func = node.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in SCHEDULE_METHODS:
        return None
    method = func.attr
    cb_index = 0 if method == "call_now" else 1
    if len(node.args) <= cb_index:
        return None
    handler = index.resolve_callable(info, node.args[cb_index])
    if handler is None or handler not in index.functions:
        return None
    bucket: Optional[Tuple[object, ...]] = None
    desc = ""
    if method == "call_now":
        bucket = ("now",)
        desc = "scheduled for the current instant (call_now)"
    else:
        delay = node.args[0]
        if isinstance(delay, ast.Constant) and delay.value in (0, 0.0) \
                and not isinstance(delay.value, bool):
            if method == "schedule":
                bucket = ("now",)
                desc = "scheduled for the current instant (delay 0)"
        elif method == "schedule_at" and isinstance(delay, ast.Constant) \
                and isinstance(delay.value, (int, float)):
            bucket = ("at", repr(float(delay.value)))
            desc = f"scheduled at the literal time {delay.value!r}"
        else:
            const = _const_key(delay)
            if const is not None:
                key, display = const
                bucket = ("const", method, key)
                desc = (f"{method}() anchored to the shared constant "
                        f"`{display}`")
    if bucket is None:
        return None
    return ScheduleSite(handler=handler, path=info.path,
                        line=node.lineno, bucket=bucket, desc=desc,
                        periodic=False)


def _periodic_site(index: ProjectIndex, info: FunctionInfo,
                   node: ast.Call) -> Optional[ScheduleSite]:
    dotted = dotted_name(node.func)
    if dotted is None or dotted.split(".")[-1] != "PeriodicTask":
        return None
    args: Dict[str, Optional[ast.AST]] = {
        "interval": node.args[1] if len(node.args) > 1 else None,
        "callback": node.args[2] if len(node.args) > 2 else None,
        "first_delay": None,
    }
    for kw in node.keywords:
        if kw.arg in args:
            args[kw.arg] = kw.value
    if args["interval"] is None or args["callback"] is None:
        return None
    handler = index.resolve_callable(info, args["callback"])
    if handler is None or handler not in index.functions:
        return None
    interval = _interval_key(args["interval"])
    if interval is None:
        return None
    key, display = interval
    first = args["first_delay"]
    first_key = ""
    if first is not None and not (isinstance(first, ast.Constant)
                                  and first.value is None):
        first_interval = _interval_key(first)
        if first_interval is None:
            return None  # unknown phase: ticks never provably align
        first_key = first_interval[0]
    return ScheduleSite(
        handler=handler, path=info.path, line=node.lineno,
        bucket=("period", key, first_key),
        desc=f"on a periodic timer with interval `{display}`",
        periodic=True)


# ----------------------------------------------------------------------
# Pairwise conflict analysis
# ----------------------------------------------------------------------
def _pair_conflicts(sum_a: Tuple[TracedEffect, ...],
                    sum_b: Tuple[TracedEffect, ...]
                    ) -> List[Tuple[str, TracedEffect, TracedEffect]]:
    """(rule, effect_a, effect_b) conflicts between two handlers."""
    out = []
    for ta in sum_a:
        ea = ta.effect
        if ea.kind == "rng":
            continue  # rng/rng pairs are SL203's cross-instance story
        for tb in sum_b:
            eb = tb.effect
            if eb.kind == "rng":
                continue
            a_writes = ea.kind in WRITE_KINDS
            b_writes = eb.kind in WRITE_KINDS
            if not (a_writes or b_writes):
                continue
            if ea.kind == "accum" and eb.kind == "accum":
                continue  # commutative accumulation
            if ea.owner == "self" and eb.owner == "self":
                continue  # provably-distinct instances may not alias
            if not fields_match(ea, eb):
                continue
            rule = "SL201" if (a_writes and b_writes) else "SL202"
            out.append((rule, ta, tb))
    return out


def _conflict_severity(item: Tuple[str, TracedEffect, TracedEffect]
                       ) -> Tuple:
    rule, ta, tb = item
    return (rule, ta.effect.field, len(ta.chain) + len(tb.chain))


def _pair_findings(site_a: ScheduleSite, site_b: ScheduleSite,
                   summaries: Dict[str, Tuple[TracedEffect, ...]]
                   ) -> List[Finding]:
    conflicts = _pair_conflicts(summaries.get(site_a.handler, ()),
                                summaries.get(site_b.handler, ()))
    conflicts.sort(key=_conflict_severity)
    findings = []
    for rule, ta, tb in conflicts[:_MAX_PER_PAIR]:
        a, b = _short(site_a.handler), _short(site_b.handler)
        if rule == "SL201":
            what = (f"conflicting writes to `{ta.effect.field}`: "
                    f"firing order changes the final value")
        else:
            reader, writer = (a, b) \
                if ta.effect.kind == "read" else (b, a)
            what = (f"read/write overlap on `{ta.effect.field}`: what "
                    f"`{reader}` observes depends on whether "
                    f"`{writer}` fired first")
        findings.append(Finding(
            rule=rule, path=site_a.path, line=site_a.line, col=1,
            message=(
                f"handlers `{a}` and `{b}` can fire at the same "
                f"instant — `{a}` {site_a.desc} "
                f"({site_a.path}:{site_a.line}); `{b}` {site_b.desc} "
                f"({site_b.path}:{site_b.line}) — with {what}; "
                f"`{a}`: {render_chain(ta.chain)}; "
                f"`{b}`: {render_chain(tb.chain)}")))
    return findings


# ----------------------------------------------------------------------
# SL203: coalescing safety per periodic handler
# ----------------------------------------------------------------------
def _coalesce_reasons(summary: Tuple[TracedEffect, ...]
                      ) -> List[Tuple[str, TracedEffect]]:
    """Why collapsing N same-tick invocations of this handler into one
    batch could change the trace."""
    reasons = []
    self_writes = [te for te in summary
                   if te.effect.kind in WRITE_KINDS
                   and te.effect.owner == "self"]
    for te in summary:
        effect = te.effect
        if effect.kind == "rng":
            reasons.append((
                "draws from the simulation rng (a coalesced batch "
                "consumes the stream in a different order)", te))
        elif effect.kind == "write" and effect.owner in ("shared",
                                                         "other"):
            reasons.append((
                f"plainly writes {effect.owner} state "
                f"`{effect.field}` (last-writer-wins across "
                f"coalesced instances)", te))
        elif effect.kind == "read" and effect.owner in ("shared",
                                                        "other"):
            for wt in self_writes:
                if fields_match(effect, wt.effect):
                    reasons.append((
                        f"reads `{effect.field}` which another "
                        f"instance's invocation writes "
                        f"(`{wt.effect.field}`)", te))
                    break
    return reasons


def _periodic_findings(site: ScheduleSite,
                       summaries: Dict[str, Tuple[TracedEffect, ...]]
                       ) -> List[Finding]:
    reasons = _coalesce_reasons(summaries.get(site.handler, ()))
    if not reasons:
        return []
    handler = _short(site.handler)
    listed = "; ".join(
        f"{text} [{render_chain(te.chain)}]"
        for text, te in reasons[:_MAX_REASONS])
    more = len(reasons) - _MAX_REASONS
    if more > 0:
        listed += f"; and {more} more"
    return [Finding(
        rule="SL203", path=site.path, line=site.line, col=1,
        message=(
            f"periodic handler `{handler}` ({site.desc}, "
            f"{site.path}:{site.line}) is unsafe to coalesce: "
            f"same-tick invocations across instances do not commute "
            f"— {listed}"))]


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_races(index: ProjectIndex) -> List[Finding]:
    """All SL201–SL203 findings for an indexed project."""
    sites = _collect_sites(index)
    if not sites:
        return []
    summaries = infer_effects(index)
    findings: List[Finding] = []
    by_bucket: Dict[Tuple[object, ...], List[ScheduleSite]] = {}
    for site in sites:
        by_bucket.setdefault(site.bucket, []).append(site)
    seen_pairs = set()
    for bucket_sites in by_bucket.values():
        for i, site_a in enumerate(bucket_sites):
            for site_b in bucket_sites[i + 1:]:
                if site_a.handler == site_b.handler:
                    continue  # cross-instance stories are SL203's
                pair = (site_a.path, site_a.line,
                        tuple(sorted((site_a.handler,
                                      site_b.handler))))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                findings.extend(_pair_findings(site_a, site_b,
                                               summaries))
    seen_periodic = set()
    for site in sites:
        if not site.periodic:
            continue
        key = (site.path, site.line, site.handler)
        if key in seen_periodic:
            continue
        seen_periodic.add(key)
        findings.extend(_periodic_findings(site, summaries))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
