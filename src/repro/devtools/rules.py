"""The ``simlint`` rule set.

Each rule targets one way a change can silently break the repository's
determinism contract ("same scenario + same seed = bit-identical event
trace", :mod:`repro.sim.engine`) or the almost-fair-exchange protocol
invariants (:mod:`repro.core.exchange`):

========  ==========================================================
SL001     use of the global ``random`` module (unseeded global state)
SL002     wall-clock reads (``time.time``, ``datetime.now``, ...)
SL003     iteration over a ``set``/``frozenset`` feeding ``schedule``
          or ``rng`` calls (hash-order nondeterminism)
SL004     float ``==``/``!=`` on simulation-time values
SL005     mutable default arguments
SL006     event callback scheduled with mismatched arity
SL007     direct ``rng`` use inside a ``faults/`` package (fault
          injection must draw from its own named substream)
SL008     multiprocessing/ProcessPoolExecutor outside the sanctioned
          choke points (``experiments/parallel.py`` and the fabric
          supervisor)
SL009     stale ``# simlint: disable=...`` comment that no longer
          suppresses any finding (warning; see
          ``--strict-suppressions``)
SL010     ad-hoc ``book.wanted() & ...`` interest intersection inside
          ``bt/protocols/`` (bypasses the incremental interest index)
SL011     ad-hoc checkpoint/manifest/state-file writes under
          ``experiments/`` outside the ``fabric/`` package (bypasses
          atomic, verified sweep persistence)
SL012     per-peer Python-object iteration (``... in peers.values()``
          / ``.items()``) inside ``bt/`` (bypasses the columnar
          swarm state; O(N) object walks on hot paths)
SL013     stale baseline entry: a ``--baseline`` fingerprint whose
          finding no longer fires (warning; prune with
          ``--prune-baseline``)
SL014     ad-hoc cross-peer message delivery inside ``bt/``: another
          object's method scheduled directly instead of going through
          ``Swarm.send_control`` / the uplink (bypasses latency,
          fault injection and the network substrate)
SL101     deep: wall-clock value reaches a schedule/rng/metrics sink
          through any number of call hops
SL102     deep: global-``random`` value reaches a deterministic sink
SL103     deep: ``os.environ``/``os.getenv``/``id()`` value reaches
          a deterministic sink
SL104     deep: hash-order or filesystem-order iteration value
          reaches a deterministic sink
SL110     deep: ``release_key`` reachable without proof of a
          reception report (protocol conformance)
SL111     deep: ``reopen`` driven outside the plead path
SL112     deep: handler drives a transition the exchange lifecycle
          forbids outright
SL201     simrace: co-schedulable handlers write conflicting state
          (same-instant firing order changes the final value)
SL202     simrace: co-schedulable read/write overlap (what one
          handler observes depends on seq order)
SL203     simrace: periodic handler provably unsafe to coalesce
          (the safety gate for ROADMAP item 1's event coalescing)
SL301     simheat: allocation in a per-event hot path (each event
          pays it; the per-event garbage bill at 10^5 peers)
SL302     simheat: O(peers)/O(pieces)-scale copy or rescan in a
          per-event region (interprocedural SL010/SL012)
SL303     simheat: closure/partial created per event — the code
          object is constant, hoist it to setup
SL304     simheat: per-event construction of a poolable type for
          which a free-list exists (engine events, piece messages)
========  ==========================================================

Rules are small classes registered in :data:`RULES`; adding a rule is
``@register`` plus a ``check`` method, and it is immediately available
to the CLI, the ``[tool.simlint]`` config block and the suppression
comments — no other wiring.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` (clickable in most UIs)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """Everything a rule needs to inspect one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(rule=rule.id, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


class Rule:
    """Base class: subclasses set ``id``/``name`` and implement
    :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


#: Registry of all known rules, id -> instance.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULES`."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully dotted origin, for every import in the file.

    ``import time`` -> {"time": "time"};
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return mapping


def resolve_call(node: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """The fully dotted name a call resolves to, through the file's
    imports (``dt.now()`` -> ``datetime.datetime.now``)."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


def is_set_expr(node: ast.AST, set_names: Set[str] = frozenset()) -> bool:
    """Is ``node`` syntactically a set/frozenset value?

    ``set_names`` carries local variable names known (by simple
    forward assignment tracking) to hold sets.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return is_set_expr(node.left, set_names) \
            or is_set_expr(node.right, set_names)
    return False


SCHEDULE_METHODS = {"schedule", "schedule_at", "call_now"}
RNG_METHODS = {"choice", "choices", "sample", "shuffle", "randint",
               "randrange", "random", "uniform", "expovariate", "gauss"}


def _uses_schedule_or_rng(node: ast.AST) -> bool:
    """Does the subtree call ``schedule``/``schedule_at``/``call_now``
    or anything reached through an ``rng`` attribute/name?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[-1] in SCHEDULE_METHODS:
                return True
            if "rng" in parts[:-1] and parts[-1] in RNG_METHODS:
                return True
        elif isinstance(sub, (ast.Name, ast.Attribute)):
            if (sub.id if isinstance(sub, ast.Name) else sub.attr) == "rng":
                return True
    return False


# ----------------------------------------------------------------------
# SL001 — global random module
# ----------------------------------------------------------------------
#: ``random``-module functions that draw from the *global*, unseeded
#: generator.  ``Random``/``SystemRandom`` (classes the caller seeds or
#: explicitly opts into OS entropy with) are exempt.
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "getstate", "setstate", "randbytes",
}


@register
class GlobalRandomRule(Rule):
    """SL001: the global ``random`` module must never be used.

    Every stochastic decision must flow through a seeded
    ``random.Random`` (``Simulator.rng`` or one derived via
    :class:`repro.sim.randomness.SeedSequence`); the global module is
    process-wide mutable state that any import can perturb, destroying
    trace reproducibility.
    """

    id = "SL001"
    name = "global-random"
    description = ("use of the global random module instead of "
                   "Simulator.rng / SeedSequence")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield ctx.finding(
                            self, node,
                            "import of the global `random` module; "
                            "use `from random import Random` and seed "
                            "an instance (Simulator.rng / SeedSequence)")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _GLOBAL_RANDOM_FUNCS:
                            yield ctx.finding(
                                self, node,
                                f"`from random import {alias.name}` binds "
                                f"the global generator; use a seeded "
                                f"random.Random instance")


# ----------------------------------------------------------------------
# SL002 — wall-clock reads
# ----------------------------------------------------------------------
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """SL002: simulation code must use ``Simulator.now``, never the
    host's clock — wall-clock values differ run to run and leak host
    load into results."""

    id = "SL002"
    name = "wall-clock"
    description = ("wall-clock call (time.time, datetime.now, ...) "
                   "inside simulation code")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_call(node, imports)
            if resolved in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self, node,
                    f"wall-clock call `{resolved}`; simulation code "
                    f"must use Simulator.now")


# ----------------------------------------------------------------------
# SL003 — set iteration feeding schedule/rng
# ----------------------------------------------------------------------
@register
class SetIterationRule(Rule):
    """SL003: iterating a set in a path that schedules events or draws
    randomness makes event order depend on hash seeds and insertion
    history.  Sort first (``sorted(the_set)``)."""

    id = "SL003"
    name = "set-iteration"
    description = ("iteration over a set/frozenset feeding schedule() "
                   "or rng calls; sort it first")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Module)):
                continue
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext,
                     scope: ast.AST) -> Iterator[Finding]:
        # Forward pass: names assigned set-valued expressions in this
        # scope (no flow analysis — one function is small enough that a
        # name once bound to a set is treated as a set throughout).
        set_names: Set[str] = set()
        body = scope.body if hasattr(scope, "body") else []
        for node in body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) \
                        and is_set_expr(sub.value, set_names):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
                elif isinstance(sub, ast.AnnAssign) \
                        and sub.value is not None \
                        and is_set_expr(sub.value, set_names) \
                        and isinstance(sub.target, ast.Name):
                    set_names.add(sub.target.id)

        for node in body:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)) \
                        and sub is not scope:
                    continue
                yield from self._check_node(ctx, sub, set_names)

    def _check_node(self, ctx: FileContext, node: ast.AST,
                    set_names: Set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For) \
                and is_set_expr(node.iter, set_names):
            loop_uses = any(_uses_schedule_or_rng(stmt)
                            for stmt in node.body)
            if loop_uses:
                yield ctx.finding(
                    self, node.iter,
                    "iteration over a set feeds schedule()/rng; "
                    "iterate sorted(...) for deterministic order")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.SetComp, ast.DictComp)):
            for gen in node.generators:
                if is_set_expr(gen.iter, set_names) \
                        and _uses_schedule_or_rng(node):
                    yield ctx.finding(
                        self, gen.iter,
                        "comprehension over a set feeds schedule()/rng; "
                        "iterate sorted(...) for deterministic order")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return
            parts = name.split(".")
            if "rng" not in parts[:-1] or parts[-1] not in RNG_METHODS:
                return
            for arg in node.args:
                inner = arg
                if isinstance(arg, ast.Call) \
                        and isinstance(arg.func, ast.Name) \
                        and arg.func.id in ("list", "tuple"):
                    inner = arg.args[0] if arg.args else arg
                if is_set_expr(inner, set_names):
                    yield ctx.finding(
                        self, arg,
                        f"set passed to rng.{parts[-1]}(); convert "
                        f"with sorted(...) for deterministic order")


# ----------------------------------------------------------------------
# SL004 — float equality on simulation time
# ----------------------------------------------------------------------
def _is_time_like(node: ast.AST) -> Optional[str]:
    """The name of a simulation-time-ish operand, or None."""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    if name == "now" or name == "time" or name.endswith("_time") \
            or name.endswith("_at") or name.startswith("time_") \
            or name in ("deadline", "timestamp"):
        return name
    return None


@register
class TimeEqualityRule(Rule):
    """SL004: simulation times are accumulated floats — exact
    ``==``/``!=`` comparisons flip with summation order.  Compare with
    a tolerance, or order (``<=``/``>=``)."""

    id = "SL004"
    name = "time-float-eq"
    description = "float ==/!= comparison on simulation-time values"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                name = _is_time_like(left) or _is_time_like(right)
                if name is None:
                    continue
                other = right if _is_time_like(left) else left
                # `x == None` is an identity mistake, not a float one;
                # and equality against a literal 0 sentinel is common
                # and exact.
                if isinstance(other, ast.Constant) \
                        and (other.value is None
                             or isinstance(other.value, (int, bool))
                             and not isinstance(other.value, float)):
                    continue
                yield ctx.finding(
                    self, node,
                    f"float equality on simulation time `{name}`; "
                    f"use a tolerance or an ordering comparison")


# ----------------------------------------------------------------------
# SL005 — mutable default arguments
# ----------------------------------------------------------------------
@register
class MutableDefaultRule(Rule):
    """SL005: a mutable default is shared across calls — state leaks
    between simulations and, worse, between seeds."""

    id = "SL005"
    name = "mutable-default"
    description = "mutable default argument (list/dict/set)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) \
                + [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self, default,
                        "mutable default argument; use None and create "
                        "inside the function")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray",
                                    "defaultdict", "deque", "Counter")
        return False


# ----------------------------------------------------------------------
# SL006 — scheduled-callback arity
# ----------------------------------------------------------------------
class _Signature:
    """Positional-arity envelope of a function definition."""

    __slots__ = ("min_args", "max_args", "name")

    def __init__(self, node: ast.FunctionDef, drop_first: bool):
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if drop_first and positional:
            positional = positional[1:]
        n_defaults = len(args.defaults)
        self.min_args = len(positional) - n_defaults
        self.max_args = None if args.vararg is not None \
            else len(positional)
        self.name = node.name

    def accepts(self, n: int) -> bool:
        if n < self.min_args:
            return False
        return self.max_args is None or n <= self.max_args


@register
class CallbackArityRule(Rule):
    """SL006: ``schedule(delay, cb, *args)`` defers the arity check to
    fire time, deep inside a run; resolve the callback's definition
    now and verify the argument count statically."""

    id = "SL006"
    name = "callback-arity"
    description = ("event callback scheduled with a mismatched "
                   "argument count")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_funcs: Dict[str, _Signature] = {}
        methods: Dict[Tuple[str, str], _Signature] = {}
        classes: Dict[ast.ClassDef, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef):
                module_funcs[node.name] = _Signature(node,
                                                     drop_first=False)
            elif isinstance(node, ast.ClassDef):
                classes[node] = node.name
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        is_static = any(
                            isinstance(d, ast.Name)
                            and d.id == "staticmethod"
                            for d in item.decorator_list)
                        methods[(node.name, item.name)] = _Signature(
                            item, drop_first=not is_static)

        # Walk calls with the enclosing class in scope so `self._cb`
        # resolves against the right method table.
        yield from self._walk(ctx, ctx.tree, None, module_funcs, methods)

    def _walk(self, ctx: FileContext, node: ast.AST,
              cls: Optional[str],
              module_funcs: Dict[str, _Signature],
              methods: Dict[Tuple[str, str], _Signature]
              ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_cls = child.name if isinstance(child, ast.ClassDef) \
                else cls
            if isinstance(child, ast.Call):
                yield from self._check_call(ctx, child, child_cls,
                                            module_funcs, methods)
            yield from self._walk(ctx, child, child_cls,
                                  module_funcs, methods)

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    cls: Optional[str],
                    module_funcs: Dict[str, _Signature],
                    methods: Dict[Tuple[str, str], _Signature]
                    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in SCHEDULE_METHODS:
            return
        # schedule/schedule_at take (delay_or_time, cb, *args);
        # call_now takes (cb, *args).
        cb_index = 0 if node.func.attr == "call_now" else 1
        if len(node.args) <= cb_index:
            return
        if any(isinstance(a, ast.Starred) for a in node.args):
            return
        if node.keywords:
            return
        cb = node.args[cb_index]
        given = len(node.args) - cb_index - 1
        sig: Optional[_Signature] = None
        if isinstance(cb, ast.Lambda):
            sig = _Signature(
                ast.FunctionDef(name="<lambda>", args=cb.args, body=[],
                                decorator_list=[]),
                drop_first=False)
        elif isinstance(cb, ast.Name):
            sig = module_funcs.get(cb.id)
        elif isinstance(cb, ast.Attribute) \
                and isinstance(cb.value, ast.Name) \
                and cb.value.id == "self" and cls is not None:
            sig = methods.get((cls, cb.attr))
        if sig is None or sig.accepts(given):
            return
        bound = "at least " if sig.max_args is None else ""
        expected = sig.min_args if sig.max_args in (None, sig.min_args) \
            else f"{sig.min_args}-{sig.max_args}"
        yield ctx.finding(
            self, node,
            f"callback `{sig.name}` scheduled with {given} argument(s) "
            f"but takes {bound}{expected}")


# ----------------------------------------------------------------------
# SL007 — direct rng use inside fault-injection code
# ----------------------------------------------------------------------
@register
class FaultsRngRule(Rule):
    """SL007: fault-injection code must never touch the simulation's
    main ``rng``.

    The determinism contract of :mod:`repro.faults` is that attaching
    an idle :class:`~repro.faults.plan.FaultPlan` leaves traces
    bit-identical — which holds only if the injector draws from its
    own named substream (``repro.sim.randomness.substream``) and the
    main generator's draw order is untouched.  One ``rng.random()``
    inside ``faults/`` silently perturbs every scenario that attaches
    an injector.  The rule flags *any* read of a name or attribute
    called ``rng`` in files under a ``faults`` package directory.
    """

    id = "SL007"
    name = "faults-direct-rng"
    description = ("direct `rng` use inside a faults/ package; draw "
                   "from a named substream instead")

    @staticmethod
    def _in_faults_package(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "faults" in parts[:-1]

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_faults_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and node.id == "rng":
                name = "rng"
            elif isinstance(node, ast.Attribute) and node.attr == "rng":
                name = dotted_name(node) or f"<expr>.{node.attr}"
            else:
                continue
            yield ctx.finding(
                self, node,
                f"`{name}` referenced inside a faults/ package; fault "
                f"injection must draw from its own substream "
                f"(repro.sim.randomness.substream), never the "
                f"simulation rng")


# ----------------------------------------------------------------------
# SL008 — ad-hoc process fan-out outside the sanctioned choke point
# ----------------------------------------------------------------------
@register
class AdHocParallelismRule(Rule):
    """SL008: process-based parallelism must route through
    ``repro.experiments.parallel``.

    That module is the single fan-out choke point: it guarantees
    spec-order results, per-run seeding, picklable work units, prompt
    surfacing of dead workers, and the ``REPRO_WORKERS`` knob.  A
    ``ProcessPoolExecutor`` (or raw ``multiprocessing``) spun up
    anywhere else re-derives those guarantees ad hoc — or, more
    likely, silently lacks one of them (results in completion order,
    shared mutable state, a hang on worker death).  The rule flags any
    import or attribute reference to ``multiprocessing`` or
    ``ProcessPoolExecutor`` outside the two sanctioned choke points:
    ``experiments/parallel.py`` and the fabric supervisor
    (``experiments/fabric/supervisor.py``), which holds the same
    guarantees and adds checkpointed recovery on top.
    """

    id = "SL008"
    name = "adhoc-parallelism"
    description = ("ProcessPoolExecutor/multiprocessing outside "
                   "experiments/parallel.py or the fabric supervisor; "
                   "route fan-out through repro.experiments.parallel")

    _GUIDANCE = ("process fan-out belongs in repro.experiments.parallel "
                 "(run_specs / run_chaos_specs) or the fabric "
                 "supervisor (run_specs_fabric); they guarantee "
                 "spec-order results, per-run seeding and worker-death "
                 "reporting")

    @staticmethod
    def _is_choke_point(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        if parts[-1] == "parallel.py" and "experiments" in parts:
            return True
        return (parts[-1] == "supervisor.py" and "fabric" in parts
                and "experiments" in parts)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self._is_choke_point(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        yield ctx.finding(
                            self, node,
                            f"`import {alias.name}`: {self._GUIDANCE}")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] == "multiprocessing":
                    yield ctx.finding(
                        self, node,
                        f"`from {module} import ...`: {self._GUIDANCE}")
                    continue
                for alias in node.names:
                    if alias.name == "ProcessPoolExecutor":
                        yield ctx.finding(
                            self, node,
                            f"`from {module} import "
                            f"ProcessPoolExecutor`: {self._GUIDANCE}")
            elif (isinstance(node, ast.Attribute)
                    and node.attr == "ProcessPoolExecutor"):
                name = dotted_name(node) or f"<expr>.{node.attr}"
                yield ctx.finding(
                    self, node, f"`{name}`: {self._GUIDANCE}")


# ----------------------------------------------------------------------
# SL010 — ad-hoc interest intersections inside protocol code
# ----------------------------------------------------------------------
@register
class AdHocInterestScanRule(Rule):
    """SL010: protocol code must not recompute interest by hand.

    ``holder.completed & wanter.wanted()`` rescans are exactly what the
    swarm-level interest index (:mod:`repro.bt.interest`) maintains
    incrementally; a hand-rolled intersection inside ``bt/protocols/``
    bypasses the index, costs O(pieces) per call on hot paths, and —
    worse — silently diverges from the indexed predicates the rest of
    the protocol uses when the index semantics evolve.  Route the check
    through the index helpers (``wants_from`` / ``wants_any_of`` /
    ``offers_interest`` / ``needed_overlap``) instead.  The rule flags
    any ``&`` expression with a ``.wanted()`` call on either side in a
    file under ``bt/protocols/``.
    """

    id = "SL010"
    name = "adhoc-interest-scan"
    description = ("`book.wanted() & ...` intersection inside "
                   "bt/protocols/; use the repro.bt.interest helpers")

    @staticmethod
    def _in_protocols_package(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "protocols" in parts[:-1] and "bt" in parts[:-1]

    @staticmethod
    def _is_wanted_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "wanted")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_protocols_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp) \
                    or not isinstance(node.op, ast.BitAnd):
                continue
            if self._is_wanted_call(node.left) \
                    or self._is_wanted_call(node.right):
                yield ctx.finding(
                    self, node,
                    "ad-hoc `.wanted() & ...` interest intersection in "
                    "protocol code; use the interest-index helpers "
                    "(repro.bt.interest.wants_from / wants_any_of / "
                    "offers_interest / needed_overlap)")


# ----------------------------------------------------------------------
# SL011 — ad-hoc sweep-state writes outside the fabric choke point
# ----------------------------------------------------------------------
@register
class AdHocSweepStateRule(Rule):
    """SL011: sweep state must persist through the fabric.

    The fabric (``experiments/fabric/``) is the single sanctioned
    place where experiment code writes checkpoints, manifests and
    journals: its writes are atomic (temp-then-rename), sha256-
    verified on load, and content-addressed — which is what makes
    ``repro sweep --resume`` trustworthy after any kind of death.  A
    plain ``open(path, "w")`` (or ``os.replace``/``os.rename``/
    ``Path.write_text``) elsewhere under ``experiments/`` re-invents
    that persistence ad hoc — typically non-atomically, so a SIGKILL
    mid-write leaves a torn file that a later resume happily merges.
    Mirrors SL008's choke-point pattern: route state through
    ``repro.experiments.fabric.checkpoint`` (``atomic_write_bytes`` /
    ``write_shard_checkpoint``) and ``write_manifest`` instead.
    """

    id = "SL011"
    name = "adhoc-sweep-state"
    description = ("file writes under experiments/ outside fabric/; "
                   "persist sweep state via "
                   "repro.experiments.fabric.checkpoint")

    _GUIDANCE = ("sweep/experiment state writes belong in "
                 "repro.experiments.fabric (atomic_write_bytes / "
                 "write_shard_checkpoint / write_manifest): atomic, "
                 "sha256-verified, resume-safe")

    _WRITE_MODES = frozenset("wax+")

    @staticmethod
    def _in_scope(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "experiments" in parts[:-1] and "fabric" not in parts

    @classmethod
    def _open_write_mode(cls, node: ast.Call) -> Optional[str]:
        """The mode string when this is ``open(...)`` for writing."""
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None or not isinstance(mode, ast.Constant) \
                or not isinstance(mode.value, str):
            return None
        if set(mode.value) & cls._WRITE_MODES:
            return mode.value
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_write_mode(node)
                if mode is not None:
                    yield ctx.finding(
                        self, node,
                        f"`open(..., {mode!r})` under experiments/: "
                        f"{self._GUIDANCE}")
            elif isinstance(func, ast.Attribute):
                name = dotted_name(func)
                if name in ("os.replace", "os.rename"):
                    yield ctx.finding(
                        self, node, f"`{name}(...)` under "
                                    f"experiments/: {self._GUIDANCE}")
                elif func.attr in ("write_text", "write_bytes"):
                    yield ctx.finding(
                        self, node,
                        f"`.{func.attr}(...)` under experiments/: "
                        f"{self._GUIDANCE}")


# ----------------------------------------------------------------------
# SL012 — per-peer object iteration inside bt/ (columnar bypass)
# ----------------------------------------------------------------------
@register
class PerPeerObjectScanRule(Rule):
    """SL012: swarm-scale code must not walk peer objects one by one.

    ``for p in self.peers.values()`` (and its comprehension/``items()``
    variants) materializes every live ``Peer`` object per call — the
    exact O(N)-objects-per-event shape the columnar swarm state
    (:mod:`repro.bt.columnar`) exists to replace with flat row arrays
    and piece bitmasks.  At flash-crowd scale (100k peers) one such
    walk on a hot path dominates the whole event loop.  Route scans
    through ``swarm.columnar`` (``interested_ids`` / ``availability``
    / ``live_neighbors`` / the adjacency rows) or the interest-index
    helpers instead; consistency checkers and cold-path accessors that
    genuinely need the objects carry an explicit suppression with a
    justification.
    """

    id = "SL012"
    name = "per-peer-object-scan"
    description = ("`... in peers.values()/items()` iteration inside "
                   "bt/; use the columnar swarm state "
                   "(repro.bt.columnar) or interest-index helpers")

    @staticmethod
    def _in_bt_package(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "bt" in parts[:-1]

    @staticmethod
    def _is_peers_scan(node: ast.AST) -> Optional[str]:
        """The offending dotted spelling, if ``node`` iterates a
        ``peers`` mapping's ``.values()``/``.items()``."""
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in ("values", "items"):
            return None
        target = node.func.value
        if isinstance(target, ast.Name) and target.id == "peers":
            return f"peers.{node.func.attr}()"
        if isinstance(target, ast.Attribute) and target.attr == "peers":
            base = dotted_name(target)
            base = base if base is not None else "<expr>.peers"
            return f"{base}.{node.func.attr}()"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_bt_package(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                spelling = self._is_peers_scan(it)
                if spelling is not None:
                    yield ctx.finding(
                        self, it,
                        f"per-peer object iteration `{spelling}` in "
                        f"bt/; walk the columnar swarm state "
                        f"(repro.bt.columnar) instead of live Peer "
                        f"objects")


# ----------------------------------------------------------------------
# SL014 — ad-hoc cross-peer delivery bypassing send_control / uplink
# ----------------------------------------------------------------------
@register
class AdHocDeliveryRule(Rule):
    """SL014: protocol messages must travel through the choke points.

    ``Swarm.send_control`` is where control-plane latency, fault
    injection (loss/delay) and the network substrate (routing, per-link
    loss/jitter, partitions) are applied; piece payloads go through the
    uplink transfer path for the same reason.  Scheduling *another
    object's* method directly (``sim.schedule(d, receiver.on_foo,
    ...)``) inside ``bt/`` smuggles a message past all of them: it
    arrives even across a partition, never drops, and pays no latency.
    Schedule only your own callbacks (``self.…``, including attributes
    reached through ``self``) or module-level timer functions; hand
    anything destined for another peer to ``send_control`` or the
    uplink.  ``bt/swarm.py`` is exempt — ``send_control`` itself is
    the choke point that schedules the receiver's handler.
    """

    id = "SL014"
    name = "ad-hoc-delivery"
    description = ("another object's method scheduled directly in "
                   "bt/; route messages through Swarm.send_control "
                   "or the uplink transfer path")

    @staticmethod
    def _in_scope(path: str) -> bool:
        parts = path.replace("\\", "/").split("/")
        return "bt" in parts[:-1] and parts[-1] != "swarm.py"

    @staticmethod
    def _attribute_root(node: ast.AST) -> Optional[ast.AST]:
        while isinstance(node, ast.Attribute):
            node = node.value
        return node

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not self._in_scope(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute) \
                    or node.func.attr not in SCHEDULE_METHODS:
                continue
            cb_index = 0 if node.func.attr == "call_now" else 1
            if len(node.args) <= cb_index \
                    or any(isinstance(a, ast.Starred)
                           for a in node.args[:cb_index + 1]):
                continue
            cb = node.args[cb_index]
            if not isinstance(cb, ast.Attribute):
                # Bare names (module-level timers) and lambdas are
                # local control flow, not cross-peer delivery.
                continue
            root = self._attribute_root(cb)
            if isinstance(root, ast.Name) and root.id == "self":
                continue
            spelling = dotted_name(cb) or "<expr>." + cb.attr
            yield ctx.finding(
                self, node,
                f"`{spelling}` scheduled directly in bt/; deliver "
                f"cross-peer messages through Swarm.send_control or "
                f"the uplink transfer path")


# ----------------------------------------------------------------------
# Metadata-only rules: produced by other passes, registered here so the
# CLI (`--list-rules`, `--enable`), config validation and suppression
# comments know them.  Their ``check`` yields nothing — the analyzer
# (SL009) and the --deep driver (SL1xx) emit the findings.
# ----------------------------------------------------------------------
class MetaRule(Rule):
    """A rule id whose findings come from a pass outside the per-file
    rule loop."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class UnusedSuppressionRule(MetaRule):
    """SL009: a ``# simlint: disable=SLxxx`` comment that suppressed
    nothing this run.

    A stale suppression is invisible until the day a *real* finding
    appears on that line and is silently swallowed.  Reported as a
    warning by default; ``--strict-suppressions`` turns it into an
    error.  Emitted by the analyzer's suppression-usage tracking.
    """

    id = "SL009"
    name = "unused-suppression"
    description = ("suppression comment that no longer matches any "
                   "finding; remove it (warning unless "
                   "--strict-suppressions)")


@register
class StaleBaselineEntryRule(MetaRule):
    """SL013: a baseline fingerprint whose finding no longer fires.

    The mirror image of SL009 for ``--baseline`` files: an entry that
    matches nothing is invisible until the day a *new* finding lands
    on the same ``rule:path:line`` and is silently swallowed by the
    stale grant.  Reported as a warning whenever ``--baseline`` is
    given; ``repro lint --deep --prune-baseline`` rewrites the file
    without the stale entries.  Emitted by the CLI's baseline
    bookkeeping.
    """

    id = "SL013"
    name = "stale-baseline-entry"
    description = ("baseline fingerprint that matches no current "
                   "finding; prune with --prune-baseline (warning)")


@register
class DeepWallClockFlowRule(MetaRule):
    """SL101: a wall-clock read (``time.time``, ``perf_counter``,
    ``datetime.now`` ...) flows — through any number of call hops —
    into a ``schedule``/rng/metrics sink.

    The per-file SL002 only sees the read itself; this deep rule
    follows the value interprocedurally and reports the full
    source→sink call chain.  Emitted by ``repro lint --deep``.
    """

    id = "SL101"
    name = "deep-wall-clock-flow"
    description = ("wall-clock value reaches a scheduling/rng/metrics "
                   "sink through the call graph (--deep)")


@register
class DeepGlobalRandomFlowRule(MetaRule):
    """SL102: a value drawn from the global ``random`` module (or an
    unseeded/``SystemRandom`` generator) flows into a deterministic
    sink.  Emitted by ``repro lint --deep``.
    """

    id = "SL102"
    name = "deep-global-random-flow"
    description = ("global-random value reaches a scheduling/rng/"
                   "metrics sink through the call graph (--deep)")


@register
class DeepAmbientFlowRule(MetaRule):
    """SL103: ambient process state — ``os.environ``/``os.getenv`` or
    a bare ``id()`` — flows into a deterministic sink.  Emitted by
    ``repro lint --deep``.
    """

    id = "SL103"
    name = "deep-ambient-env-flow"
    description = ("os.environ / id() value reaches a scheduling/rng/"
                   "metrics sink through the call graph (--deep)")


@register
class DeepOrderFlowRule(MetaRule):
    """SL104: a hash-order (``set`` iteration) or filesystem-order
    (unsorted ``os.listdir``/``os.scandir``) value flows into a
    deterministic sink without passing an order sanitizer such as
    ``sorted``.  Emitted by ``repro lint --deep``.
    """

    id = "SL104"
    name = "deep-order-flow"
    description = ("hash-order/listdir-order value reaches a "
                   "scheduling/rng/metrics sink unsorted (--deep)")


@register
class ProtocolReleaseRule(MetaRule):
    """SL110: a protocol handler calls ``ledger.release_key`` without
    static evidence that the exchange reached ``REPORTED``.

    The fair-exchange guarantee hinges on key release happening only
    after a reception report; a handler that can reach ``release_key``
    from an unreported state leaks the key.  Emitted by the protocol
    conformance pass of ``repro lint --deep``.
    """

    id = "SL110"
    name = "protocol-release-without-report"
    description = ("release_key without proof the exchange is "
                   "REPORTED (--deep, protocol conformance)")


@register
class ProtocolReopenRule(MetaRule):
    """SL111: ``ledger.reopen`` driven outside the plead path.

    Reopening is the recovery edge for an honestly-lost key and is
    only legal from plead handling; anywhere else it would let a peer
    replay reciprocation.  Emitted by ``repro lint --deep``.
    """

    id = "SL111"
    name = "protocol-reopen-outside-plead"
    description = ("reopen called outside plead handling (--deep, "
                   "protocol conformance)")


@register
class ProtocolIllegalTransitionRule(MetaRule):
    """SL112: a handler provably drives a transition the exchange
    lifecycle forbids (the facts at the call site exclude every legal
    source state).  Emitted by ``repro lint --deep``.
    """

    id = "SL112"
    name = "protocol-illegal-transition"
    description = ("ledger op whose proven state set excludes every "
                   "legal source state (--deep, protocol conformance)")


@register
class RaceConflictingWritesRule(MetaRule):
    """SL201: two handlers that can fire at the same instant both
    write a matching state field (and the writes do not commute).

    The engine's ``(time, seq)`` tie-break makes the outcome
    deterministic *today*, but the order is load-bearing: coalescing,
    batching, or any reordering of same-instant events changes the
    final value.  Emitted by the simrace pass of ``repro lint
    --deep``; the diagnostic carries both schedule-site→field effect
    chains.
    """

    id = "SL201"
    name = "race-conflicting-writes"
    description = ("co-schedulable handlers write conflicting state "
                   "(--deep, simrace)")


@register
class RaceReadWriteOverlapRule(MetaRule):
    """SL202: a handler reads state that a co-schedulable handler
    writes — what the reader observes depends on the same-instant
    ``seq`` order.

    Relies on the engine's same-time FIFO contract (pinned by the
    property tests in ``tests/test_engine_ordering.py``); any
    transform that breaks that contract flips these reads.  Emitted
    by the simrace pass of ``repro lint --deep``.
    """

    id = "SL202"
    name = "race-read-write-overlap"
    description = ("co-schedulable handler reads state another "
                   "writes at the same instant (--deep, simrace)")


@register
class RaceUncoalescableTimerRule(MetaRule):
    """SL203: a periodic timer handler is provably unsafe to coalesce.

    Collapsing N same-tick invocations into one batch (the ROADMAP
    item 1 scaling transform) is only trace-safe when the invocations
    commute with each other: a handler that draws from the shared
    rng, plainly writes shared/unknown-receiver state, or reads what
    another instance's invocation writes, does not.  Emitted by the
    simrace pass of ``repro lint --deep``; a baselined SL203 is the
    checked-in inventory of timers the coalescing optimizer must not
    touch.
    """

    id = "SL203"
    name = "race-uncoalescable-timer"
    description = ("periodic handler provably unsafe to coalesce "
                   "(--deep, simrace; ROADMAP item 1 gate)")


@register
class HeatPerEventAllocationRule(MetaRule):
    """SL301: an allocation sits in a per-event hot path.

    The hot-region inference marks every function reachable from
    same-instant/event-driven schedule sites and protocol message
    handlers; an allocation there (fresh container, tuple/dataclass
    construction, string formatting) is paid once per simulation
    event — the per-event garbage bill that caps 10^5→10^6-peer
    swarms.  Emitted by the simheat pass of ``repro lint --deep``;
    the diagnostic lists the sites and the seed→function chain.
    """

    id = "SL301"
    name = "heat-per-event-allocation"
    description = ("allocation in a per-event hot path (--deep, "
                   "simheat)")


@register
class HeatSwarmScaleAllocationRule(MetaRule):
    """SL302: an O(peers)/O(pieces)-scale copy, comprehension or
    slicing executes in a per-event region.

    The interprocedural generalization of the file-local SL010/SL012
    rescan rules: the allocation's *size* grows with the swarm, so
    per-event cost is O(N) where the engine budget is O(1).  Emitted
    by the simheat pass of ``repro lint --deep``.
    """

    id = "SL302"
    name = "heat-swarm-scale-allocation"
    description = ("O(swarm)-scale copy/rescan allocation in a "
                   "per-event region (--deep, simheat)")


@register
class HeatPerEventClosureRule(MetaRule):
    """SL303: a closure, lambda, nested ``def`` or
    ``functools.partial`` is created inside a per-event region.

    The code object never changes — only the cell bindings do — so
    the per-event function-object churn should be hoisted to setup: a
    bound method, a module-level function, or a partial built once.
    Emitted by the simheat pass of ``repro lint --deep``.
    """

    id = "SL303"
    name = "heat-per-event-closure"
    description = ("closure/partial created per event; hoist to setup "
                   "(--deep, simheat)")


@register
class HeatPoolableConstructionRule(MetaRule):
    """SL304: a per-event region constructs a poolable type directly
    although a free-list exists for it.

    Engine event handles and piece-pump messages are acquired and
    dropped once per event; the engine's ``pool_events`` free-list
    and the plain-piece message pool recycle them.  A direct
    constructor call in a hot path bypasses the pool and re-opens the
    allocation bill the pool closed.  Emitted by the simheat pass of
    ``repro lint --deep``.
    """

    id = "SL304"
    name = "heat-poolable-construction"
    description = ("hot-path construction of a poolable type; use its "
                   "free-list (--deep, simheat)")


def all_rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    return sorted(RULES)
