"""Runtime simulation sanitizer.

Where :mod:`repro.devtools.rules` checks *source*, the sanitizer
checks *executions*.  ``Simulator(sanitize=True)`` attaches a
:class:`SimulationSanitizer` that the engine, the exchange ledger and
the bandwidth model call into at every protocol-relevant step, keeping
independent shadow state and raising :class:`SanitizerError` the
moment an invariant breaks:

* **heap-time monotonicity** — fired events never move the clock
  backwards, and no event carries a non-finite or negative time;
* **bandwidth conservation** — an uplink never reports more kilobytes
  sent than its capacity allows over its open window, and its slot
  count stays within ``[0, n_slots]``;
* **piece conservation** — a completed transfer credits exactly the
  piece size it started with; an aborted one never credits more;
* **almost-fair exchange** — a key is only released for a transaction
  whose reception report the sanitizer itself observed, and a
  *truthful* report only follows a reciprocation the sanitizer
  observed (the one sanctioned exception, a colluding false report,
  is tracked separately — it is a modelled attack, not a bug).

Because the shadow state is independent of the ledger's own state
machine, the sanitizer catches corruption that bypasses the public
API (e.g. a transaction whose ``state`` field was overwritten), not
just illegal calls the ledger would refuse anyway.

The sanitizer keeps a bounded diagnostic trace of recent hook events;
every :class:`SanitizerError` message ends with it, so a failure deep
in a million-event run still shows the path that led there.

``Simulator(sanitize="races")`` additionally attaches a
:class:`RaceReporter` — the dynamic counterpart of ``simlint``'s
static SL2xx race rules.  It records the field-level read/write
footprint of every event (by temporarily instrumenting
``__getattribute__``/``__setattr__`` on the watched state classes) and
reports pairs of *same-instant* events whose footprints conflict:
both wrote a field, or one read what the other wrote.  Such pairs are
exactly the events whose outcome depends on the engine's ``(time,
seq)`` tie-break — deterministic today, but unsafe to coalesce or
reorder (ROADMAP item 1).  Unlike the invariant sanitizer it never
raises: a conflict is an order-sensitivity *hazard*, not a bug, so it
collects bounded, deduplicated :class:`RaceConflict` records for the
caller to inspect (``repro chaos --races`` prints them).
"""

from __future__ import annotations

import math
from collections import deque
from typing import (Any, Deque, Dict, List, NamedTuple, Optional,
                    Sequence, Set, Tuple)

#: Relative slack for floating-point accumulation in conservation
#: checks.  Uplink accounting sums at most a few thousand transfers,
#: so parts-per-million covers the worst realistic drift.
EPS = 1e-6

#: Diagnostic trace depth.
TRACE_DEPTH = 32


class SanitizerError(AssertionError):
    """A simulation invariant was violated at runtime."""


class SimulationSanitizer:
    """Shadow-state invariant checker for one :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulator being watched (for the clock in diagnostics).
        May be None in unit tests exercising single hooks.
    """

    def __init__(self, sim: Optional[Any] = None):
        self.sim = sim
        self.checks_run = 0
        self._trace: Deque[str] = deque(maxlen=TRACE_DEPTH)
        self._last_event_time = -math.inf
        # Exchange shadow state, keyed by transaction id.
        self._delivered: Set[int] = set()
        self._reciprocated: Set[int] = set()
        self._reported: Dict[int, bool] = {}  # id -> truthful
        self._forgiven: Set[int] = set()
        self._released: Set[int] = set()
        self._aborted: Set[int] = set()
        self.collusion_releases = 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _note(self, message: str) -> None:
        now = getattr(self.sim, "now", None)
        stamp = f"t={now:.6g}" if isinstance(now, float) else "t=?"
        self._trace.append(f"[{stamp}] {message}")

    def _fail(self, message: str) -> None:
        trace = "\n  ".join(self._trace) or "(empty)"
        raise SanitizerError(
            f"{message}\nrecent simulation trace (oldest first):\n"
            f"  {trace}")

    # ------------------------------------------------------------------
    # Engine hooks (repro.sim.engine)
    # ------------------------------------------------------------------
    def on_schedule(self, handle: Any) -> None:
        """A new event entered the heap."""
        self.checks_run += 1
        time = handle.time
        if not isinstance(time, (int, float)) or not math.isfinite(time):
            self._fail(f"event scheduled at non-finite time {time!r}")
        if time < 0:
            self._fail(f"event scheduled at negative time {time!r}")

    def on_event(self, handle: Any) -> None:
        """The engine is about to fire ``handle``."""
        self.checks_run += 1
        if handle.time < self._last_event_time:
            self._fail(
                f"heap-time monotonicity violated: firing event at "
                f"t={handle.time!r} after t={self._last_event_time!r}")
        sim_now = getattr(self.sim, "now", None)
        if sim_now is not None and handle.time < sim_now - 0.0:
            self._fail(
                f"event at t={handle.time!r} fires behind the clock "
                f"(now={sim_now!r})")
        self._last_event_time = handle.time
        self._note(f"event seq={handle.seq} at t={handle.time:.6g}")

    # ------------------------------------------------------------------
    # Bandwidth hooks (repro.net.bandwidth)
    # ------------------------------------------------------------------
    def on_transfer_start(self, uplink: Any, transfer: Any) -> None:
        """An uplink slot was occupied."""
        self.checks_run += 1
        if uplink.busy_slots < 0 or uplink.busy_slots > uplink.n_slots:
            self._fail(
                f"uplink busy_slots={uplink.busy_slots} outside "
                f"[0, {uplink.n_slots}]")
        if transfer.size_kb < 0:
            self._fail(f"negative transfer size {transfer.size_kb!r}")
        self._note(f"transfer start {transfer.size_kb:g} KB "
                   f"({uplink.busy_slots}/{uplink.n_slots} slots)")

    def on_transfer_end(self, uplink: Any, transfer: Any,
                        credited_kb: float) -> None:
        """A transfer completed or aborted, crediting ``credited_kb``."""
        self.checks_run += 1
        if uplink.busy_slots < 0 or uplink.busy_slots > uplink.n_slots:
            self._fail(
                f"uplink busy_slots={uplink.busy_slots} outside "
                f"[0, {uplink.n_slots}]")
        if credited_kb < 0 or credited_kb > transfer.size_kb * (1 + EPS):
            self._fail(
                f"piece conservation violated: transfer of "
                f"{transfer.size_kb:g} KB credited {credited_kb:g} KB")
        self._check_uplink_conservation(uplink)
        self._note(f"transfer end +{credited_kb:g} KB "
                   f"(total {uplink.kb_sent:g} KB)")

    def _check_uplink_conservation(self, uplink: Any) -> None:
        now = uplink.sim.now
        end = uplink.closed_at if uplink.closed_at is not None else now
        window_s = max(0.0, end - uplink.opened_at)
        budget_kb = uplink.capacity_kbps * window_s / 8.0
        if uplink.kb_sent > budget_kb * (1 + EPS) + EPS:
            self._fail(
                f"bandwidth conservation violated: uplink sent "
                f"{uplink.kb_sent:g} KB but capacity "
                f"{uplink.capacity_kbps:g} Kbps over {window_s:g} s "
                f"allows only {budget_kb:g} KB")

    # ------------------------------------------------------------------
    # Flow-control hooks (repro.core.flow_control via the protocol)
    # ------------------------------------------------------------------
    def on_flow_underflow(self, donor_id: str, neighbor_id: str,
                          benign: bool = False) -> None:
        """A flow window was drained past empty.

        ``benign`` means the owner can account for it (the neighbor's
        state was dropped by ``forget`` after a disconnect, so a
        straggling reciprocation confirm legitimately finds an empty
        window).  A non-benign underflow is a double confirm/write-off
        for the same exchange — exactly the accounting bug that would
        re-open a blocked neighbor early if the count went negative.
        """
        self.checks_run += 1
        if benign:
            self._note(f"flow underflow {donor_id}->{neighbor_id} "
                       f"(benign: neighbor state was forgotten)")
            return
        self._fail(
            f"flow-control window underflow: donor {donor_id} drained "
            f"an empty window for neighbor {neighbor_id} that was "
            f"never forgotten (duplicate reciprocation confirm or "
            f"write-off for one exchange)")

    # ------------------------------------------------------------------
    # Exchange hooks (repro.core.exchange)
    # ------------------------------------------------------------------
    def on_transaction_created(self, tx: Any) -> None:
        self.checks_run += 1
        self._note(f"tx {tx.transaction_id} created "
                   f"({tx.donor_id}->{tx.requestor_id}, "
                   f"payee={tx.payee_id})")

    def on_delivered(self, tx: Any) -> None:
        self.checks_run += 1
        self._delivered.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} delivered")

    def on_reciprocated(self, tx: Any, by_tx: Any) -> None:
        """``by_tx``'s delivery fulfilled ``tx``'s reciprocation duty."""
        self.checks_run += 1
        if tx.transaction_id not in self._delivered:
            self._fail(
                f"transaction {tx.transaction_id} reciprocated before "
                f"its own delivery was observed")
        self._reciprocated.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} reciprocated by "
                   f"tx {by_tx.transaction_id}")

    def on_report(self, tx: Any, truthful: bool) -> None:
        """A reception report reached the donor."""
        self.checks_run += 1
        if truthful and tx.transaction_id not in self._reciprocated:
            self._fail(
                f"truthful reception report for transaction "
                f"{tx.transaction_id} without an observed reciprocation")
        self._reported[tx.transaction_id] = truthful
        kind = "truthful" if truthful else "COLLUSIVE"
        self._note(f"tx {tx.transaction_id} reported ({kind})")

    def on_forgive(self, tx: Any) -> None:
        """The donor waived reciprocation (sanctioned escape hatch)."""
        self.checks_run += 1
        if tx.transaction_id not in self._delivered:
            self._fail(
                f"transaction {tx.transaction_id} forgiven before "
                f"delivery")
        self._forgiven.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} forgiven")

    def on_reopen(self, tx: Any) -> None:
        """A reciprocated-but-unreported transaction rolled back to
        DELIVERED (the silent-payee recovery of Sec. II-B4).

        The shadow reciprocation/report facts are withdrawn: the
        requestor owes a *fresh* reciprocation, and a key released on
        the stale evidence must fail as a violation rather than ride
        on state from before the rollback.
        """
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id not in self._reciprocated:
            self._fail(
                f"transaction {tx_id} reopened but no reciprocation "
                f"was ever observed (reopen is only legal from "
                f"RECIPROCATED)")
        if tx_id in self._released:
            self._fail(
                f"transaction {tx_id} reopened after its key was "
                f"released")
        self._reciprocated.discard(tx_id)
        self._reported.pop(tx_id, None)
        self._note(f"tx {tx_id} reopened (reciprocation withdrawn)")

    def on_abort(self, tx: Any) -> None:
        """A transaction died (unrecoverable departure / write-off)."""
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id in self._released:
            self._fail(
                f"transaction {tx_id} aborted after its key was "
                f"released (completed exchanges cannot abort)")
        self._aborted.add(tx_id)
        self._note(f"tx {tx_id} aborted")

    def on_key_release(self, tx: Any) -> None:
        """The fair-exchange core: no observed report, no key."""
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id in self._released:
            self._fail(f"key for transaction {tx_id} released twice")
        if tx_id in self._aborted:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released after the transaction aborted")
        if tx_id in self._forgiven:
            self._released.add(tx_id)
            self._note(f"tx {tx_id} key released (forgiven)")
            return
        if tx_id not in self._reported:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released before any reception report was "
                f"observed (early key release)")
        if self._reported[tx_id] is True \
                and tx_id not in self._reciprocated:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released on a truthful report but no "
                f"reciprocal upload completed")
        if self._reported[tx_id] is False:
            self.collusion_releases += 1
        self._released.add(tx_id)
        self._note(f"tx {tx_id} key released")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SimulationSanitizer(checks={self.checks_run}, "
                f"released={len(self._released)}, "
                f"collusive={self.collusion_releases})")


# ======================================================================
# Runtime race reporter (sanitize="races")
# ======================================================================

#: At most this many distinct conflict records are retained; the total
#: counter keeps counting past the cap.
MAX_CONFLICTS = 200

#: Fully-qualified default watch list.  Mirrors the class universe the
#: static effect inference (repro.devtools.effects) tracks: protocol
#: and ledger state whose same-instant interleaving is trace-relevant.
#: Entries that fail to import are skipped (the reporter must work in
#: engine-only unit tests with no swarm stack loaded).
_DEFAULT_WATCH = (
    ("repro.bt.peer", "Peer"),
    ("repro.bt.torrent", "PieceBook"),
    ("repro.bt.choking", "Choker"),
    ("repro.bt.choking", "ContributionTracker"),
    ("repro.bt.choking", "DeficitLedger"),
    ("repro.core.exchange", "ExchangeLedger"),
    ("repro.core.transaction", "Transaction"),
    ("repro.analysis.metrics", "PeerRecord"),
    ("repro.analysis.metrics", "RecoveryCounters"),
)

#: Classes currently instrumented, mapping class -> [orig_getattribute,
#: orig_setattr, had_own_getattribute, had_own_setattr, refcount].
#: Refcounted so two live reporters (e.g. parallel unit tests in one
#: process) can share a patch and uninstall restores the original
#: methods only when the last reporter detaches.
_PATCHED: Dict[type, list] = {}

#: The reporter currently recording, or None.  Only set between
#: ``on_event_begin`` and ``on_event_end`` so instrumented classes pay
#: a single global load + None check outside event execution.
_ACTIVE: Optional["RaceReporter"] = None

_object_getattribute = object.__getattribute__


class EventProv(NamedTuple):
    """Provenance of one fired event, captured before the engine
    clears the handle's callback."""
    seq: int
    time: float
    callback: str


class RaceConflict(NamedTuple):
    """Two same-instant events touched the same field conflictingly.

    ``kind`` is ``"write/write"`` (both wrote), ``"read/write"`` (the
    first read what the second then wrote) or ``"write/read"`` (the
    second read what the first wrote).  ``first``/``second`` fire in
    seq order; swapping them could change the trace, which is exactly
    what makes the pair unsafe to coalesce or reorder.
    """
    time: float
    cls: str
    field: str
    kind: str
    first: EventProv
    second: EventProv

    def describe(self) -> str:
        return (f"t={self.time:.6g} {self.cls}.{self.field} "
                f"{self.kind}: {self.first.callback} "
                f"(seq {self.first.seq}) vs {self.second.callback} "
                f"(seq {self.second.seq})")


def _patch_class(cls: type) -> None:
    """Instrument ``cls`` so attribute reads/writes reach the active
    reporter.  Idempotent per reporter via the refcount."""
    patch = _PATCHED.get(cls)
    if patch is not None:
        patch[4] += 1
        return
    orig_ga = cls.__getattribute__
    orig_sa = cls.__setattr__
    had_ga = "__getattribute__" in cls.__dict__
    had_sa = "__setattr__" in cls.__dict__

    def recording_getattribute(self, name, _orig=orig_ga):
        rec = _ACTIVE
        if rec is not None:
            rec._record_read(self, name)
        return _orig(self, name)

    def recording_setattr(self, name, value, _orig=orig_sa):
        rec = _ACTIVE
        if rec is not None:
            rec._record_write(self, name)
        _orig(self, name, value)

    cls.__getattribute__ = recording_getattribute  # type: ignore
    cls.__setattr__ = recording_setattr  # type: ignore
    _PATCHED[cls] = [orig_ga, orig_sa, had_ga, had_sa, 1]


def _unpatch_class(cls: type) -> None:
    patch = _PATCHED.get(cls)
    if patch is None:
        return
    patch[4] -= 1
    if patch[4] > 0:
        return
    orig_ga, orig_sa, had_ga, had_sa = patch[:4]
    # Restore inheritance rather than pinning a bound slot wrapper on
    # classes that never defined these methods themselves.
    if had_ga:
        cls.__getattribute__ = orig_ga  # type: ignore
    else:
        del cls.__getattribute__
    if had_sa:
        cls.__setattr__ = orig_sa  # type: ignore
    else:
        del cls.__setattr__
    del _PATCHED[cls]


class RaceReporter:
    """Dynamic same-instant conflict detector (see module docstring).

    Attach via ``Simulator(sanitize="races")``.  The engine calls
    :meth:`on_event_begin` / :meth:`on_event_end` around every fired
    event; attribute accesses on watched classes during that window
    are recorded into the event's footprint.  Footprints accumulate
    per *timestamp batch* — the maximal run of events sharing one
    exact event time — and each new event's footprint is checked
    against the batch's accumulated readers/writers.

    The reporter is a diagnostic collector, never an oracle that
    raises: real swarms legitimately produce same-instant commutative
    touches (metric increments, disjoint peers), so conflicts are
    deduplicated by ``(class, field, callback-pair, kind)`` and capped
    at :data:`MAX_CONFLICTS` retained records.

    Call :meth:`uninstall` when done — ``run_swarm`` does this in a
    ``finally`` so instrumented classes never leak patched methods
    into later runs.
    """

    def __init__(self, sim: Optional[Any] = None,
                 watch: Optional[Sequence[type]] = None):
        self.sim = sim
        self.events_seen = 0
        self.total_conflicts = 0
        self.conflicts: List[RaceConflict] = []
        self._seen_pairs: Set[Tuple[str, str, str, str, str]] = set()
        self._classes: List[type] = []
        # Batch state: accumulated first-toucher per (id(obj), field).
        self._batch_time: Optional[float] = None
        self._batch_writers: Dict[Tuple[int, str],
                                  Tuple[EventProv, str]] = {}
        self._batch_readers: Dict[Tuple[int, str],
                                  Tuple[EventProv, str]] = {}
        # Strong refs to touched objects for the batch lifetime, so
        # id() keys cannot be reused by freshly allocated objects.
        self._batch_refs: List[Any] = []
        # Current-event state.
        self._current: Optional[EventProv] = None
        self._cur_reads: Dict[Tuple[int, str], Tuple[Any, str]] = {}
        self._cur_writes: Dict[Tuple[int, str], Tuple[Any, str]] = {}
        self._installed = False
        if watch is not None:
            classes = list(watch)
        else:
            classes = self._resolve_default_watch()
        for cls in classes:
            self.watch(cls)
        self._installed = True

    @staticmethod
    def _resolve_default_watch() -> List[type]:
        import importlib
        classes = []
        for module_name, cls_name in _DEFAULT_WATCH:
            try:
                module = importlib.import_module(module_name)
                classes.append(getattr(module, cls_name))
            except (ImportError, AttributeError):  # pragma: no cover
                continue
        return classes

    def watch(self, cls: type) -> None:
        """Add ``cls`` to the instrumented set (idempotent)."""
        if cls in self._classes:
            return
        self._classes.append(cls)
        _patch_class(cls)

    def uninstall(self) -> None:
        """Detach from every watched class and drop batch refs.
        Idempotent; safe to call from a ``finally``."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None
        if not self._installed and not self._classes:
            return
        for cls in self._classes:
            _unpatch_class(cls)
        self._classes = []
        self._installed = False
        self._batch_refs = []
        self._batch_writers = {}
        self._batch_readers = {}

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_event_begin(self, handle: Any) -> None:
        """Called by the engine just before ``handle`` fires, while
        its callback is still attached."""
        global _ACTIVE
        time = handle.time
        # Batch membership is exact float equality *by construction*:
        # same-instant events carry the identical time value, so this
        # is set partitioning, not a tolerance comparison.
        if time != self._batch_time:  # simlint: disable=SL004 -- batch boundary is exact same-instant identity, not a tolerance check
            self._start_batch(time)
        callback = handle.callback
        name = getattr(callback, "__qualname__", "") or repr(callback)
        self._current = EventProv(handle.seq, time, name)
        self._cur_reads = {}
        self._cur_writes = {}
        self.events_seen += 1
        _ACTIVE = self

    def on_event_end(self) -> None:
        """Called by the engine after the event's callback returned;
        checks this event's footprint against the batch and folds it
        in."""
        global _ACTIVE
        _ACTIVE = None
        cur = self._current
        if cur is None:  # pragma: no cover - defensive
            return
        self._current = None
        writers = self._batch_writers
        readers = self._batch_readers
        for key, (obj, cls_name) in self._cur_writes.items():
            prior_write = writers.get(key)
            if prior_write is not None:
                self._conflict("write/write", key[1], cls_name,
                               prior_write[0], cur)
            else:
                prior_read = readers.get(key)
                if prior_read is not None:
                    self._conflict("read/write", key[1], cls_name,
                                   prior_read[0], cur)
        for key, (obj, cls_name) in self._cur_reads.items():
            prior_write = writers.get(key)
            if prior_write is not None:
                self._conflict("write/read", key[1], cls_name,
                               prior_write[0], cur)
        for key, (obj, cls_name) in self._cur_writes.items():
            if key not in writers:
                writers[key] = (cur, cls_name)
                self._batch_refs.append(obj)
        for key, (obj, cls_name) in self._cur_reads.items():
            if key not in readers:
                readers[key] = (cur, cls_name)
                self._batch_refs.append(obj)
        self._cur_reads = {}
        self._cur_writes = {}

    def _start_batch(self, time: float) -> None:
        self._batch_time = time
        self._batch_writers = {}
        self._batch_readers = {}
        self._batch_refs = []

    # ------------------------------------------------------------------
    # Recording (called from instrumented classes)
    # ------------------------------------------------------------------
    def _record_read(self, obj: Any, name: str) -> None:
        if self._current is None:  # pragma: no cover - defensive
            return
        try:
            inst = _object_getattribute(obj, "__dict__")
        except AttributeError:  # pragma: no cover - slotted class
            return
        if name not in inst:
            # Method/class-attribute lookup, not instance state.
            return
        key = (id(obj), name)
        if key in self._cur_writes or key in self._cur_reads:
            return
        self._cur_reads[key] = (obj, type(obj).__name__)

    def _record_write(self, obj: Any, name: str) -> None:
        if self._current is None:  # pragma: no cover - defensive
            return
        key = (id(obj), name)
        if key not in self._cur_writes:
            self._cur_writes[key] = (obj, type(obj).__name__)

    # ------------------------------------------------------------------
    # Conflict accounting
    # ------------------------------------------------------------------
    def _conflict(self, kind: str, field: str, cls_name: str,
                  first: EventProv, second: EventProv) -> None:
        self.total_conflicts += 1
        dedup = (cls_name, field, first.callback, second.callback, kind)
        if dedup in self._seen_pairs:
            return
        self._seen_pairs.add(dedup)
        if len(self.conflicts) < MAX_CONFLICTS:
            self.conflicts.append(RaceConflict(
                time=second.time, cls=cls_name, field=field, kind=kind,
                first=first, second=second))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def conflict_pairs(self) -> List[str]:
        """Human-readable, deduplicated conflict descriptions."""
        return [c.describe() for c in self.conflicts]

    def summary(self) -> Dict[str, Any]:
        return {
            "events_seen": self.events_seen,
            "total_conflicts": self.total_conflicts,
            "distinct_conflicts": len(self._seen_pairs),
            "retained": len(self.conflicts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"RaceReporter(events={self.events_seen}, "
                f"conflicts={self.total_conflicts}, "
                f"distinct={len(self._seen_pairs)})")
