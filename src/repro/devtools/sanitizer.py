"""Runtime simulation sanitizer.

Where :mod:`repro.devtools.rules` checks *source*, the sanitizer
checks *executions*.  ``Simulator(sanitize=True)`` attaches a
:class:`SimulationSanitizer` that the engine, the exchange ledger and
the bandwidth model call into at every protocol-relevant step, keeping
independent shadow state and raising :class:`SanitizerError` the
moment an invariant breaks:

* **heap-time monotonicity** — fired events never move the clock
  backwards, and no event carries a non-finite or negative time;
* **bandwidth conservation** — an uplink never reports more kilobytes
  sent than its capacity allows over its open window, and its slot
  count stays within ``[0, n_slots]``;
* **piece conservation** — a completed transfer credits exactly the
  piece size it started with; an aborted one never credits more;
* **almost-fair exchange** — a key is only released for a transaction
  whose reception report the sanitizer itself observed, and a
  *truthful* report only follows a reciprocation the sanitizer
  observed (the one sanctioned exception, a colluding false report,
  is tracked separately — it is a modelled attack, not a bug).

Because the shadow state is independent of the ledger's own state
machine, the sanitizer catches corruption that bypasses the public
API (e.g. a transaction whose ``state`` field was overwritten), not
just illegal calls the ledger would refuse anyway.

The sanitizer keeps a bounded diagnostic trace of recent hook events;
every :class:`SanitizerError` message ends with it, so a failure deep
in a million-event run still shows the path that led there.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Optional, Set

#: Relative slack for floating-point accumulation in conservation
#: checks.  Uplink accounting sums at most a few thousand transfers,
#: so parts-per-million covers the worst realistic drift.
EPS = 1e-6

#: Diagnostic trace depth.
TRACE_DEPTH = 32


class SanitizerError(AssertionError):
    """A simulation invariant was violated at runtime."""


class SimulationSanitizer:
    """Shadow-state invariant checker for one :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulator being watched (for the clock in diagnostics).
        May be None in unit tests exercising single hooks.
    """

    def __init__(self, sim: Optional[Any] = None):
        self.sim = sim
        self.checks_run = 0
        self._trace: Deque[str] = deque(maxlen=TRACE_DEPTH)
        self._last_event_time = -math.inf
        # Exchange shadow state, keyed by transaction id.
        self._delivered: Set[int] = set()
        self._reciprocated: Set[int] = set()
        self._reported: Dict[int, bool] = {}  # id -> truthful
        self._forgiven: Set[int] = set()
        self._released: Set[int] = set()
        self._aborted: Set[int] = set()
        self.collusion_releases = 0

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def _note(self, message: str) -> None:
        now = getattr(self.sim, "now", None)
        stamp = f"t={now:.6g}" if isinstance(now, float) else "t=?"
        self._trace.append(f"[{stamp}] {message}")

    def _fail(self, message: str) -> None:
        trace = "\n  ".join(self._trace) or "(empty)"
        raise SanitizerError(
            f"{message}\nrecent simulation trace (oldest first):\n"
            f"  {trace}")

    # ------------------------------------------------------------------
    # Engine hooks (repro.sim.engine)
    # ------------------------------------------------------------------
    def on_schedule(self, handle: Any) -> None:
        """A new event entered the heap."""
        self.checks_run += 1
        time = handle.time
        if not isinstance(time, (int, float)) or not math.isfinite(time):
            self._fail(f"event scheduled at non-finite time {time!r}")
        if time < 0:
            self._fail(f"event scheduled at negative time {time!r}")

    def on_event(self, handle: Any) -> None:
        """The engine is about to fire ``handle``."""
        self.checks_run += 1
        if handle.time < self._last_event_time:
            self._fail(
                f"heap-time monotonicity violated: firing event at "
                f"t={handle.time!r} after t={self._last_event_time!r}")
        sim_now = getattr(self.sim, "now", None)
        if sim_now is not None and handle.time < sim_now - 0.0:
            self._fail(
                f"event at t={handle.time!r} fires behind the clock "
                f"(now={sim_now!r})")
        self._last_event_time = handle.time
        self._note(f"event seq={handle.seq} at t={handle.time:.6g}")

    # ------------------------------------------------------------------
    # Bandwidth hooks (repro.net.bandwidth)
    # ------------------------------------------------------------------
    def on_transfer_start(self, uplink: Any, transfer: Any) -> None:
        """An uplink slot was occupied."""
        self.checks_run += 1
        if uplink.busy_slots < 0 or uplink.busy_slots > uplink.n_slots:
            self._fail(
                f"uplink busy_slots={uplink.busy_slots} outside "
                f"[0, {uplink.n_slots}]")
        if transfer.size_kb < 0:
            self._fail(f"negative transfer size {transfer.size_kb!r}")
        self._note(f"transfer start {transfer.size_kb:g} KB "
                   f"({uplink.busy_slots}/{uplink.n_slots} slots)")

    def on_transfer_end(self, uplink: Any, transfer: Any,
                        credited_kb: float) -> None:
        """A transfer completed or aborted, crediting ``credited_kb``."""
        self.checks_run += 1
        if uplink.busy_slots < 0 or uplink.busy_slots > uplink.n_slots:
            self._fail(
                f"uplink busy_slots={uplink.busy_slots} outside "
                f"[0, {uplink.n_slots}]")
        if credited_kb < 0 or credited_kb > transfer.size_kb * (1 + EPS):
            self._fail(
                f"piece conservation violated: transfer of "
                f"{transfer.size_kb:g} KB credited {credited_kb:g} KB")
        self._check_uplink_conservation(uplink)
        self._note(f"transfer end +{credited_kb:g} KB "
                   f"(total {uplink.kb_sent:g} KB)")

    def _check_uplink_conservation(self, uplink: Any) -> None:
        now = uplink.sim.now
        end = uplink.closed_at if uplink.closed_at is not None else now
        window_s = max(0.0, end - uplink.opened_at)
        budget_kb = uplink.capacity_kbps * window_s / 8.0
        if uplink.kb_sent > budget_kb * (1 + EPS) + EPS:
            self._fail(
                f"bandwidth conservation violated: uplink sent "
                f"{uplink.kb_sent:g} KB but capacity "
                f"{uplink.capacity_kbps:g} Kbps over {window_s:g} s "
                f"allows only {budget_kb:g} KB")

    # ------------------------------------------------------------------
    # Exchange hooks (repro.core.exchange)
    # ------------------------------------------------------------------
    def on_transaction_created(self, tx: Any) -> None:
        self.checks_run += 1
        self._note(f"tx {tx.transaction_id} created "
                   f"({tx.donor_id}->{tx.requestor_id}, "
                   f"payee={tx.payee_id})")

    def on_delivered(self, tx: Any) -> None:
        self.checks_run += 1
        self._delivered.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} delivered")

    def on_reciprocated(self, tx: Any, by_tx: Any) -> None:
        """``by_tx``'s delivery fulfilled ``tx``'s reciprocation duty."""
        self.checks_run += 1
        if tx.transaction_id not in self._delivered:
            self._fail(
                f"transaction {tx.transaction_id} reciprocated before "
                f"its own delivery was observed")
        self._reciprocated.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} reciprocated by "
                   f"tx {by_tx.transaction_id}")

    def on_report(self, tx: Any, truthful: bool) -> None:
        """A reception report reached the donor."""
        self.checks_run += 1
        if truthful and tx.transaction_id not in self._reciprocated:
            self._fail(
                f"truthful reception report for transaction "
                f"{tx.transaction_id} without an observed reciprocation")
        self._reported[tx.transaction_id] = truthful
        kind = "truthful" if truthful else "COLLUSIVE"
        self._note(f"tx {tx.transaction_id} reported ({kind})")

    def on_forgive(self, tx: Any) -> None:
        """The donor waived reciprocation (sanctioned escape hatch)."""
        self.checks_run += 1
        if tx.transaction_id not in self._delivered:
            self._fail(
                f"transaction {tx.transaction_id} forgiven before "
                f"delivery")
        self._forgiven.add(tx.transaction_id)
        self._note(f"tx {tx.transaction_id} forgiven")

    def on_reopen(self, tx: Any) -> None:
        """A reciprocated-but-unreported transaction rolled back to
        DELIVERED (the silent-payee recovery of Sec. II-B4).

        The shadow reciprocation/report facts are withdrawn: the
        requestor owes a *fresh* reciprocation, and a key released on
        the stale evidence must fail as a violation rather than ride
        on state from before the rollback.
        """
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id not in self._reciprocated:
            self._fail(
                f"transaction {tx_id} reopened but no reciprocation "
                f"was ever observed (reopen is only legal from "
                f"RECIPROCATED)")
        if tx_id in self._released:
            self._fail(
                f"transaction {tx_id} reopened after its key was "
                f"released")
        self._reciprocated.discard(tx_id)
        self._reported.pop(tx_id, None)
        self._note(f"tx {tx_id} reopened (reciprocation withdrawn)")

    def on_abort(self, tx: Any) -> None:
        """A transaction died (unrecoverable departure / write-off)."""
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id in self._released:
            self._fail(
                f"transaction {tx_id} aborted after its key was "
                f"released (completed exchanges cannot abort)")
        self._aborted.add(tx_id)
        self._note(f"tx {tx_id} aborted")

    def on_key_release(self, tx: Any) -> None:
        """The fair-exchange core: no observed report, no key."""
        self.checks_run += 1
        tx_id = tx.transaction_id
        if tx_id in self._released:
            self._fail(f"key for transaction {tx_id} released twice")
        if tx_id in self._aborted:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released after the transaction aborted")
        if tx_id in self._forgiven:
            self._released.add(tx_id)
            self._note(f"tx {tx_id} key released (forgiven)")
            return
        if tx_id not in self._reported:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released before any reception report was "
                f"observed (early key release)")
        if self._reported[tx_id] is True \
                and tx_id not in self._reciprocated:
            self._fail(
                f"fair-exchange violation: key for transaction "
                f"{tx_id} released on a truthful report but no "
                f"reciprocal upload completed")
        if self._reported[tx_id] is False:
            self.collusion_releases += 1
        self._released.add(tx_id)
        self._note(f"tx {tx_id} key released")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"SimulationSanitizer(checks={self.checks_run}, "
                f"released={len(self._released)}, "
                f"collusive={self.collusion_releases})")
