"""Interprocedural nondeterminism taint analysis (``simlint --deep``).

The per-file rules flag a wall-clock *call* (SL002) or a global
``random`` *import* (SL001) wherever they appear, but they cannot see
a hazard laundered through a helper::

    # helpers.py
    def jitter():
        return time.time() % 1.0        # SL002 fires here, and only here

    # peer.py
    self.sim.schedule(jitter(), self._pump)   # invisible per-file

The deep pass follows values through the call graph
(:class:`repro.devtools.callgraph.ProjectIndex`) and reports any flow
from a **nondeterminism source** into a **determinism-critical sink**,
with the full source→sink call chain in the diagnostic:

**Sources** (the value differs between runs or hosts):

* wall-clock reads (``time.time``, ``datetime.now``, ...)        → SL101
* the global ``random`` module / unseeded ``Random()``           → SL102
* ambient environment: ``os.environ``/``os.getenv``, ``id()``    → SL103
* iteration order: ``set``/``frozenset`` iteration, unsorted
  ``os.listdir``/``os.scandir``                                  → SL104

**Sinks** (the value steers the simulation or its results):

* ``schedule``/``schedule_at``/``call_now`` arguments
* ``rng.<draw>()`` arguments and any ``.seed(...)``/``Random(x)``
* writes or calls into a ``metrics`` attribute path

**Sanitizers**: ``sorted``/``min``/``max``/``sum``/``len``/``any``/
``all`` erase *order* taint (their result no longer depends on
iteration order) while passing other kinds through.

The analysis is a classic summary-based fixpoint: each function gets a
summary (tainted returns, parameter→return and parameter→sink flows),
summaries propagate over the call graph until stable, then a reporting
pass anchors findings at the sink (or at the call that hands a tainted
value to a sinking callee).  Dataflow is flow-insensitive within a
function and ignores attribute stores (``self.x = time.time()`` is not
tracked across methods — the per-file SL002 still flags the source);
dict iteration is insertion-ordered on every supported interpreter and
is deliberately *not* an order source.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, NamedTuple, Optional, Set, Tuple

from .callgraph import FunctionInfo, ProjectIndex, iter_own_nodes
from .rules import (
    Finding,
    RNG_METHODS,
    SCHEDULE_METHODS,
    _GLOBAL_RANDOM_FUNCS,
    _WALL_CLOCK_CALLS,
    dotted_name,
    import_map,
    is_set_expr,
    resolve_call,
)

#: taint kind → deep rule id
KIND_RULES = {
    "wallclock": "SL101",
    "grandom": "SL102",
    "env": "SL103",
    "order": "SL104",
}

_KIND_WORDS = {
    "wallclock": "wall-clock",
    "grandom": "global-random",
    "env": "ambient-environment",
    "order": "iteration-order",
}

#: builtins whose result does not depend on the iteration order of
#: their argument — they erase "order" taint, pass the rest through.
_ORDER_SANITIZERS = {"sorted", "min", "max", "sum", "len", "any", "all"}

_GLOBAL_RANDOM_CALLS = {f"random.{f}" for f in _GLOBAL_RANDOM_FUNCS}

_MAX_CHAIN = 10        # steps kept per source→sink trace
_MAX_TAINTS = 8        # distinct taints kept per summary slot
_MAX_ROUNDS = 25       # fixpoint iteration cap (call-graph diameter)


class TaintStep(NamedTuple):
    text: str
    path: str
    line: int


class Taint(NamedTuple):
    """One tainted value: its kind and the source→here trace."""

    kind: str
    chain: Tuple[TaintStep, ...]


class SinkTail(NamedTuple):
    """How a parameter reaches a sink inside (or below) a callee."""

    desc: str                      # sink description, e.g. "schedule()"
    chain: Tuple[TaintStep, ...]   # here→sink steps


class Summary(NamedTuple):
    """Interprocedural summary of one function."""

    returns: Tuple[Taint, ...]
    param_returns: FrozenSet[int]
    param_sinks: Tuple[Tuple[int, SinkTail], ...]


_EMPTY_SUMMARY = Summary((), frozenset(), ())


class SourceSite(NamedTuple):
    kind: str
    line: int
    desc: str


class CallSite(NamedTuple):
    callee: str
    label: str                     # short display name
    line: int
    args: Tuple[Tuple[int, FrozenSet], ...]   # param index → atoms


class SinkSite(NamedTuple):
    desc: str
    line: int
    atoms: FrozenSet


class FunctionTaint(NamedTuple):
    """Per-function extraction: sites and local dataflow atoms."""

    info: FunctionInfo
    sources: Tuple[SourceSite, ...]
    calls: Tuple[CallSite, ...]
    sinks: Tuple[SinkSite, ...]
    return_atoms: FrozenSet


def _short(qualname: str) -> str:
    return ".".join(qualname.split(".")[-2:])


# ----------------------------------------------------------------------
# Per-function extraction
# ----------------------------------------------------------------------
class _Extractor:
    """Flow-insensitive atom extraction for one function.

    Atoms are hashable descriptions of where a value may come from:
    ``("src", i)`` — the i-th source site; ``("param", i)`` — the i-th
    parameter; ``("call", i)`` — the result of the i-th resolved
    in-project call; ``("nosort", frozenset)`` — the inner atoms with
    order taint erased (value passed through an order sanitizer).
    """

    def __init__(self, index: ProjectIndex, info: FunctionInfo):
        self.index = index
        self.info = info
        self.imports = import_map(index.trees[info.path])
        self.param_index = {p: i for i, p in enumerate(info.params)}
        self.sources: List[SourceSite] = []
        self.calls: List[CallSite] = []
        self.sinks: List[SinkSite] = []
        self.return_atoms: Set = set()
        self.name_atoms: Dict[str, Set] = {}
        self._site_ids: Dict[int, Tuple[str, int]] = {}  # id(node) → atom
        self.set_names: Set[str] = set()

    def run(self) -> FunctionTaint:
        own = list(iter_own_nodes(self.info))
        self._collect_set_names(own)
        # Name-binding fixpoint: flow-insensitive, so iterate until the
        # per-name atom sets stop growing (they only grow — bounded).
        for _ in range(10):
            before = {k: set(v) for k, v in self.name_atoms.items()}
            for node in own:
                self._bind_names(node)
            if self.name_atoms == before:
                break
        for node in own:
            self._collect_sinks_and_returns(node)
        return FunctionTaint(
            info=self.info,
            sources=tuple(self.sources),
            calls=tuple(self.calls),
            sinks=tuple(self.sinks),
            return_atoms=frozenset(self.return_atoms),
        )

    # -- forward passes -------------------------------------------------
    def _collect_set_names(self, own: Iterable[ast.AST]) -> None:
        for node in own:
            if isinstance(node, ast.Assign) \
                    and is_set_expr(node.value, self.set_names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None \
                    and is_set_expr(node.value, self.set_names) \
                    and isinstance(node.target, ast.Name):
                self.set_names.add(node.target.id)

    def _bind_names(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            atoms = self._expr_atoms(node.value)
            for target in node.targets:
                self._bind_target(target, atoms)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._bind_target(node.target, self._expr_atoms(node.value))
        elif isinstance(node, ast.AugAssign):
            self._bind_target(node.target, self._expr_atoms(node.value))
        elif isinstance(node, ast.NamedExpr):
            self._bind_target(node.target, self._expr_atoms(node.value))
        elif isinstance(node, ast.For):
            atoms = self._expr_atoms(node.iter)
            if is_set_expr(node.iter, self.set_names):
                atoms = atoms | {self._source(
                    "order", node.iter, "set iteration order")}
            self._bind_target(node.target, atoms)
        elif isinstance(node, ast.withitem) and node.optional_vars:
            self._bind_target(node.optional_vars,
                              self._expr_atoms(node.context_expr))

    def _bind_target(self, target: ast.AST, atoms: Set) -> None:
        if not atoms:
            return
        if isinstance(target, ast.Name):
            self.name_atoms.setdefault(target.id, set()).update(atoms)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, atoms)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, atoms)
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            # `d[k] = tainted` taints the container name.
            self.name_atoms.setdefault(target.value.id,
                                       set()).update(atoms)

    # -- sinks and returns ---------------------------------------------
    def _collect_sinks_and_returns(self, node: ast.AST) -> None:
        if isinstance(node, ast.Return) and node.value is not None:
            self.return_atoms |= self._expr_atoms(node.value)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) \
                and node.value is not None:
            self.return_atoms |= self._expr_atoms(node.value)
        elif isinstance(node, ast.Call):
            self._check_call_sink(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                dotted = dotted_name(target)
                if dotted and "metrics" in dotted.split(".")[:-1]:
                    atoms = self._expr_atoms(node.value)
                    if atoms:
                        self.sinks.append(SinkSite(
                            desc=f"metrics write `{dotted}`",
                            line=node.lineno, atoms=frozenset(atoms)))

    def _check_call_sink(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        arg_atoms = None
        desc = None
        if dotted is not None and "." in dotted:
            parts = dotted.split(".")
            if parts[-1] in SCHEDULE_METHODS:
                desc = f"{parts[-1]}()"
            elif "rng" in parts[:-1] and parts[-1] in RNG_METHODS:
                desc = f"rng.{parts[-1]}()"
            elif parts[-1] == "seed":
                desc = "seed()"
            elif "metrics" in parts[:-1]:
                desc = f"metrics call `{dotted}`"
        resolved = resolve_call(node, self.imports)
        if desc is None and resolved == "random.Random" and node.args:
            desc = "Random(seed)"
        if desc is None:
            return
        atoms: Set = set()
        for arg in node.args:
            atoms |= self._expr_atoms(arg)
        for kw in node.keywords:
            atoms |= self._expr_atoms(kw.value)
        if atoms:
            self.sinks.append(SinkSite(desc=desc, line=node.lineno,
                                       atoms=frozenset(atoms)))

    # -- expression atoms ----------------------------------------------
    def _source(self, kind: str, node: ast.AST, desc: str) -> Tuple:
        """Register (once) and return the atom for a source site."""
        key = id(node)
        if key not in self._site_ids:
            self.sources.append(SourceSite(kind=kind, line=node.lineno,
                                           desc=desc))
            self._site_ids[key] = ("src", len(self.sources) - 1)
        return self._site_ids[key]

    def _call_atom(self, node: ast.Call, callee: str) -> Tuple:
        key = id(node)
        if key in self._site_ids:
            return self._site_ids[key]
        params = self.index.functions[callee].params
        args: List[Tuple[int, FrozenSet]] = []
        star_atoms: Set = set()
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                star_atoms |= self._expr_atoms(arg.value)
            else:
                atoms = self._expr_atoms(arg)
                if atoms:
                    args.append((i, frozenset(atoms)))
        for kw in node.keywords:
            atoms = self._expr_atoms(kw.value)
            if not atoms:
                continue
            if kw.arg is None:
                star_atoms |= atoms
            elif kw.arg in params:
                args.append((params.index(kw.arg), frozenset(atoms)))
        if star_atoms:
            # A starred argument may land in any parameter.
            for i in range(len(params)):
                args.append((i, frozenset(star_atoms)))
        site = CallSite(callee=callee, label=_short(callee),
                        line=node.lineno, args=tuple(args))
        self.calls.append(site)
        self._site_ids[key] = ("call", len(self.calls) - 1)
        return self._site_ids[key]

    def _expr_atoms(self, node: ast.AST) -> Set:
        if isinstance(node, ast.Call):
            return self._call_atoms(node)
        if isinstance(node, ast.Name):
            atoms = set(self.name_atoms.get(node.id, ()))
            if node.id in self.param_index:
                atoms.add(("param", self.param_index[node.id]))
            origin = self.imports.get(node.id)
            if origin == "os.environ":
                atoms.add(self._source("env", node, "`os.environ` read"))
            return atoms
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                origin = self.imports.get(head, head)
                full = f"{origin}.{rest}" if rest else origin
                if full == "os.environ":
                    return {self._source("env", node,
                                         "`os.environ` read")}
            return self._expr_atoms(node.value)
        if isinstance(node, ast.Subscript):
            # A tainted index/slice taints the selection.
            return self._expr_atoms(node.value) \
                | self._expr_atoms(node.slice)
        if isinstance(node, ast.Slice):
            atoms: Set = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    atoms |= self._expr_atoms(part)
            return atoms
        if isinstance(node, ast.BinOp):
            return self._expr_atoms(node.left) \
                | self._expr_atoms(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._expr_atoms(node.operand)
        if isinstance(node, ast.BoolOp):
            atoms: Set = set()
            for value in node.values:
                atoms |= self._expr_atoms(value)
            return atoms
        if isinstance(node, ast.Compare):
            atoms = self._expr_atoms(node.left)
            for comp in node.comparators:
                atoms |= self._expr_atoms(comp)
            return atoms
        if isinstance(node, ast.IfExp):
            return self._expr_atoms(node.body) \
                | self._expr_atoms(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            atoms = set()
            for elt in node.elts:
                atoms |= self._expr_atoms(elt)
            return atoms
        if isinstance(node, ast.Dict):
            atoms = set()
            for key in node.keys:
                if key is not None:
                    atoms |= self._expr_atoms(key)
            for value in node.values:
                atoms |= self._expr_atoms(value)
            return atoms
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self._comprehension_atoms(node)
        if isinstance(node, ast.JoinedStr):
            atoms = set()
            for value in node.values:
                atoms |= self._expr_atoms(value)
            return atoms
        if isinstance(node, ast.FormattedValue):
            return self._expr_atoms(node.value)
        if isinstance(node, ast.Starred):
            return self._expr_atoms(node.value)
        if isinstance(node, ast.NamedExpr):
            return self._expr_atoms(node.value)
        if isinstance(node, (ast.Await,)):
            return self._expr_atoms(node.value)
        return set()

    def _comprehension_atoms(self, node: ast.AST) -> Set:
        atoms: Set = set()
        for gen in node.generators:
            atoms |= self._expr_atoms(gen.iter)
            if is_set_expr(gen.iter, self.set_names):
                atoms.add(self._source("order", gen.iter,
                                       "set iteration order"))
        if isinstance(node, ast.DictComp):
            atoms |= self._expr_atoms(node.key)
            atoms |= self._expr_atoms(node.value)
        else:
            atoms |= self._expr_atoms(node.elt)
        return atoms

    def _call_atoms(self, node: ast.Call) -> Set:
        resolved = resolve_call(node, self.imports)
        # Source calls.
        if resolved in _WALL_CLOCK_CALLS:
            return {self._source(
                "wallclock", node, f"`{resolved}()` wall-clock read")}
        if resolved in _GLOBAL_RANDOM_CALLS:
            return {self._source(
                "grandom", node, f"global `{resolved}()`")}
        if resolved == "random.Random" and not node.args \
                and not node.keywords:
            return {self._source(
                "grandom", node, "unseeded `Random()` (OS entropy)")}
        if resolved == "random.SystemRandom":
            return {self._source(
                "grandom", node, "`SystemRandom()` (OS entropy)")}
        if resolved in ("os.getenv", "os.environ.get"):
            return {self._source("env", node, f"`{resolved}()` read")}
        if resolved == "id" and isinstance(node.func, ast.Name):
            return {self._source(
                "env", node, "`id()` value (address-dependent)")}
        if resolved in ("os.listdir", "os.scandir"):
            return {self._source(
                "order", node, f"unsorted `{resolved}()`")}
        # Order sanitizers: strip order taint, keep everything else.
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SANITIZERS \
                and node.func.id not in self.imports:
            inner: Set = set()
            for arg in node.args:
                inner |= self._expr_atoms(arg)
            return {("nosort", frozenset(inner))} if inner else set()
        # list()/tuple()/iter() over a set is an order source.
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple", "iter") \
                and node.args \
                and is_set_expr(node.args[0], self.set_names):
            return {self._source("order", node, "set iteration order")}
        # Resolved in-project call: summary lookup via a call atom.
        target = self.index.resolve_callable(self.info, node.func)
        if target is not None and target in self.index.functions:
            return {self._call_atom(node, target)}
        # Opaque call: propagate argument (and receiver) taint through.
        atoms: Set = set()
        for arg in node.args:
            atoms |= self._expr_atoms(arg)
        for kw in node.keywords:
            atoms |= self._expr_atoms(kw.value)
        if isinstance(node.func, ast.Attribute):
            atoms |= self._expr_atoms(node.func.value)
        return atoms


# ----------------------------------------------------------------------
# Whole-program fixpoint and reporting
# ----------------------------------------------------------------------
class TaintAnalysis:
    """Summary propagation over the call graph + finding generation."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.fts: Dict[str, FunctionTaint] = {}
        for qualname, info in index.functions.items():
            self.fts[qualname] = _Extractor(index, info).run()
        self.summaries: Dict[str, Summary] = {
            q: _EMPTY_SUMMARY for q in self.fts}

    # -- atom resolution ------------------------------------------------
    def _resolve(self, ft: FunctionTaint, atoms: Iterable,
                 active: Set) -> Tuple[List[Taint], Set[int]]:
        taints: Dict[Tuple, Taint] = {}
        params: Set[int] = set()

        def add(taint: Taint) -> None:
            key = (taint.kind, taint.chain[0])
            old = taints.get(key)
            if old is None or len(taint.chain) < len(old.chain):
                taints[key] = taint

        for atom in atoms:
            if atom in active:
                continue
            tag = atom[0]
            if tag == "src":
                site = ft.sources[atom[1]]
                add(Taint(site.kind, (TaintStep(
                    site.desc, ft.info.path, site.line),)))
            elif tag == "param":
                params.add(atom[1])
            elif tag == "nosort":
                sub_t, sub_p = self._resolve(ft, atom[1],
                                             active | {atom})
                for t in sub_t:
                    if t.kind != "order":
                        add(t)
                params |= sub_p
            elif tag == "call":
                site = ft.calls[atom[1]]
                summ = self.summaries.get(site.callee)
                if summ is None:
                    continue
                step = TaintStep(f"returned by {site.label}",
                                 ft.info.path, site.line)
                for t in summ.returns:
                    if len(t.chain) < _MAX_CHAIN:
                        add(Taint(t.kind, t.chain + (step,)))
                if summ.param_returns:
                    arg_map = dict(site.args)
                    through = TaintStep(f"through {site.label}",
                                        ft.info.path, site.line)
                    for i in summ.param_returns:
                        sub = arg_map.get(i)
                        if not sub:
                            continue
                        sub_t, sub_p = self._resolve(
                            ft, sub, active | {atom})
                        for t in sub_t:
                            if len(t.chain) < _MAX_CHAIN:
                                add(Taint(t.kind, t.chain + (through,)))
                        params |= sub_p
        return sorted(taints.values()), params

    # -- summaries ------------------------------------------------------
    def _summarize(self, ft: FunctionTaint) -> Summary:
        ret_taints, ret_params = self._resolve(ft, ft.return_atoms, set())
        sinks: Dict[Tuple[int, str], SinkTail] = {}

        def add_sink(i: int, tail: SinkTail) -> None:
            key = (i, tail.desc)
            old = sinks.get(key)
            if old is None or len(tail.chain) < len(old.chain):
                sinks[key] = tail

        for sink in ft.sinks:
            _, sink_params = self._resolve(ft, sink.atoms, set())
            for i in sink_params:
                add_sink(i, SinkTail(sink.desc, (TaintStep(
                    f"feeds {sink.desc}", ft.info.path, sink.line),)))
        for site in ft.calls:
            summ = self.summaries.get(site.callee)
            if summ is None or not summ.param_sinks:
                continue
            arg_map = dict(site.args)
            step = TaintStep(f"passed to {site.label}",
                             ft.info.path, site.line)
            for j, tail in summ.param_sinks:
                sub = arg_map.get(j)
                if not sub:
                    continue
                if len(tail.chain) >= _MAX_CHAIN:
                    continue
                _, sub_params = self._resolve(ft, sub, set())
                for i in sub_params:
                    add_sink(i, SinkTail(tail.desc,
                                         (step,) + tail.chain))
        return Summary(
            returns=tuple(ret_taints[:_MAX_TAINTS]),
            param_returns=frozenset(ret_params),
            param_sinks=tuple((i, tail) for (i, _), tail
                              in sorted(sinks.items())),
        )

    def _fixpoint(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname, ft in self.fts.items():
                new = self._summarize(ft)
                if new != self.summaries[qualname]:
                    self.summaries[qualname] = new
                    changed = True
            if not changed:
                break

    # -- findings -------------------------------------------------------
    def run(self) -> List[Finding]:
        self._fixpoint()
        findings: Dict[Tuple, Finding] = {}

        def add(rule: str, path: str, line: int, message: str,
                chain: Tuple[TaintStep, ...]) -> None:
            key = (rule, path, line, chain[0])
            old = findings.get(key)
            if old is None or len(message) < len(old.message):
                findings[key] = Finding(rule=rule, path=path, line=line,
                                        col=1, message=message)

        for ft in self.fts.values():
            path = ft.info.path
            for sink in ft.sinks:
                taints, _ = self._resolve(ft, sink.atoms, set())
                for t in taints:
                    chain = t.chain + (TaintStep(
                        f"feeds {sink.desc}", path, sink.line),)
                    add(KIND_RULES[t.kind], path, sink.line,
                        self._message(t.kind, sink.desc, chain), chain)
            for site in ft.calls:
                summ = self.summaries.get(site.callee)
                if summ is None or not summ.param_sinks:
                    continue
                arg_map = dict(site.args)
                step = TaintStep(f"passed to {site.label}",
                                 path, site.line)
                for j, tail in summ.param_sinks:
                    sub = arg_map.get(j)
                    if not sub:
                        continue
                    taints, _ = self._resolve(ft, sub, set())
                    for t in taints:
                        chain = t.chain + (step,) + tail.chain
                        add(KIND_RULES[t.kind], path, site.line,
                            self._message(t.kind, tail.desc, chain),
                            chain)
        return sorted(findings.values(),
                      key=lambda f: (f.path, f.line, f.rule, f.message))

    @staticmethod
    def _message(kind: str, sink_desc: str,
                 chain: Tuple[TaintStep, ...]) -> str:
        trace = " -> ".join(f"{step.text} ({step.path}:{step.line})"
                            for step in chain)
        return (f"{_KIND_WORDS[kind]} value flows into {sink_desc}; "
                f"trace: {trace}")


def run_taint(index: ProjectIndex) -> List[Finding]:
    """All SL101–SL104 findings for an indexed project."""
    return TaintAnalysis(index).run()
