"""Experiment harness: one module per paper figure/table.

:func:`repro.experiments.runner.run_swarm` is the single entry point
that builds, populates and runs a swarm; the per-figure modules
(:mod:`repro.experiments.fig3` ... :mod:`repro.experiments.table2`)
compose it into the paper's exact sweeps and print the corresponding
rows/series.
"""

from repro.experiments.runner import (
    RunResult,
    optimal_completion_time,
    run_many,
    run_swarm,
)

__all__ = [
    "RunResult",
    "optimal_completion_time",
    "run_many",
    "run_swarm",
]
