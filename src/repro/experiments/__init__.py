"""Experiment harness: one module per paper figure/table.

:func:`repro.experiments.runner.run_swarm` is the single entry point
that builds, populates and runs a swarm; the per-figure modules
(:mod:`repro.experiments.fig3` ... :mod:`repro.experiments.table2`)
compose it into the paper's exact sweeps and print the corresponding
rows/series.  :mod:`repro.experiments.parallel` fans sweeps out over
worker processes (``run_many(..., workers=N)`` / ``REPRO_WORKERS``)
with spec-order, bit-identical results; :mod:`repro.experiments.bench`
is the pinned perf harness behind ``repro bench``.
"""

from repro.experiments.parallel import (
    ParallelExecutionError,
    RunSpec,
    RunSummary,
    resolve_workers,
    run_specs,
)
from repro.experiments.runner import (
    RunResult,
    optimal_completion_time,
    run_many,
    run_swarm,
)

__all__ = [
    "ParallelExecutionError",
    "RunResult",
    "RunSpec",
    "RunSummary",
    "optimal_completion_time",
    "resolve_workers",
    "run_many",
    "run_specs",
    "run_swarm",
]
