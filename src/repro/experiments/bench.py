"""Pinned performance benchmark (``repro bench``).

A fixed scenario matrix measured the same way every time, so engine
changes land with numbers instead of adjectives:

* **engine** — a timer-churn micro-benchmark exercising the raw event
  loop: 200 independent chains, each fired event cancels and re-arms a
  30 s timeout (T-Chain's retransmit-timer pattern) and schedules its
  next tick 10–20 ms out.  Throughput here is pure heap mechanics —
  push, lazy-deletion pop, compaction.
* **scenarios** — full protocol runs (T-Chain flash/trace crowds with
  free-riders, BitTorrent, PropShare) timed end to end, reported as
  events/sec and wall seconds each.
* **parallel** — one seed sweep executed serially and again through
  :mod:`repro.experiments.parallel`, reporting the speedup and
  asserting the two result lists compare equal (the bit-identical
  guarantee, checked on every bench run, not just in tests).
* **index_equivalence** — one T-Chain churn run executed twice, with
  the incremental interest index enabled and disabled, asserting the
  full event traces compare bit-identical (the trace-neutrality
  guarantee of :mod:`repro.bt.interest`, checked on every bench run —
  including the ``--quick`` CI smoke — not just in tests).
* **sweep_fabric** — the same sweep through plain ``run_specs`` and
  through the fault-tolerant fabric
  (:mod:`repro.experiments.fabric`), pinning the fabric's overhead
  (manifest + checkpoints + supervision) under a hard ceiling and
  asserting bit-identical merged output; plus a kill-resume scenario
  (seeded ``WorkerKill`` SIGKILL, quarantine, ``resume_sweep``) that
  must reproduce the plain results exactly.
* **tchain_crowd** — flash-crowd scale leg over the columnar swarm
  state (:mod:`repro.bt.columnar`): T-Chain crowds of 1k/10k/100k
  leechers (``--quick``: 1k only) run to completion, reporting
  peers/sec and peak bytes-per-peer (tracemalloc at ≤10k, RSS delta
  at 100k where tracing would dominate memory itself).
* **alloc_audit** — the crowd scenario under the engine's per-event
  allocation profiler (``profile="alloc"``), pooled — EventHandle
  free-list plus plain-piece message pool, the defaults — versus
  unpooled, reporting bytes/event and allocs/event both ways and the
  drop the pools buy (the runtime validation of the simheat SL3xx
  static findings).  A pooled-vs-unpooled full-trace diff on the
  churn scenario asserts the pools are trace-neutral on every run.

Results are written as JSON (default :data:`DEFAULT_REPORT_PATH` in
the current directory) next to the frozen pre-PR baseline measured on
the same
workloads, so the delta the optimisation pass bought is visible in the
artifact itself.  Numbers are machine-relative: compare against the
baseline ratio, not across machines.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.parallel import (
    RunSpec,
    execute_spec,
    resolve_workers,
    run_specs,
)
from repro.sim.engine import Simulator

#: Default report filename.  ``repro bench --out`` and the CLI help
#: text must agree with this constant (pinned by a CLI test).
DEFAULT_REPORT_PATH = "BENCH_PR10.json"

#: Pre-PR throughput on the development machine (best of 5) for the two
#: pinned workloads below, measured at commit 89ddfb9 before the engine
#: optimisation pass.  Kept frozen so the artifact carries its own
#: before/after story.
BASELINE_PRE_PR3 = {
    "commit": "89ddfb9",
    "engine_churn_events_per_second": 185308,
    "tchain_flash_events_per_second": 46167,
    "note": ("best-of-5 on the PR-3 development machine; "
             "machine-relative — compare ratios, not absolutes"),
}

#: The full matrix (name -> RunSpec).  Scenario order is report order.
SCENARIOS: Dict[str, RunSpec] = {
    "tchain_flash": RunSpec(protocol="tchain", seed=7, leechers=30,
                            pieces=24, freerider_fraction=0.25),
    "tchain_trace": RunSpec(protocol="tchain", seed=3, leechers=24,
                            pieces=16, arrival="trace"),
    "bittorrent_flash": RunSpec(protocol="bittorrent", seed=7,
                                leechers=30, pieces=24),
    "propshare_flash": RunSpec(protocol="propshare", seed=7,
                               leechers=30, pieces=24),
}

#: Quick-mode matrix: same shapes, smaller populations (CI smoke).
QUICK_SCENARIOS: Dict[str, RunSpec] = {
    "tchain_flash": RunSpec(protocol="tchain", seed=7, leechers=12,
                            pieces=8, freerider_fraction=0.25),
    "bittorrent_flash": RunSpec(protocol="bittorrent", seed=7,
                                leechers=12, pieces=8),
}

ENGINE_EVENTS = 60_000
ENGINE_EVENTS_QUICK = 12_000
ENGINE_CHAINS = 200
ENGINE_SEED = 1234

#: Seed sweep used for the serial-vs-parallel leg.
PARALLEL_SWEEP = RunSpec(protocol="tchain", leechers=20, pieces=12,
                         freerider_fraction=0.2)
PARALLEL_SEEDS = 8
PARALLEL_SEEDS_QUICK = 4


def _tick(state: dict, sim: Simulator) -> None:
    """One churn step: re-arm the chain's timeout, schedule the next."""
    timeout = state["timeout"]
    if timeout is not None:
        timeout.cancel()
    state["timeout"] = sim.schedule(30.0, _noop)
    sim.schedule(0.01 + sim.rng.random() * 0.01, _tick, state, sim)


def _noop() -> None:
    pass


def bench_engine(n_events: int = ENGINE_EVENTS,
                 chains: int = ENGINE_CHAINS,
                 seed: int = ENGINE_SEED) -> Dict[str, object]:
    """Run the timer-churn micro-benchmark and report throughput."""
    sim = Simulator(seed=seed)
    for _ in range(chains):
        sim.schedule(sim.rng.random() * 0.01, _tick,
                     {"timeout": None}, sim)
    start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
    sim.run(max_events=n_events)
    wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    return {
        "events": sim.events_fired,
        "wall_time_s": round(wall, 4),
        "events_per_second": round(sim.events_fired / wall),
        "compactions": sim.compactions,
    }


def bench_scenarios(scenarios: Dict[str, RunSpec],
                    repeat: int = 1) -> List[Dict[str, object]]:
    """Time each pinned scenario end to end (best of ``repeat``)."""
    rows = []
    for name, spec in scenarios.items():
        best = None
        for _ in range(max(1, repeat)):
            summary = execute_spec(spec)
            if best is None or summary.wall_time_s < best.wall_time_s:
                best = summary
        rows.append({
            "name": name,
            "protocol": best.protocol,
            "seed": best.seed,
            "leechers": spec.leechers,
            "pieces": best.config.n_pieces,
            "events_fired": best.events_fired,
            "sim_time_s": round(best.sim_time_s, 1),
            "wall_time_s": round(best.wall_time_s, 4),
            "events_per_second": round(best.events_per_second),
            "mean_completion_s": best.mean_completion_time("leecher"),
        })
    return rows


def bench_parallel(n_seeds: int, workers: Optional[int] = None
                   ) -> Dict[str, object]:
    """Serial-vs-parallel leg: same sweep both ways, equality-checked.

    ``workers`` defaults to ``min(4, cpu_count)``; on a single-CPU box
    the parallel leg still runs (with 2 workers) so the bit-identical
    guarantee is exercised, but the speedup number is reported as the
    honest <1x it is there.
    """
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = min(4, cpus) if cpus > 1 else 2
    from dataclasses import replace
    specs = [replace(PARALLEL_SWEEP, seed=s) for s in range(n_seeds)]
    start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
    serial = run_specs(specs, workers=1)
    serial_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    start = time.perf_counter()  # simlint: disable=SL002 -- see above
    parallel = run_specs(specs, workers=workers)
    parallel_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    identical = serial == parallel
    if not identical:  # pragma: no cover - would be an engine bug
        raise AssertionError(
            "parallel sweep diverged from serial — determinism broken")
    return {
        "runs": n_seeds,
        "workers": workers,
        "cpu_count": cpus,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "identical": identical,
    }


#: Fabric-overhead ceilings: full mode is a real performance pin
#: (≤ 10% over plain ``run_specs``); quick mode runs once on small,
#: noisy CI boxes, so it only smoke-checks the order of magnitude.
FABRIC_OVERHEAD_LIMIT = 1.10
FABRIC_OVERHEAD_LIMIT_QUICK = 1.35

#: Shard size for the fabric legs: small enough that the sweep spans
#: several shards (exercising checkpoint merge), large enough to be a
#: realistic ratio of work to checkpoint I/O.
FABRIC_SHARD_SIZE = 2


def bench_sweep_fabric(n_seeds: int, workers: Optional[int] = None,
                       repeat: int = 3, quick: bool = False
                       ) -> Dict[str, object]:
    """Fabric leg: overhead ceiling plus a kill-resume scenario.

    Runs the pinned sweep through plain ``run_specs`` and through
    ``run_specs_fabric`` (same worker count, best of ``repeat`` each),
    asserts the merged summaries compare equal, and fails the bench if
    the fabric's overhead exceeds its ceiling.  Then SIGKILLs a worker
    mid-sweep (seeded :class:`~repro.faults.WorkerKill`, retry budget
    0 so the shard quarantines), resumes from the sweep directory, and
    asserts the resumed merge is bit-identical too.
    """
    from dataclasses import replace
    from tempfile import TemporaryDirectory

    from repro.experiments.fabric import (SweepIncomplete, resume_sweep,
                                          run_specs_fabric)
    from repro.faults import WorkerKill

    cpus = os.cpu_count() or 1
    if workers is None:
        workers = min(4, cpus) if cpus > 1 else 2
    specs = [replace(PARALLEL_SWEEP, seed=s) for s in range(n_seeds)]
    n_shards = -(-n_seeds // FABRIC_SHARD_SIZE)

    plain_s = None
    plain = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        result = run_specs(specs, workers=workers)
        wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        if plain_s is None or wall < plain_s:
            plain_s, plain = wall, result

    fabric_s = None
    fabric = None
    for _ in range(max(1, repeat)):
        with TemporaryDirectory() as tmp:
            start = time.perf_counter()  # simlint: disable=SL002 -- see above
            result = run_specs_fabric(specs, workers=workers,
                                      sweep_dir=tmp,
                                      shard_size=FABRIC_SHARD_SIZE)
            wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        if fabric_s is None or wall < fabric_s:
            fabric_s, fabric = wall, result

    identical = fabric == plain
    if not identical:  # pragma: no cover - would be a fabric bug
        raise AssertionError(
            "fabric sweep diverged from plain run_specs — merge broken")
    overhead = fabric_s / plain_s
    limit = FABRIC_OVERHEAD_LIMIT_QUICK if quick else FABRIC_OVERHEAD_LIMIT
    if overhead > limit:
        raise AssertionError(
            f"sweep fabric overhead {overhead:.2f}x exceeds the "
            f"{limit:.2f}x ceiling ({fabric_s:.3f}s vs {plain_s:.3f}s "
            f"for {n_seeds} runs / {n_shards} shards)")

    with TemporaryDirectory() as tmp:
        kill = WorkerKill(prob=1.0, seed=5, shard_indices=(0,))
        quarantined = 0
        try:
            run_specs_fabric(specs, workers=workers, sweep_dir=tmp,
                             shard_size=FABRIC_SHARD_SIZE,
                             retry_budget=0, worker_kill=kill)
        except SweepIncomplete as exc:
            quarantined = len(exc.quarantined)
        if not quarantined:  # pragma: no cover - would be a kill bug
            raise AssertionError(
                "WorkerKill injection did not quarantine any shard")
        resumed = resume_sweep(tmp, workers=workers)
    resumed_identical = resumed == plain
    if not resumed_identical:  # pragma: no cover - fabric bug
        raise AssertionError(
            "kill-resume sweep diverged from plain run_specs")
    return {
        "runs": n_seeds,
        "shards": n_shards,
        "workers": workers,
        "plain_s": round(plain_s, 3),
        "fabric_s": round(fabric_s, 3),
        "overhead": round(overhead, 3),
        "limit": limit,
        "identical": identical,
        "kill_resume": {
            "killed_shard": 0,
            "quarantined": quarantined,
            "resumed_identical": resumed_identical,
        },
    }


#: Flash-crowd sizes for the columnar scale leg; quick mode (the CI
#: bench smoke) runs only the smallest.
CROWD_SIZES = (1_000, 10_000, 100_000)
CROWD_SIZES_QUICK = (1_000,)

#: Above this population tracemalloc's per-allocation traces would
#: cost more memory than the swarm itself, so the leg switches from
#: tracemalloc peak to the process RSS delta.
CROWD_TRACEMALLOC_MAX = 10_000

#: The crowd scenario: a pure flash arrival of compliant T-Chain
#: leechers on a small file.  The interest index is off (its per-join
#: pair scan is O(N) and it is redundant with the columnar masks);
#: the columnar backend is on — this leg exists to keep 100k peers on
#: one host feasible and measured.
CROWD_SPEC = dict(protocol="tchain", seed=7, pieces=4,
                  piece_size_kb=64.0, freerider_fraction=0.0,
                  arrival="flash")


def bench_tchain_crowd(quick: bool = False,
                       sizes: Optional[tuple] = None
                       ) -> List[Dict[str, object]]:
    """Scale leg: T-Chain flash crowds over the columnar backend.

    Each size runs once (a 100k-peer swarm is its own repetition),
    must complete — every leecher finishes the file — and reports
    peers/sec plus peak bytes-per-peer.  Memory is tracemalloc's peak
    for the sizes where tracing is affordable and the ``ru_maxrss``
    delta at the top size.
    """
    import resource
    import tracemalloc

    from repro.experiments import run_swarm

    if sizes is None:
        sizes = CROWD_SIZES_QUICK if quick else CROWD_SIZES
    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        traced = leechers <= CROWD_TRACEMALLOC_MAX
        if traced:
            tracemalloc.start()
        rss_before_kb = resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        result = run_swarm(leechers=leechers,
                           extra={"columnar": True,
                                  "interest_index": False},
                           **CROWD_SPEC)
        wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        if traced:
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            memory_source = "tracemalloc_peak"
        else:
            rss_after_kb = resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss
            peak_bytes = (rss_after_kb - rss_before_kb) * 1024
            memory_source = "rss_delta"
        finished = sum(1 for rec in result.metrics.records
                       if rec.kind == "leecher"
                       and rec.finish_time is not None)
        if finished != leechers:  # pragma: no cover - would be a bug
            raise AssertionError(
                f"tchain_crowd({leechers}): only {finished} leechers "
                f"completed — the crowd did not finish")
        rows.append({
            "leechers": leechers,
            "completed": finished,
            "events_fired": result.swarm.sim.events_fired,
            "wall_time_s": round(wall, 2),
            "peers_per_second": round(leechers / wall, 1),
            "peak_bytes": int(peak_bytes),
            "bytes_per_peer": round(peak_bytes / leechers),
            "memory_source": memory_source,
        })
    return rows


#: Crowd sizes for the allocation-audit leg.  Smaller ceiling than the
#: scale leg: every size runs twice (pooled / unpooled) under the
#: profiler, whose per-event tracemalloc reads dominate at 100k.
ALLOC_AUDIT_SIZES = (1_000, 10_000)
ALLOC_AUDIT_SIZES_QUICK = (1_000,)


def bench_alloc_audit(quick: bool = False,
                      sizes: Optional[tuple] = None
                      ) -> Dict[str, object]:
    """Allocation-audit leg: profiler numbers pooled vs unpooled.

    Runs the pinned crowd scenario under ``profile="alloc"`` twice per
    size — with the EventHandle free-list and the plain-piece message
    pool enabled (the defaults) and with both disabled — and reports
    bytes/event and allocs/event each way plus the drop the pools buy.
    Asserts the two runs fire the same number of events, then replays
    the churn scenario (free-riders, departures) both ways with a
    trace observer and asserts the full ``(time, seq, callback)``
    traces compare bit-identical: the pools must never perturb the
    simulation, only its allocator traffic.
    """
    from repro.experiments import run_swarm

    if sizes is None:
        sizes = ALLOC_AUDIT_SIZES_QUICK if quick else ALLOC_AUDIT_SIZES

    def profiled(leechers: int, pooled: bool) -> Dict[str, object]:
        extra = {"columnar": True, "interest_index": False}
        if not pooled:
            extra.update(pool_events=False, pool_messages=False)
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        result = run_swarm(leechers=leechers, extra=extra,
                           profile="alloc", **CROWD_SPEC)
        wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        prof = result.swarm.sim.profile
        return {
            "events": prof.events,
            "bytes_per_event": round(prof.bytes_per_event(), 1),
            "allocs_per_event": round(prof.allocs_per_event(), 2),
            "wall_time_s": round(wall, 2),
        }

    rows: List[Dict[str, object]] = []
    for leechers in sizes:
        pooled = profiled(leechers, pooled=True)
        unpooled = profiled(leechers, pooled=False)
        if pooled["events"] != unpooled["events"]:  # pragma: no cover
            raise AssertionError(
                f"alloc_audit({leechers}): pooled run fired "
                f"{pooled['events']} events, unpooled "
                f"{unpooled['events']} — pools perturbed the run")
        rows.append({
            "leechers": leechers,
            "events": pooled["events"],
            "pooled": pooled,
            "unpooled": unpooled,
            "bytes_per_event_drop": round(
                1.0 - pooled["bytes_per_event"]
                / unpooled["bytes_per_event"], 3)
            if unpooled["bytes_per_event"] else None,
            "allocs_per_event_drop": round(
                1.0 - pooled["allocs_per_event"]
                / unpooled["allocs_per_event"], 3)
            if unpooled["allocs_per_event"] else None,
        })

    def traced(pooled: bool) -> List[tuple]:
        trace: List[tuple] = []

        def setup(swarm):
            swarm.sim.add_observer(
                lambda handle: trace.append(
                    (handle.time, handle.seq,
                     getattr(handle.callback, "__qualname__",
                             repr(handle.callback)))))

        extra = {} if pooled else {"pool_events": False,
                                   "pool_messages": False}
        run_swarm(setup=setup, extra=extra, **INDEX_EQUIV_SPEC)
        return trace

    pooled_trace = traced(True)
    unpooled_trace = traced(False)
    if pooled_trace != unpooled_trace:  # pragma: no cover - pool bug
        raise AssertionError(
            "pooled run diverged from unpooled — trace neutrality "
            "of the allocation fixes broken")
    return {
        "scenario": dict(CROWD_SPEC),
        "sizes": rows,
        "trace_neutrality": {
            "scenario": dict(INDEX_EQUIV_SPEC),
            "events_compared": len(pooled_trace),
            "identical": True,
        },
    }


#: Scenario for the index-equivalence leg: free-riders whitewash and
#: leechers leave on completion, so the index sees real churn.
INDEX_EQUIV_SPEC = dict(protocol="tchain", seed=7, leechers=12,
                        pieces=8, freerider_fraction=0.25)


def bench_index_equivalence() -> Dict[str, object]:
    """Trace-neutrality leg: index on vs off, bit-identical or raise.

    Runs the same T-Chain churn scenario twice — once with the
    incremental interest index, once with the naive rescans — and
    compares the full event trace ``(time, seq, callback)`` tuples.
    Any divergence is an index-invalidation bug, so it fails the whole
    bench run rather than merely reporting a number.
    """
    from repro.experiments import run_swarm

    def traced(enabled: bool) -> List[tuple]:
        trace: List[tuple] = []

        def setup(swarm):
            swarm.sim.add_observer(
                lambda handle: trace.append(
                    (handle.time, handle.seq,
                     getattr(handle.callback, "__qualname__",
                             repr(handle.callback)))))

        run_swarm(setup=setup, extra={"interest_index": enabled},
                  **INDEX_EQUIV_SPEC)
        return trace

    start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
    indexed = traced(True)
    naive = traced(False)
    wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    if indexed != naive:  # pragma: no cover - would be an index bug
        raise AssertionError(
            "interest-index run diverged from naive rescan — "
            "trace neutrality broken")
    return {
        "scenario": dict(INDEX_EQUIV_SPEC),
        "events_compared": len(indexed),
        "identical": True,
        "wall_time_s": round(wall, 3),
    }


#: Scenario for the substrate leg: big enough that the per-event
#: ``net is None`` checks and route/fate lookups show up in the wall
#: time, small enough to keep the bench fast.
NET_SUBSTRATE_SPEC = dict(protocol="tchain", seed=7, leechers=48,
                          pieces=24)

#: The substrate leg's WAN scenario (same shape as docs/NETWORK.md).
NET_WAN_SPEC = {"topology": "multi_dc", "loss": 0.02,
                "jitter_ms": 10.0}


def bench_net_substrate(repeat: int = 7) -> Dict[str, object]:
    """Network-substrate leg: idle-substrate neutrality + WAN cost.

    Three runs of the same T-Chain scenario: the flat model, an
    attached-but-idle substrate (all-zero star — must be bit-identical
    to flat, asserted on the full event trace), and a lossy multi-DC
    WAN.  Reports the idle-substrate overhead ratio (the price every
    flat-model run pays for the ``net is None`` checks plus the price
    of an inert model; the acceptance bar is <= 5%) and the WAN
    slowdown (real routing, loss draws and latency floors).
    """
    from repro.experiments import run_swarm

    def traced(extra: Dict[str, object]) -> Tuple[List[tuple], float]:
        trace: List[tuple] = []

        def setup(swarm):
            swarm.sim.add_observer(
                lambda handle: trace.append(
                    (handle.time, handle.seq,
                     getattr(handle.callback, "__qualname__",
                             repr(handle.callback)))))

        # The walls are short (~0.2 s), so a cyclic-GC pass landing in
        # one variant but not the other would swamp the few-percent
        # signal the overhead ratio gates.  Collect up front, pause GC
        # for the timed region (same hygiene as AllocProfile), resume
        # after.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
            run_swarm(setup=setup, extra=extra, **NET_SUBSTRATE_SPEC)
            wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        finally:
            if gc_was_enabled:
                gc.enable()
        return trace, wall

    idle_spec = {"topology": "star", "nodes": 4}
    flat_wall = idle_wall = wan_wall = None
    flat_trace = idle_trace = wan_trace = None
    for _ in range(max(1, repeat)):
        trace, wall = traced({})
        if flat_wall is None or wall < flat_wall:
            flat_trace, flat_wall = trace, wall
        trace, wall = traced({"net": dict(idle_spec)})
        if idle_wall is None or wall < idle_wall:
            idle_trace, idle_wall = trace, wall
        trace, wall = traced({"net": dict(NET_WAN_SPEC)})
        if wan_wall is None or wall < wan_wall:
            wan_trace, wan_wall = trace, wall
    if flat_trace != idle_trace:  # pragma: no cover - substrate bug
        raise AssertionError(
            "idle-substrate run diverged from the flat model — "
            "trace neutrality broken")
    return {
        "scenario": dict(NET_SUBSTRATE_SPEC),
        "events_compared": len(flat_trace),
        "identical": True,
        "flat_wall_s": round(flat_wall, 4),
        "idle_substrate_wall_s": round(idle_wall, 4),
        "idle_overhead_ratio": round(idle_wall / flat_wall, 4),
        "wan": {
            "spec": dict(NET_WAN_SPEC),
            "wall_time_s": round(wan_wall, 4),
            "events": len(wan_trace),
        },
    }


def bench_lint_deep(paths: tuple = ("src",)) -> Dict[str, object]:
    """Cold-vs-cached smoke of ``repro lint --deep``.

    The cold run pays parsing, per-file rules, protocol conformance
    and the whole-program taint, races and simheat passes; the warm
    run should be dominated by hashing the unchanged files and
    replaying cached findings.  A collapsing cold/warm ratio is the
    analyzer-regression signal this entry exists to surface; the
    per-pass breakdown (``stats["timings"]``) says *which* pass
    regressed.
    """
    from tempfile import TemporaryDirectory

    from repro.devtools.deep import run_deep

    targets = [p for p in paths if os.path.exists(p)]
    if not targets:  # bench invoked outside the repo root
        return {"skipped": f"none of {list(paths)} exist here"}
    with TemporaryDirectory() as tmp:
        cache = os.path.join(tmp, "simlint-cache.json")
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        cold = run_deep(targets, cache_path=cache)
        cold_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        start = time.perf_counter()  # simlint: disable=SL002 -- see above
        warm = run_deep(targets, cache_path=cache)
        warm_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    if not warm.stats["taint_reused"]:  # pragma: no cover - cache bug
        raise AssertionError("warm --deep run did not hit the cache")
    if not warm.stats["simheat_reused"]:  # pragma: no cover - cache bug
        raise AssertionError("warm --deep run re-ran the simheat pass")
    return {
        "paths": targets,
        "files": cold.stats["files"],
        "findings": len(cold.findings),
        "cold_s": round(cold_s, 3),
        "cached_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "cold_pass_timings_s": dict(cold.stats["timings"]),
        "cached_pass_timings_s": dict(warm.stats["timings"]),
    }


#: Scenario for the simrace runtime-overhead leg.  Small on purpose:
#: it runs three times (plain / sanitizer / sanitizer + race reporter).
SIMRACE_SPEC = dict(protocol="tchain", seed=11, leechers=10, pieces=8,
                    freerider_fraction=0.2)


def bench_simrace() -> Dict[str, object]:
    """simrace cost model: static pass timing plus runtime overhead.

    Static half: build the project index over ``src`` and time one
    whole-program :func:`repro.devtools.races.run_races` pass cold,
    then verify through a cold/warm ``run_deep`` pair that the races
    findings replay from the cache (``races_reused``).

    Runtime half: the same small T-Chain swarm three ways — plain
    (observer-free fast path), fair-exchange sanitizer, sanitizer plus
    :class:`~repro.devtools.sanitizer.RaceReporter` — reporting the
    overhead ratios.  It *asserts* the plain run attaches nothing
    (fast path untouched when disabled), that the reporter's class
    patches are gone afterwards, and that all three runs fire the
    same number of events (the reporter only observes, never
    perturbs).
    """
    from tempfile import TemporaryDirectory

    from repro.devtools import sanitizer as sanitizer_mod
    from repro.devtools.analyzer import iter_python_files
    from repro.devtools.callgraph import ProjectIndex
    from repro.devtools.deep import run_deep
    from repro.devtools.races import run_races
    from repro.experiments.runner import run_swarm

    if not os.path.exists("src"):  # bench invoked outside the repo root
        static: Dict[str, object] = {"skipped": "src does not exist here"}
    else:
        files = iter_python_files(["src"])
        sources = []
        for path in files:
            with open(path, "r", encoding="utf-8") as fh:
                sources.append((path, fh.read()))
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        index = ProjectIndex.build(sources)
        index_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        start = time.perf_counter()  # simlint: disable=SL002 -- see above
        findings = run_races(index)
        races_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        with TemporaryDirectory() as tmp:
            cache = os.path.join(tmp, "simlint-cache.json")
            run_deep(["src"], cache_path=cache)
            start = time.perf_counter()  # simlint: disable=SL002 -- see above
            warm = run_deep(["src"], cache_path=cache)
            warm_s = time.perf_counter() - start  # simlint: disable=SL002 -- see above
        if not warm.stats["races_reused"]:  # pragma: no cover - cache bug
            raise AssertionError("warm --deep run re-ran the races pass")
        static = {
            "files": len(files),
            "findings": len(findings),
            "index_build_s": round(index_s, 3),
            "races_pass_s": round(races_s, 3),
            "deep_cached_s": round(warm_s, 3),
        }

    def timed(sanitize):
        start = time.perf_counter()  # simlint: disable=SL002 -- benchmark measures real wall-time by design
        result = run_swarm(sanitize=sanitize, **SIMRACE_SPEC)
        return result, time.perf_counter() - start  # simlint: disable=SL002 -- see above

    plain, plain_s = timed(False)
    sanitized, sanitized_s = timed(True)
    raced, raced_s = timed("races")
    sim = plain.swarm.sim
    if sim.sanitizer is not None or sim.races is not None:
        raise AssertionError(
            "plain run attached instrumentation — fast path not clean")
    if sanitizer_mod._PATCHED:  # pragma: no cover - uninstall bug
        raise AssertionError(
            "race reporter left classes patched after the run")
    fired = {r.swarm.sim.events_fired for r in (plain, sanitized, raced)}
    if len(fired) != 1:  # pragma: no cover - reporter perturbed the run
        raise AssertionError(
            f"instrumented runs diverged in event count: {fired}")
    return {
        "static": static,
        "scenario": dict(SIMRACE_SPEC),
        "events_fired": plain.swarm.sim.events_fired,
        "plain_s": round(plain_s, 3),
        "sanitize_s": round(sanitized_s, 3),
        "races_s": round(raced_s, 3),
        "sanitize_overhead": round(sanitized_s / plain_s, 2),
        "races_overhead_vs_sanitize": round(raced_s / sanitized_s, 2),
        "conflicts_observed": raced.swarm.sim.races.total_conflicts,
    }


def run_bench(quick: bool = False, repeat: int = 3,
              workers: Optional[int] = None) -> Dict[str, object]:
    """Execute the full benchmark matrix and return the report dict."""
    if quick:
        repeat = 1
        engine_events = ENGINE_EVENTS_QUICK
        scenarios = QUICK_SCENARIOS
        n_seeds = PARALLEL_SEEDS_QUICK
    else:
        engine_events = ENGINE_EVENTS
        scenarios = SCENARIOS
        n_seeds = PARALLEL_SEEDS
    engine = None
    for _ in range(max(1, repeat)):
        sample = bench_engine(n_events=engine_events)
        if engine is None or sample["wall_time_s"] < engine["wall_time_s"]:
            engine = sample
    return {
        "benchmark": "repro bench",
        "quick": quick,
        "repeat": repeat,
        "cpu_count": os.cpu_count() or 1,
        "default_workers": resolve_workers(workers),
        "baseline_pre_pr3": dict(BASELINE_PRE_PR3),
        "engine": engine,
        "scenarios": bench_scenarios(scenarios, repeat=repeat),
        "parallel": bench_parallel(n_seeds, workers=workers),
        "sweep_fabric": bench_sweep_fabric(n_seeds, workers=workers,
                                           repeat=repeat, quick=quick),
        "tchain_crowd": bench_tchain_crowd(quick=quick),
        "alloc_audit": bench_alloc_audit(quick=quick),
        "index_equivalence": bench_index_equivalence(),
        # The substrate walls are short, so this leg takes more
        # best-of repeats than the heavyweight legs to keep the
        # overhead ratio out of scheduler-noise territory.
        "net_substrate": bench_net_substrate(repeat=max(repeat, 7)),
        "lint_deep": bench_lint_deep(),
        "simrace": bench_simrace(),
    }


def write_report(report: Dict[str, object], path: str) -> str:
    """Write the report as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:  # simlint: disable=SL011 -- bench report artifact, not sweep state
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
