"""Experiment scaling.

The paper's configurations (swarms of 200–10 000 peers, 512–2048
pieces, 30 seeds) are hours of pure-Python simulation.  Every
experiment here therefore takes an :class:`ExperimentScale` that
defaults to a laptop-friendly size preserving the paper's *shapes*
(orderings, ratios, crossovers), and can be raised toward paper scale
via environment variables:

* ``REPRO_SCALE``  — multiplier on swarm sizes and piece counts
  (1.0 = bench default; ~10 approaches the paper's configuration);
* ``REPRO_SEEDS``  — number of random seeds per data point
  (the paper uses 30).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shrinking/growing every experiment uniformly."""

    factor: float = 1.0
    seeds: int = 2
    root_seed: int = 42

    def swarm(self, base: int) -> int:
        """Scaled swarm size (at least 4)."""
        return max(4, round(base * self.factor))

    def pieces(self, base: int) -> int:
        """Scaled piece count (at least 1)."""
        return max(1, round(base * self.factor))

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Read ``REPRO_SCALE`` / ``REPRO_SEEDS`` / ``REPRO_SEED``."""
        return cls(
            factor=float(os.environ.get("REPRO_SCALE", "1.0")),
            seeds=int(os.environ.get("REPRO_SEEDS", "2")),
            root_seed=int(os.environ.get("REPRO_SEED", "42")),
        )


DEFAULT_SCALE = ExperimentScale()
