"""Fault-tolerant sweep execution fabric (docs/SWEEPS.md).

Layered over the picklable :class:`~repro.experiments.parallel.RunSpec`
/ :class:`~repro.experiments.parallel.RunSummary` halves:

* :mod:`~repro.experiments.fabric.manifest` — deterministic,
  content-addressed sharding of a spec matrix;
* :mod:`~repro.experiments.fabric.checkpoint` — atomic, sha256-verified
  per-shard checkpoints plus the append-only sweep journal;
* :mod:`~repro.experiments.fabric.supervisor` — dispatch with retries,
  backoff, timeouts, quarantine, and pool rebuild on worker death;
* :mod:`~repro.experiments.fabric.sweep` — the public
  :func:`run_specs_fabric` / :func:`resume_sweep` surface, merged in
  spec order and bit-identical to serial ``run_specs``.
"""

from repro.experiments.fabric.checkpoint import (
    CheckpointError,
    SweepJournal,
    load_shard_checkpoint,
    read_journal,
    scan_checkpoints,
    write_shard_checkpoint,
)
from repro.experiments.fabric.manifest import (
    DEFAULT_SHARD_SIZE,
    FABRIC_VERSION,
    ManifestError,
    Shard,
    SweepManifest,
    build_manifest,
    canonical_json,
    decode_value,
    encode_value,
    load_manifest,
    register_spec_class,
    spec_digest,
    write_manifest,
)
from repro.experiments.fabric.supervisor import (
    DEFAULT_RETRY_BUDGET,
    SHARD_RETRY_BASE_S,
    SHARD_RETRY_CAP_S,
    SweepError,
    SweepOutcome,
    SweepStats,
    SweepSupervisor,
    execute_shard,
)
from repro.experiments.fabric.sweep import (
    ENV_SWEEP_DIR,
    SweepIncomplete,
    resolve_sweep_dir,
    resume_sweep,
    run_specs_fabric,
    sweep_subdir,
)

__all__ = [
    "CheckpointError",
    "SweepJournal",
    "load_shard_checkpoint",
    "read_journal",
    "scan_checkpoints",
    "write_shard_checkpoint",
    "DEFAULT_SHARD_SIZE",
    "FABRIC_VERSION",
    "ManifestError",
    "Shard",
    "SweepManifest",
    "build_manifest",
    "canonical_json",
    "decode_value",
    "encode_value",
    "load_manifest",
    "register_spec_class",
    "spec_digest",
    "write_manifest",
    "DEFAULT_RETRY_BUDGET",
    "SHARD_RETRY_BASE_S",
    "SHARD_RETRY_CAP_S",
    "SweepError",
    "SweepOutcome",
    "SweepStats",
    "SweepSupervisor",
    "execute_shard",
    "ENV_SWEEP_DIR",
    "SweepIncomplete",
    "resolve_sweep_dir",
    "resume_sweep",
    "run_specs_fabric",
    "sweep_subdir",
]
