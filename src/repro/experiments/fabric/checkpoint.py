"""Atomic, verified per-shard checkpoints and the sweep journal.

Checkpoint contract
-------------------
One file per completed shard, ``<sweep_dir>/shards/<shard_id>.ckpt``,
holding the shard's ``RunSummary``/``ChaosSummary`` list.  The write
is **atomic** (temp file in the same directory, then ``os.replace``)
so a SIGKILL mid-write can never leave a half-checkpoint under the
final name; the payload is **self-verifying** (a header carrying the
shard id and the SHA-256 of the pickle bytes) so a truncated or
bit-rotten file is *detected* at load time and simply re-queued by
the supervisor instead of corrupting the merged sweep.

The presence of a valid checkpoint **is** the completion record: the
supervisor never trusts in-memory bookkeeping across restarts, it
re-derives "done" from the files.  That is what makes
``repro sweep --resume`` work after any kind of death — worker,
supervisor, or whole host.

Journal
-------
:class:`SweepJournal` is an append-only JSONL event log
(``<sweep_dir>/journal.jsonl``) for observability: dispatches,
completions, retries, timeouts, quarantines, pool rebuilds.  It is
*never read back for control decisions* — checkpoints are the source
of truth — so a torn final line (supervisor killed mid-append) is
harmless and tolerated by :func:`read_journal`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from typing import Dict, List, Optional, Sequence

CHECKPOINT_MAGIC = b"repro-shard-ckpt"
CHECKPOINT_VERSION = 1
SHARDS_DIRNAME = "shards"
QUARANTINE_DIRNAME = "quarantine"
JOURNAL_NAME = "journal.jsonl"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, truncated, corrupt, or mismatched.

    Callers treat this as "shard not done" — the shard is re-queued —
    never as a fatal sweep error.
    """


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file-then-rename.

    The temp file lives in the target directory (``os.replace`` is
    only atomic within a filesystem) and carries the pid so two
    processes writing the same checkpoint cannot collide mid-write;
    the final ``replace`` makes the last writer win wholesale.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def shards_dir(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, SHARDS_DIRNAME)


def quarantine_dir(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, QUARANTINE_DIRNAME)


def checkpoint_path(sweep_dir: str, shard_id: str) -> str:
    return os.path.join(shards_dir(sweep_dir), f"{shard_id}.ckpt")


def write_shard_checkpoint(sweep_dir: str, shard_id: str,
                           summaries: Sequence[object]) -> str:
    """Persist a completed shard's summaries; returns the path."""
    payload = pickle.dumps(list(summaries),
                           protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = (f"{CHECKPOINT_MAGIC.decode()} v{CHECKPOINT_VERSION} "
              f"{shard_id} {digest} {len(payload)}\n").encode("ascii")
    path = checkpoint_path(sweep_dir, shard_id)
    atomic_write_bytes(path, header + payload)
    return path


def load_shard_checkpoint(sweep_dir: str, shard_id: str) -> List[object]:
    """Load and verify one shard checkpoint.

    Raises :class:`CheckpointError` when the file is absent, its
    header is malformed, the shard id does not match, the payload is
    truncated, or the SHA-256 disagrees with the header.
    """
    path = checkpoint_path(sweep_dir, shard_id)
    if not os.path.isfile(path):
        raise CheckpointError(f"no checkpoint for shard "
                              f"{shard_id[:16]} at {path}")
    with open(path, "rb") as handle:
        header = handle.readline()
        payload = handle.read()
    parts = header.decode("ascii", errors="replace").split()
    if (len(parts) != 5 or parts[0] != CHECKPOINT_MAGIC.decode()
            or parts[1] != f"v{CHECKPOINT_VERSION}"):
        raise CheckpointError(f"checkpoint {path} has a malformed "
                              f"header {header!r}")
    if parts[2] != shard_id:
        raise CheckpointError(f"checkpoint {path} belongs to shard "
                              f"{parts[2][:16]}, expected "
                              f"{shard_id[:16]}")
    try:
        expected_len = int(parts[4])
    except ValueError:
        raise CheckpointError(f"checkpoint {path} has a malformed "
                              f"length field {parts[4]!r}")
    if len(payload) != expected_len:
        raise CheckpointError(f"checkpoint {path} truncated: "
                              f"{len(payload)} of {expected_len} "
                              f"payload bytes")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != parts[3]:
        raise CheckpointError(f"checkpoint {path} failed sha256 "
                              f"verification (corrupt)")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # corrupt pickle despite intact hash is
        # near-impossible, but version skew (class moved/renamed
        # between writer and reader) lands here too.
        raise CheckpointError(f"checkpoint {path} failed to "
                              f"unpickle: {exc!r}") from exc


def completed_shards(sweep_dir: str,
                     shard_ids: Sequence[str]) -> Dict[str, List[object]]:
    """``shard_id -> summaries`` for every *valid* checkpoint present.

    Invalid checkpoints are deleted so the supervisor's re-run cannot
    race a stale file, and reported via the returned ``corrupt`` list
    on the side: the function returns only clean shards; callers that
    need the corrupt ids should call :func:`scan_checkpoints`.
    """
    return scan_checkpoints(sweep_dir, shard_ids)[0]


def scan_checkpoints(sweep_dir: str, shard_ids: Sequence[str]
                     ) -> "tuple[Dict[str, List[object]], List[str]]":
    """(valid shard_id -> summaries, corrupt shard ids).

    Corrupt/truncated checkpoints are removed from disk — their shard
    is about to be re-run, and a half-file under the final name must
    not shadow the fresh result if that re-run is itself interrupted.
    """
    done: Dict[str, List[object]] = {}
    corrupt: List[str] = []
    for shard_id in shard_ids:
        path = checkpoint_path(sweep_dir, shard_id)
        if not os.path.isfile(path):
            continue
        try:
            done[shard_id] = load_shard_checkpoint(sweep_dir, shard_id)
        except CheckpointError:
            corrupt.append(shard_id)
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - fs race
                pass
    return done, corrupt


# ----------------------------------------------------------------------
# Quarantine records
# ----------------------------------------------------------------------
def quarantine_path(sweep_dir: str, shard_id: str) -> str:
    return os.path.join(quarantine_dir(sweep_dir), f"{shard_id}.json")


def write_quarantine(sweep_dir: str, shard_id: str, index: int,
                     attempts: int, error: str) -> str:
    """Record a poison shard: id, attempts burned, last exception."""
    path = quarantine_path(sweep_dir, shard_id)
    atomic_write_bytes(path, (json.dumps({
        "shard_id": shard_id,
        "index": index,
        "attempts": attempts,
        "error": error,
    }, sort_keys=True, indent=1) + "\n").encode("utf-8"))
    return path


def load_quarantine(sweep_dir: str) -> Dict[str, dict]:
    """``shard_id -> record`` for every quarantined shard on disk."""
    directory = quarantine_dir(sweep_dir)
    records: Dict[str, dict] = {}
    if not os.path.isdir(directory):
        return records
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), "r",
                  encoding="utf-8") as handle:
            try:
                record = json.load(handle)
            except json.JSONDecodeError:
                continue  # torn write: shard simply counts as pending
        records[record["shard_id"]] = record
    return records


def clear_quarantine(sweep_dir: str, shard_id: str) -> None:
    """Drop a quarantine record (the shard is being re-queued)."""
    try:
        os.remove(quarantine_path(sweep_dir, shard_id))
    except FileNotFoundError:
        pass


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class SweepJournal:
    """Append-only JSONL event log for one sweep directory.

    Purely observational: the supervisor *writes* it so an operator
    (or a test) can reconstruct what happened, but never reads it back
    for control flow — resume state comes from checkpoint files.
    """

    def __init__(self, sweep_dir: str):
        self.path = os.path.join(sweep_dir, JOURNAL_NAME)
        os.makedirs(sweep_dir, exist_ok=True)
        self._seq = 0

    def record(self, event: str, **fields: object) -> None:
        """Append one event line (flushed immediately)."""
        self._seq += 1
        entry = {"event": event, "seq": self._seq,
                 "wall": round(time.time(), 3)}  # simlint: disable=SL002 -- journal timestamps are real sweep wall-time, not simulated time
        entry.update(fields)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()


def read_journal(sweep_dir: str,
                 event: Optional[str] = None) -> List[dict]:
    """All journal entries (optionally filtered by event name).

    A torn final line — the supervisor was killed mid-append — is
    skipped silently; everything before it is intact by construction.
    """
    path = os.path.join(sweep_dir, JOURNAL_NAME)
    if not os.path.isfile(path):
        return []
    entries: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event is None or entry.get("event") == event:
                entries.append(entry)
    return entries
