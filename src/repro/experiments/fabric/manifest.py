"""Deterministic, content-addressed sweep manifests.

A sweep starts life as a flat spec list (``RunSpec``/``ChaosSpec``).
Before any work runs, the fabric shards that list into a
:class:`SweepManifest` — fixed-size slices of the matrix, each with a
**stable, content-addressed shard id**: the SHA-256 of the canonical
JSON encoding of the shard's position and specs.  Because the encoding
is canonical (sorted keys, explicit dataclass tags, no floats mangled,
no wall-clock anywhere), the same spec list always shards to the same
ids — which is what lets a killed sweep resume from its manifest and
lets checkpoints be verified against the work they claim to hold.

The manifest is written to ``<sweep_dir>/manifest.json`` atomically
before the first shard is dispatched, so the sweep directory is
self-describing from the first instant: ``repro sweep --resume <dir>``
needs nothing but the directory.

Spec encoding is invertible for a small registry of known frozen
dataclasses (:data:`SPEC_CLASSES`); anything else in a spec must be a
JSON scalar, tuple or dict of the same.  Extend the registry with
:func:`register_spec_class` when a new picklable spec type joins the
sweep layer.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields, is_dataclass
from typing import Dict, List, Sequence, Tuple, Type

#: Manifest format version, bumped on any encoding change so a resume
#: against an incompatible manifest fails loudly instead of merging
#: garbage.
FABRIC_VERSION = 1

#: Default specs per shard.  Small enough that losing a worker costs
#: little work; large enough that checkpoint/IPC overhead amortizes.
DEFAULT_SHARD_SIZE = 16

MANIFEST_NAME = "manifest.json"


class ManifestError(ValueError):
    """A manifest could not be built, encoded, or verified."""


# ----------------------------------------------------------------------
# Canonical spec encoding
# ----------------------------------------------------------------------
#: name -> class, for every dataclass allowed inside a manifest.
SPEC_CLASSES: Dict[str, Type] = {}


def register_spec_class(cls: Type) -> Type:
    """Allow ``cls`` instances inside manifests (usable as decorator)."""
    if not is_dataclass(cls):
        raise ManifestError(f"{cls!r} is not a dataclass")
    SPEC_CLASSES[cls.__name__] = cls
    return cls


def _register_builtin_spec_classes() -> None:
    # Imported lazily to keep module import order flexible (parallel
    # imports nothing from fabric, so this cannot cycle).
    from repro.attacks.freerider import FreeRiderOptions
    from repro.experiments.parallel import ChaosSpec, RunSpec
    for cls in (RunSpec, ChaosSpec, FreeRiderOptions):
        SPEC_CLASSES.setdefault(cls.__name__, cls)


def encode_value(value: object) -> object:
    """``value`` as a JSON-able tree with explicit type tags.

    Scalars pass through; tuples and registered dataclasses get tagged
    wrappers so :func:`decode_value` can rebuild the exact object.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(v) for v in value]}
    if is_dataclass(value) and not isinstance(value, type):
        _register_builtin_spec_classes()
        name = type(value).__name__
        if name not in SPEC_CLASSES:
            raise ManifestError(
                f"dataclass {name} is not manifest-encodable; register "
                f"it with repro.experiments.fabric.register_spec_class")
        return {"__dataclass__": name,
                "fields": {f.name: encode_value(getattr(value, f.name))
                           for f in fields(value)}}
    if isinstance(value, dict):
        encoded = {}
        for key, sub in value.items():
            if not isinstance(key, str):
                raise ManifestError(
                    f"non-string dict key {key!r} is not "
                    f"manifest-encodable")
            encoded[key] = encode_value(sub)
        return {"__dict__": encoded}
    raise ManifestError(f"value {value!r} ({type(value).__name__}) is "
                        f"not manifest-encodable")


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__list__" in value:
            return [decode_value(v) for v in value["__list__"]]
        if "__dict__" in value:
            return {k: decode_value(v)
                    for k, v in value["__dict__"].items()}
        if "__dataclass__" in value:
            _register_builtin_spec_classes()
            name = value["__dataclass__"]
            cls = SPEC_CLASSES.get(name)
            if cls is None:
                raise ManifestError(
                    f"manifest references unknown dataclass {name!r}")
            kwargs = {k: decode_value(v)
                      for k, v in value["fields"].items()}
            return cls(**kwargs)
        raise ManifestError(f"untagged dict in manifest: {value!r}")
    return value


def canonical_json(value: object) -> str:
    """The one true JSON rendering of an encoded tree: sorted keys,
    no whitespace — byte-stable across runs and platforms."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: object) -> str:
    """SHA-256 hex of one spec's canonical encoding."""
    return hashlib.sha256(
        canonical_json(encode_value(spec)).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Shards and manifests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the spec matrix.

    ``shard_id`` is content-addressed: the SHA-256 of the canonical
    encoding of ``(fabric version, index, specs)``.  Including the
    index keeps ids unique even when a sweep repeats identical spec
    slices, while staying fully deterministic.
    """

    index: int
    shard_id: str
    specs: Tuple[object, ...]

    @staticmethod
    def compute_id(index: int, specs: Sequence[object]) -> str:
        payload = canonical_json({
            "fabric": FABRIC_VERSION,
            "index": index,
            "specs": [encode_value(s) for s in specs],
        })
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def build(cls, index: int, specs: Sequence[object]) -> "Shard":
        specs = tuple(specs)
        return cls(index=index, shard_id=cls.compute_id(index, specs),
                   specs=specs)


@dataclass(frozen=True)
class SweepManifest:
    """The complete, deterministic description of one sweep."""

    sweep_id: str
    shard_size: int
    n_specs: int
    shards: Tuple[Shard, ...]

    @property
    def specs(self) -> List[object]:
        """The flat spec list, in original order."""
        return [spec for shard in self.shards for spec in shard.specs]


def build_manifest(specs: Sequence[object],
                   shard_size: int = DEFAULT_SHARD_SIZE) -> SweepManifest:
    """Shard ``specs`` into a manifest with stable shard ids."""
    specs = list(specs)
    if not specs:
        raise ManifestError("cannot build a manifest for zero specs")
    if shard_size < 1:
        raise ManifestError(f"shard_size must be >= 1: {shard_size}")
    shards = tuple(
        Shard.build(index, specs[start:start + shard_size])
        for index, start in enumerate(range(0, len(specs), shard_size)))
    sweep_id = hashlib.sha256(
        canonical_json([s.shard_id for s in shards]).encode("utf-8")
    ).hexdigest()
    return SweepManifest(sweep_id=sweep_id, shard_size=shard_size,
                         n_specs=len(specs), shards=shards)


def manifest_path(sweep_dir: str) -> str:
    return os.path.join(sweep_dir, MANIFEST_NAME)


def write_manifest(manifest: SweepManifest, sweep_dir: str) -> str:
    """Write ``manifest.json`` atomically; returns its path.

    An existing manifest for a *different* sweep is refused — a sweep
    directory belongs to exactly one spec matrix, and silently mixing
    two would corrupt every resume that follows.
    """
    from repro.experiments.fabric.checkpoint import atomic_write_bytes
    os.makedirs(sweep_dir, exist_ok=True)
    path = manifest_path(sweep_dir)
    if os.path.exists(path):
        existing = load_manifest(sweep_dir)
        if existing.sweep_id != manifest.sweep_id:
            raise ManifestError(
                f"{sweep_dir} already holds manifest "
                f"{existing.sweep_id[:16]} for a different spec matrix; "
                f"use a fresh directory (or --resume for this one)")
        return path  # identical manifest already on disk
    payload = {
        "fabric_version": FABRIC_VERSION,
        "sweep_id": manifest.sweep_id,
        "shard_size": manifest.shard_size,
        "n_specs": manifest.n_specs,
        "shards": [{
            "index": shard.index,
            "shard_id": shard.shard_id,
            "specs": [encode_value(s) for s in shard.specs],
        } for shard in manifest.shards],
    }
    atomic_write_bytes(
        path, (json.dumps(payload, sort_keys=True, indent=1) + "\n")
        .encode("utf-8"))
    return path


def load_manifest(sweep_dir: str) -> SweepManifest:
    """Read and *verify* the manifest of ``sweep_dir``.

    Every shard id is recomputed from the decoded specs; any mismatch
    (bit rot, hand edits, version skew) raises :class:`ManifestError`
    rather than letting a resume merge the wrong work.
    """
    path = manifest_path(sweep_dir)
    if not os.path.isfile(path):
        raise ManifestError(f"no manifest at {path}; not a sweep "
                            f"directory (or the sweep never started)")
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest {path} is not valid JSON: "
                                f"{exc}") from exc
    version = payload.get("fabric_version")
    if version != FABRIC_VERSION:
        raise ManifestError(f"manifest {path} has fabric_version "
                            f"{version!r}; this build speaks "
                            f"{FABRIC_VERSION}")
    shards = []
    for entry in payload["shards"]:
        specs = tuple(decode_value(s) for s in entry["specs"])
        shard = Shard.build(entry["index"], specs)
        if shard.shard_id != entry["shard_id"]:
            raise ManifestError(
                f"manifest {path} shard {entry['index']} id mismatch: "
                f"recorded {entry['shard_id'][:16]}, recomputed "
                f"{shard.shard_id[:16]} — manifest corrupt or built "
                f"by an incompatible encoder")
        shards.append(shard)
    manifest = SweepManifest(sweep_id=payload["sweep_id"],
                             shard_size=payload["shard_size"],
                             n_specs=payload["n_specs"],
                             shards=tuple(shards))
    expected = hashlib.sha256(
        canonical_json([s.shard_id for s in manifest.shards])
        .encode("utf-8")).hexdigest()
    if expected != manifest.sweep_id:
        raise ManifestError(f"manifest {path} sweep_id mismatch")
    return manifest
