"""Shard supervision: dispatch, retry, quarantine, pool rebuild.

The supervisor turns a :class:`~repro.experiments.fabric.manifest.
SweepManifest` into checkpoints, surviving everything the world throws
at its workers:

* **worker death** (SIGKILL, OOM) — a ``BrokenProcessPool`` does not
  abort the sweep: in-flight shards are re-queued, the pool is
  rebuilt, and only unfinished work replays (finished shards already
  live in checkpoints, which are the sole source of truth);
* **flaky shards** — an exception from a shard re-queues it with
  capped exponential backoff (the same ``base * 2**(attempt-1)``
  shape as the T-Chain control retransmits,
  :data:`repro.bt.protocols.tchain.CONTROL_RETRY_BASE_S`), up to a
  bounded per-shard retry budget;
* **poison shards** — a shard that exhausts its budget is recorded
  under ``quarantine/`` with its last exception and *skipped*, so one
  bad spec can never wedge a 10k-run sweep;
* **wedged shards** — a per-shard wall-clock timeout abandons the
  stuck worker (the pool is rebuilt; the old worker process is
  orphaned until its task ends — ``ProcessPoolExecutor`` offers no
  clean kill) and counts a failure against the shard.

Everything observable lands in the sweep journal; nothing but the
checkpoint files carries state across a supervisor restart, which is
exactly why ``--resume`` works after the supervisor itself dies.

This module is, with ``experiments/parallel.py``, one of the two
sanctioned process fan-out choke points (simlint SL008): it preserves
the same guarantees — spec-order results, per-run seeding, prompt
worker-death surfacing — and layers checkpointed recovery on top.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.fabric.checkpoint import (
    SweepJournal,
    clear_quarantine,
    load_quarantine,
    scan_checkpoints,
    write_quarantine,
    write_shard_checkpoint,
)
from repro.experiments.fabric.manifest import Shard, SweepManifest
from repro.experiments.parallel import (
    ParallelExecutionError,
    resolve_workers,
)

#: Retry backoff shape, mirroring the T-Chain control-retransmit
#: constants (CONTROL_RETRY_BASE_S / CONTROL_RETRY_CAP_S in
#: repro.bt.protocols.tchain): ``base * 2**(attempt-1)`` seconds,
#: capped.  Sweep shards are cheap to retry, so the base is small.
SHARD_RETRY_BASE_S = 0.1
SHARD_RETRY_CAP_S = 5.0

#: Failures tolerated per shard before quarantine (retries, not tries:
#: budget 3 = up to 4 executions).
DEFAULT_RETRY_BUDGET = 3

#: Supervisor loop tick: the longest it will block in ``wait`` before
#: re-checking deadlines and backoff eligibility.
_TICK_S = 0.25


class SweepError(ParallelExecutionError):
    """A sweep could not run at all (bad arguments, bad directory)."""


def _mono() -> float:
    """Supervisor wall clock (backoff deadlines, shard timeouts)."""
    return time.monotonic()  # simlint: disable=SL002 -- supervises real worker processes; measures sweep wall-time, never simulated time


def _sleep(seconds: float) -> None:
    if seconds > 0:
        time.sleep(min(seconds, _TICK_S))


# ----------------------------------------------------------------------
# Worker-process entry point
# ----------------------------------------------------------------------
def _executor_for(spec: object) -> Callable[[object], object]:
    from repro.experiments.parallel import (ChaosSpec, execute_chaos,
                                            execute_spec)
    if isinstance(spec, ChaosSpec):
        return execute_chaos
    return execute_spec


def execute_shard(task: Dict[str, object]) -> "tuple[str, List[object]]":
    """Run one shard to completion (the worker-process entry point).

    ``task`` carries the shard id/index, the live spec objects, the
    attempt number, and (under fault testing) a
    :class:`~repro.faults.workerkill.WorkerKill` plan consulted at
    every spec boundary — where it may SIGKILL this very process.
    """
    shard_id = task["shard_id"]
    kill = task.get("kill")
    summaries: List[object] = []
    for spec_index, spec in enumerate(task["specs"]):
        if kill is not None and kill.should_kill(
                shard_id, task["index"], task["attempt"], spec_index):
            kill.kill()  # pragma: no cover - SIGKILLs the worker
        summaries.append(_executor_for(spec)(spec))
    return shard_id, summaries


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
@dataclass
class _ShardState:
    shard: Shard
    failures: int = 0
    last_error: str = ""


@dataclass
class SweepStats:
    """What the supervisor did, for reports and assertions."""

    shards_total: int = 0
    resumed_from_checkpoint: int = 0
    corrupt_checkpoints: int = 0
    requeued_quarantined: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class SweepOutcome:
    """Everything a sweep run produced."""

    #: shard_id -> summaries, for every shard with a valid checkpoint
    #: (pre-existing or produced by this run).
    results: Dict[str, List[object]]
    #: shard_id -> quarantine record for shards that exhausted retries.
    quarantined: Dict[str, dict]
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def complete(self) -> bool:
        return not self.quarantined


class SweepSupervisor:
    """Drives one manifest to completion against a worker pool.

    ``task_fn`` defaults to :func:`execute_shard`; tests inject a
    different module-level callable to model hangs or synthetic work.
    ``worker_kill`` arms a :class:`~repro.faults.workerkill.WorkerKill`
    plan inside the dispatched tasks (parallel mode only — in serial
    mode the "worker" is the supervisor itself, and suicide is not
    supervision).
    """

    def __init__(self, manifest: SweepManifest, sweep_dir: str,
                 workers: Optional[int] = None,
                 shard_timeout_s: Optional[float] = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 retry_base_s: float = SHARD_RETRY_BASE_S,
                 retry_cap_s: float = SHARD_RETRY_CAP_S,
                 worker_kill=None,
                 journal: Optional[SweepJournal] = None,
                 task_fn: Callable = execute_shard):
        if retry_budget < 0:
            raise SweepError(f"retry_budget must be >= 0: {retry_budget}")
        self.manifest = manifest
        self.sweep_dir = sweep_dir
        self.workers = resolve_workers(workers)
        self.shard_timeout_s = shard_timeout_s
        self.retry_budget = retry_budget
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        self.worker_kill = worker_kill
        self.journal = journal or SweepJournal(sweep_dir)
        self.task_fn = task_fn
        self.stats = SweepStats(shards_total=len(manifest.shards))
        if worker_kill is not None and self.workers <= 1:
            raise SweepError(
                "worker_kill requires workers >= 2: in serial mode the "
                "shard runs inside the supervisor process, and killing "
                "it kills the sweep itself")

    # -- shared machinery ----------------------------------------------
    def _task_for(self, state: _ShardState) -> Dict[str, object]:
        return {
            "shard_id": state.shard.shard_id,
            "index": state.shard.index,
            "attempt": state.failures,
            "specs": state.shard.specs,
            "kill": self.worker_kill,
        }

    def _backoff_s(self, failures: int) -> float:
        return min(self.retry_base_s * 2 ** max(failures - 1, 0),
                   self.retry_cap_s)

    def _complete(self, state: _ShardState,
                  summaries: List[object],
                  results: Dict[str, List[object]]) -> None:
        write_shard_checkpoint(self.sweep_dir, state.shard.shard_id,
                               summaries)
        results[state.shard.shard_id] = summaries
        self.stats.executed += 1
        self.journal.record("shard_done", shard=state.shard.shard_id,
                            index=state.shard.index,
                            attempt=state.failures,
                            n_specs=len(state.shard.specs))

    def _fail(self, state: _ShardState, error: str, kind: str,
              quarantined: Dict[str, dict]) -> bool:
        """Count one failure; returns True if the shard may retry."""
        state.failures += 1
        state.last_error = error
        self.journal.record("shard_failed", shard=state.shard.shard_id,
                            index=state.shard.index, kind=kind,
                            failures=state.failures, error=error)
        if state.failures > self.retry_budget:
            record = {"shard_id": state.shard.shard_id,
                      "index": state.shard.index,
                      "attempts": state.failures,
                      "error": error}
            write_quarantine(self.sweep_dir, state.shard.shard_id,
                             state.shard.index, state.failures, error)
            quarantined[state.shard.shard_id] = record
            self.stats.quarantined += 1
            self.journal.record("shard_quarantined",
                                shard=state.shard.shard_id,
                                index=state.shard.index,
                                attempts=state.failures, error=error)
            return False
        self.stats.retries += 1
        return True

    def _scan_existing(self, results: Dict[str, List[object]]
                       ) -> List[_ShardState]:
        """Resume state from disk: valid checkpoints count as done,
        corrupt ones are dropped and re-queued, quarantine records are
        cleared and their shards re-queued."""
        shard_ids = [s.shard_id for s in self.manifest.shards]
        done, corrupt = scan_checkpoints(self.sweep_dir, shard_ids)
        results.update(done)
        self.stats.resumed_from_checkpoint = len(done)
        self.stats.corrupt_checkpoints = len(corrupt)
        for shard_id in corrupt:
            self.journal.record("checkpoint_corrupt", shard=shard_id)
        previously_quarantined = load_quarantine(self.sweep_dir)
        pending: List[_ShardState] = []
        for shard in self.manifest.shards:
            if shard.shard_id in done:
                continue
            if shard.shard_id in previously_quarantined:
                clear_quarantine(self.sweep_dir, shard.shard_id)
                self.stats.requeued_quarantined += 1
                self.journal.record("quarantine_requeued",
                                    shard=shard.shard_id,
                                    index=shard.index)
            pending.append(_ShardState(shard))
        return pending

    # -- execution -----------------------------------------------------
    def run(self) -> SweepOutcome:
        """Execute every shard not already checkpointed."""
        results: Dict[str, List[object]] = {}
        quarantined: Dict[str, dict] = {}
        pending = self._scan_existing(results)
        self.journal.record(
            "sweep_started", sweep=self.manifest.sweep_id,
            shards=len(self.manifest.shards), pending=len(pending),
            resumed=self.stats.resumed_from_checkpoint,
            workers=self.workers)
        if pending:
            if self.workers <= 1:
                self._run_serial(pending, results, quarantined)
            else:
                self._run_parallel(pending, results, quarantined)
        self.journal.record("sweep_finished",
                            sweep=self.manifest.sweep_id,
                            completed=len(results),
                            stats=self.stats.as_dict())
        return SweepOutcome(results=results, quarantined=quarantined,
                            stats=self.stats)

    def _run_serial(self, pending: List[_ShardState],
                    results: Dict[str, List[object]],
                    quarantined: Dict[str, dict]) -> None:
        """In-process execution: same retry/quarantine semantics, no
        pool (and no shard timeout — nothing can interrupt us)."""
        for state in pending:
            while True:
                self.journal.record("shard_dispatched",
                                    shard=state.shard.shard_id,
                                    index=state.shard.index,
                                    attempt=state.failures, worker=0)
                try:
                    _, summaries = self.task_fn(self._task_for(state))
                except Exception as exc:
                    if not self._fail(state, repr(exc), "exception",
                                      quarantined):
                        break
                    _sleep(self._backoff_s(state.failures))
                else:
                    self._complete(state, summaries, results)
                    break

    def _run_parallel(self, pending: List[_ShardState],
                      results: Dict[str, List[object]],
                      quarantined: Dict[str, dict]) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        queue = deque(pending)
        backoff_until: Dict[str, float] = {}
        pool = ProcessPoolExecutor(max_workers=self.workers)
        running: Dict[object, _ShardState] = {}
        deadlines: Dict[object, float] = {}

        def submit_eligible() -> bool:
            """Fill idle workers; True if the pool was found broken
            mid-submit (shard re-queued untouched, nothing lost)."""
            now = _mono()
            while queue and len(running) < self.workers:
                state = next(
                    (s for s in queue
                     if backoff_until.get(s.shard.shard_id, 0.0) <= now),
                    None)
                if state is None:
                    return False
                queue.remove(state)
                try:
                    future = pool.submit(self.task_fn,
                                         self._task_for(state))
                except BrokenProcessPool:
                    # A worker died after the last wait() but before
                    # this submit landed. The shard never ran: put it
                    # back unpenalized and let the caller rebuild. Any
                    # in-flight futures already carry the
                    # BrokenProcessPool and will be penalized normally.
                    queue.appendleft(state)
                    return True
                running[future] = state
                if self.shard_timeout_s is not None:
                    deadlines[future] = now + self.shard_timeout_s
                self.journal.record("shard_dispatched",
                                    shard=state.shard.shard_id,
                                    index=state.shard.index,
                                    attempt=state.failures)
            return False

        def requeue(state: _ShardState, penalize: bool, error: str,
                    kind: str) -> None:
            if penalize:
                if not self._fail(state, error, kind, quarantined):
                    return  # quarantined, not re-queued
                backoff_until[state.shard.shard_id] = \
                    _mono() + self._backoff_s(state.failures)
            else:
                self.journal.record("shard_requeued",
                                    shard=state.shard.shard_id,
                                    index=state.shard.index,
                                    reason=kind)
            queue.append(state)

        try:
            while queue or running:
                broken_on_submit = submit_eligible()
                if broken_on_submit and not running:
                    # Nothing in flight to attribute the death to (its
                    # failure was already collected); just rebuild.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                    self.stats.pool_rebuilds += 1
                    self.journal.record(
                        "pool_rebuilt",
                        rebuilds=self.stats.pool_rebuilds)
                    continue
                if not running:
                    if not queue:
                        break
                    # Everything is backing off; sleep to the earliest
                    # eligibility instead of spinning.
                    earliest = min(
                        backoff_until.get(s.shard.shard_id, 0.0)
                        for s in queue)
                    _sleep(earliest - _mono())
                    continue

                timeout = _TICK_S
                if deadlines:
                    timeout = min(timeout,
                                  max(0.0, min(deadlines.values())
                                      - _mono()))
                finished, _ = wait(list(running), timeout=timeout,
                                   return_when=FIRST_COMPLETED)

                rebuild = False
                for future in finished:
                    state = running.pop(future)
                    deadlines.pop(future, None)
                    try:
                        _, summaries = future.result()
                    except BrokenProcessPool as exc:
                        # Any in-flight shard may be the killer; each
                        # eats a failure (the innocent ones' budgets
                        # recover because retries are cheap).
                        rebuild = True
                        requeue(state, penalize=True,
                                error=f"worker process died "
                                      f"(SIGKILL/OOM): {exc!r}",
                                kind="worker_death")
                    except Exception as exc:
                        requeue(state, penalize=True, error=repr(exc),
                                kind="exception")
                    else:
                        self._complete(state, summaries, results)

                now = _mono()
                for future in [f for f, dl in deadlines.items()
                               if dl <= now]:
                    state = running.pop(future)
                    deadlines.pop(future, None)
                    self.stats.timeouts += 1
                    rebuild = True  # shed the wedged worker
                    requeue(state, penalize=True,
                            error=f"shard exceeded "
                                  f"{self.shard_timeout_s:g}s timeout",
                            kind="timeout")

                if rebuild:
                    # Remaining in-flight futures are lost with the
                    # pool; their shards were not at fault — replay
                    # without an attempt penalty.
                    for future, state in list(running.items()):
                        requeue(state, penalize=False, error="",
                                kind="pool_rebuild")
                    running.clear()
                    deadlines.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                    self.stats.pool_rebuilds += 1
                    self.journal.record("pool_rebuilt",
                                        rebuilds=self.stats.pool_rebuilds)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
