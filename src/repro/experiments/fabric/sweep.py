"""The fabric's public face: ``run_specs_fabric`` and resume.

``run_specs_fabric(specs)`` is a drop-in, fault-tolerant sibling of
:func:`repro.experiments.parallel.run_specs`: same input, same output
(summaries in spec order, bit-identical to serial execution), but the
work flows through a manifest → supervisor → checkpoint pipeline, so

* a dead worker costs at most one shard of work,
* a killed *sweep* resumes from its directory with
  :func:`resume_sweep` / ``repro sweep --resume``, re-running only the
  shards without a valid checkpoint,
* a poison spec quarantines its shard instead of wedging the matrix.

When no ``sweep_dir`` is given the fabric still runs — against a
throwaway temp directory — so callers get the retry/rebuild robustness
without committing to on-disk state.  The ``REPRO_SWEEP_DIR``
environment knob routes any fabric-aware caller (``run_many``, the
figure sweeps) to a persistent directory without plumbing an argument
through every layer.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import List, Optional, Sequence

from repro.experiments.fabric.manifest import (
    DEFAULT_SHARD_SIZE,
    ManifestError,
    SweepManifest,
    build_manifest,
    load_manifest,
    write_manifest,
)
from repro.experiments.fabric.supervisor import (
    DEFAULT_RETRY_BUDGET,
    SweepError,
    SweepOutcome,
    SweepSupervisor,
    execute_shard,
)

#: Environment knob: when set (and no explicit ``sweep_dir`` is
#: passed), fabric-aware sweeps persist their state under this parent
#: directory, one subdirectory per sweep id.
ENV_SWEEP_DIR = "REPRO_SWEEP_DIR"


class SweepIncomplete(SweepError):
    """The sweep finished with quarantined shards.

    Carries enough to act on: ``sweep_dir`` (resume after fixing the
    cause), ``quarantined`` (shard_id -> record with the last
    exception), and ``partial`` (summaries in spec order with ``None``
    holes for the quarantined shards).
    """

    def __init__(self, message: str, sweep_dir: str,
                 quarantined: dict, partial: List[object]):
        super().__init__(message)
        self.sweep_dir = sweep_dir
        self.quarantined = quarantined
        self.partial = partial


def resolve_sweep_dir(sweep_dir: Optional[str]) -> Optional[str]:
    """Explicit argument, else the ``REPRO_SWEEP_DIR`` knob, else None."""
    if sweep_dir is not None:
        return sweep_dir
    env = os.environ.get(ENV_SWEEP_DIR, "").strip()
    return env or None


def sweep_subdir(parent: str, specs: Sequence[object],
                 shard_size: int = DEFAULT_SHARD_SIZE) -> str:
    """A per-matrix subdirectory of ``parent``, named by sweep id.

    Lets many different sweeps (per protocol, per figure) share one
    parent directory without their manifests colliding: the same spec
    matrix always maps to the same subdirectory, so resume finds it.
    """
    manifest = build_manifest(specs, shard_size=shard_size)
    return os.path.join(parent, manifest.sweep_id[:16])


def _merge(manifest: SweepManifest, outcome: SweepOutcome,
           sweep_dir: str, allow_partial: bool) -> List[object]:
    """Checkpointed shard results, concatenated in spec order."""
    merged: List[object] = []
    for shard in manifest.shards:
        summaries = outcome.results.get(shard.shard_id)
        if summaries is not None:
            merged.extend(summaries)
        else:
            merged.extend([None] * len(shard.specs))
    if outcome.quarantined and not allow_partial:
        reasons = "; ".join(
            f"shard {record['index']} ({shard_id[:12]}): "
            f"{record['error']}"
            for shard_id, record in sorted(
                outcome.quarantined.items(),
                key=lambda kv: kv[1]["index"]))
        raise SweepIncomplete(
            f"{len(outcome.quarantined)} of {len(manifest.shards)} "
            f"shard(s) quarantined after exhausting their retry "
            f"budget — {reasons}.  Fix the cause and resume with "
            f"`repro sweep --resume {sweep_dir}`",
            sweep_dir=sweep_dir,
            quarantined=dict(outcome.quarantined),
            partial=merged)
    return merged


def run_specs_fabric(specs: Optional[Sequence[object]] = None,
                     workers: Optional[int] = None,
                     sweep_dir: Optional[str] = None,
                     resume: bool = False,
                     shard_size: int = DEFAULT_SHARD_SIZE,
                     retry_budget: int = DEFAULT_RETRY_BUDGET,
                     shard_timeout_s: Optional[float] = None,
                     worker_kill=None,
                     allow_partial: bool = False,
                     journal=None,
                     task_fn=execute_shard) -> List[object]:
    """Execute a spec matrix through the fault-tolerant fabric.

    Returns summaries in spec order, bit-identical to
    ``run_specs(specs)`` (and to any other worker count).  With
    ``resume=True``, ``specs`` may be omitted — the matrix is loaded
    from the sweep directory's manifest; if given, it must describe
    the *same* matrix (checked by sweep id) or :class:`ManifestError`
    is raised rather than silently merging the wrong work.

    Quarantined shards raise :class:`SweepIncomplete` unless
    ``allow_partial=True``, in which case their spec positions hold
    ``None``.
    """
    sweep_dir = resolve_sweep_dir(sweep_dir)
    tmp_dir: Optional[str] = None
    if sweep_dir is None:
        if resume:
            raise SweepError("resume=True requires a sweep_dir: a "
                             "temp-directory sweep leaves nothing to "
                             "resume from")
        tmp_dir = tempfile.mkdtemp(prefix="repro-sweep-")
        sweep_dir = tmp_dir
    try:
        if resume:
            manifest = load_manifest(sweep_dir)
            if specs is not None:
                expected = build_manifest(
                    list(specs), shard_size=manifest.shard_size)
                if expected.sweep_id != manifest.sweep_id:
                    raise ManifestError(
                        f"{sweep_dir} holds sweep "
                        f"{manifest.sweep_id[:16]}, but the given "
                        f"specs describe {expected.sweep_id[:16]}; "
                        f"refusing to resume a different matrix")
        else:
            if specs is None:
                raise SweepError(
                    "specs are required unless resume=True")
            manifest = build_manifest(list(specs),
                                      shard_size=shard_size)
            # Idempotent for the identical matrix (re-running the same
            # command continues from its checkpoints); refuses a
            # different one.
            write_manifest(manifest, sweep_dir)
        supervisor = SweepSupervisor(
            manifest, sweep_dir, workers=workers,
            shard_timeout_s=shard_timeout_s,
            retry_budget=retry_budget, worker_kill=worker_kill,
            journal=journal, task_fn=task_fn)
        outcome = supervisor.run()
        return _merge(manifest, outcome, sweep_dir, allow_partial)
    finally:
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)


def resume_sweep(sweep_dir: str,
                 workers: Optional[int] = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 shard_timeout_s: Optional[float] = None,
                 allow_partial: bool = False,
                 journal=None) -> List[object]:
    """Pick up a killed sweep from its directory.

    Shards with valid checkpoints are loaded, corrupt checkpoints and
    quarantine records are re-queued, and only the missing work runs.
    Returns the complete merged summary list, identical to what the
    uninterrupted sweep would have returned.
    """
    return run_specs_fabric(specs=None, workers=workers,
                            sweep_dir=sweep_dir, resume=True,
                            retry_budget=retry_budget,
                            shard_timeout_s=shard_timeout_s,
                            allow_partial=allow_partial,
                            journal=journal)
