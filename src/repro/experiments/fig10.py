"""Figure 10: active chains over time.

(a) Flash crowd: the active-chain count climbs until the fastest
bandwidth class finishes, then falls in a saw-tooth as each class
departs — chain termination tracks leecher departure.
(b) Continuous trace: the chain count rises with the swarm and then
moves in step with the number of active leechers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reporting import format_series
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_swarm
from repro.sim.events import PeriodicTask

BASE_LEECHERS = 60
BASE_PIECES = 32
SAMPLE_INTERVAL_S = 5.0


@dataclass
class ChainTimeline:
    """Sampled (time, active chains, active leechers) triples."""

    samples: List[Tuple[float, int, int]]

    def peak_chains(self) -> int:
        """Maximum concurrent chains."""
        return max((c for _, c, _ in self.samples), default=0)

    def chains_at_end(self) -> int:
        """Active chains at the final sample."""
        return self.samples[-1][1] if self.samples else 0


def run(scale: ExperimentScale = DEFAULT_SCALE,
        arrival: str = "flash") -> ChainTimeline:
    """Sample chain and leecher counts through one swarm run."""
    samples: List[Tuple[float, int, int]] = []

    def setup(swarm):
        def sample():
            state = getattr(swarm, "_tchain_state", None)
            active = state.registry.active_count if state else 0
            samples.append((swarm.sim.now, active,
                            swarm.active_leechers))
        PeriodicTask(swarm.sim, SAMPLE_INTERVAL_S, sample,
                     first_delay=0.0)

    run_swarm(protocol="tchain", leechers=scale.swarm(BASE_LEECHERS),
              pieces=scale.pieces(BASE_PIECES), seed=scale.root_seed,
              arrival=arrival, trace_horizon_s=400.0, setup=setup)
    return ChainTimeline(samples=samples)


def render(flash: ChainTimeline, trace: ChainTimeline) -> str:
    """Figure 10 as printed series."""
    a = format_series(
        "Fig. 10(a) active chains / leechers (flash crowd)",
        [(t, f"{chains} chains, {leech} leechers")
         for t, chains, leech in _thin(flash.samples)],
        x_label="time (s)", y_label="counts")
    b = format_series(
        "Fig. 10(b) active chains / leechers (trace)",
        [(t, f"{chains} chains, {leech} leechers")
         for t, chains, leech in _thin(trace.samples)],
        x_label="time (s)", y_label="counts")
    return a + "\n\n" + b


def _thin(samples: list, n: int = 15) -> list:
    if len(samples) <= n:
        return samples
    step = max(1, len(samples) // n)
    out = samples[::step]
    if out[-1] != samples[-1]:
        out.append(samples[-1])
    return out
