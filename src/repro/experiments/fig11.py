"""Figure 11: who initiates chains — the seeder or opportunistic
leechers.

(a) Flash crowd, no free-riders: the cumulative number of chains
created by the seeder versus by leechers over time.  Opportunistic
seeding is concentrated at the start, when the seeder alone cannot
feed the crowd; afterwards reciprocation keeps upload capacity busy
and the leecher-initiated rate falls toward zero.

(b) Continuous trace, free-rider share swept: the *fraction* of
chains created by opportunistic seeding grows with the free-rider
share, because every act of free-riding kills a chain that leechers
then replace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, run_swarm, seeds_for
from repro.sim.events import PeriodicTask

BASE_LEECHERS = 60
BASE_PIECES = 32
FRACTIONS = (0.0, 0.1, 0.25, 0.5)
SAMPLE_INTERVAL_S = 5.0


@dataclass
class CumulativeChains:
    """Sampled (time, by seeder, by leechers) triples."""

    samples: List[Tuple[float, int, int]]

    def final_counts(self) -> Tuple[int, int]:
        """(seeder, leechers) cumulative chains at the end."""
        if not self.samples:
            return (0, 0)
        _, seeder, leechers = self.samples[-1]
        return seeder, leechers


def run_cumulative(scale: ExperimentScale = DEFAULT_SCALE
                   ) -> CumulativeChains:
    """Fig. 11(a): cumulative chain creation by initiator type."""
    samples: List[Tuple[float, int, int]] = []

    def setup(swarm):
        def sample():
            state = getattr(swarm, "_tchain_state", None)
            if state is None:
                samples.append((swarm.sim.now, 0, 0))
            else:
                samples.append((swarm.sim.now,
                                state.registry.created_by_seeder,
                                state.registry.created_by_leechers))
        PeriodicTask(swarm.sim, SAMPLE_INTERVAL_S, sample,
                     first_delay=0.0)

    run_swarm(protocol="tchain", leechers=scale.swarm(BASE_LEECHERS),
              pieces=scale.pieces(BASE_PIECES), seed=scale.root_seed,
              setup=setup)
    return CumulativeChains(samples=samples)


@dataclass
class OpportunisticRow:
    """One Fig. 11(b) point."""

    freerider_fraction: float
    opportunistic_fraction: float
    ci95: float


def run_opportunistic_fraction(scale: ExperimentScale = DEFAULT_SCALE
                               ) -> List[OpportunisticRow]:
    """Fig. 11(b): opportunistic share vs free-rider share."""
    rows = []
    for fraction in FRACTIONS:
        seeds = seeds_for(f"fig11b/{fraction}", scale.root_seed,
                          scale.seeds)
        results = run_many(
            seeds, protocol="tchain",
            leechers=scale.swarm(BASE_LEECHERS),
            pieces=scale.pieces(BASE_PIECES),
            freerider_fraction=fraction, arrival="trace",
            trace_horizon_s=300.0)
        shares = summarize([r.opportunistic_fraction
                            for r in results])
        rows.append(OpportunisticRow(
            freerider_fraction=fraction,
            opportunistic_fraction=shares.mean,
            ci95=shares.ci95))
    return rows


def render(cumulative: CumulativeChains,
           rows: List[OpportunisticRow]) -> str:
    """Figure 11 as a printed series and table."""
    a = format_series(
        "Fig. 11(a) cumulative chains (flash crowd)",
        [(t, f"seeder {s}, leechers {l}")
         for t, s, l in cumulative.samples[:20]],
        x_label="time (s)", y_label="cumulative")
    b = format_table(
        ["free-rider %", "opportunistic chain fraction", "ci95"],
        [(int(r.freerider_fraction * 100), r.opportunistic_fraction,
          r.ci95) for r in rows],
        title="Fig. 11(b) opportunistic seeding share vs free-riders "
              "(trace)")
    return a + "\n\n" + b
