"""Figure 12: fairness CDFs.

Fairness factor = pieces downloaded / pieces uploaded per leecher
over its swarm lifetime (Sec. IV-H); the figure plots the CDF over
the last compliant finishers under trace arrivals.

Paper shapes: (a) with no free-riders every method is reasonably
fair, T-Chain and FairTorrent tightest around 1; (b) with 25 %
free-riders only T-Chain keeps a steep CDF near 1 — the baselines
spread out badly because compliant peers upload far more than they
receive back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import cdf_points
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, seeds_for

PROTOCOLS = ["bittorrent", "propshare", "fairtorrent", "tchain"]
BASE_LEECHERS = 60
BASE_PIECES = 24


@dataclass
class FairnessCurve:
    """Pooled fairness factors for one protocol/fraction cell."""

    protocol: str
    freerider_fraction: float
    factors: List[float]

    def cdf(self) -> list:
        """(fairness factor, cumulative fraction) points."""
        return cdf_points(self.factors)

    def spread(self) -> float:
        """90th − 10th percentile: the paper's visual 'steepness'."""
        if len(self.factors) < 2:
            return 0.0
        return (percentile(self.factors, 90)
                - percentile(self.factors, 10))

    def median(self) -> float:
        """Median fairness factor."""
        return percentile(self.factors, 50)


def run(scale: ExperimentScale = DEFAULT_SCALE
        ) -> Dict[float, List[FairnessCurve]]:
    """Both panels: fraction -> per-protocol fairness curves."""
    out: Dict[float, List[FairnessCurve]] = {}
    for fraction in (0.0, 0.25):
        curves = []
        for protocol in PROTOCOLS:
            seeds = seeds_for(f"fig12/{protocol}/{fraction}",
                              scale.root_seed, scale.seeds)
            results = run_many(
                seeds, protocol=protocol,
                leechers=scale.swarm(BASE_LEECHERS),
                pieces=scale.pieces(BASE_PIECES),
                freerider_fraction=fraction, arrival="trace",
                trace_horizon_s=300.0)
            factors: List[float] = []
            for r in results:
                factors.extend(r.metrics.fairness_factors("leecher"))
            curves.append(FairnessCurve(protocol, fraction, factors))
        out[fraction] = curves
    return out


def render(curves_by_fraction: Dict[float, List[FairnessCurve]]) -> str:
    """Figure 12 as printed summary tables."""
    blocks = []
    for fraction, curves in sorted(curves_by_fraction.items()):
        blocks.append(format_table(
            ["protocol", "median fairness", "p10-p90 spread", "n"],
            [(c.protocol, c.median(), c.spread(), len(c.factors))
             for c in curves],
            title=(f"Fig. 12 fairness factors, "
                   f"{int(fraction * 100)}% free-riders")))
    return "\n\n".join(blocks)
