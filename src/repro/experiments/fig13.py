"""Figure 13: small files under high churn.

1000 leechers join as a flash crowd; every finisher is instantly
replaced by a newcomer (replacement churn).  The shared file has
1–50 pieces.  Measured: the average download *throughput* of
compliant leechers during the first measurement window.  Random
BitTorrent (all bandwidth optimistically unchoked) joins the lineup.

Paper shapes:

* With very few pieces (≲5) and no free-riders, the baselines
  collapse (no reciprocation opportunities; the system degenerates to
  client–server around the seeder) while T-Chain stays well above
  them because reciprocation is *forced*.
* In the 5–30 piece band without free-riders, Random BitTorrent and
  FairTorrent edge out T-Chain (encryption/key overhead, here the
  extra protocol round-trips).
* With 50 % free-riders, T-Chain wins at every file size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.bt.protocols import PROTOCOLS as PROTOCOL_REGISTRY
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import build_config, seeds_for
from repro.bt.swarm import Swarm
from repro.bt.torrent import partial_book  # noqa: F401 (API parity)
from repro.attacks.freerider import FreeRiderOptions, make_freerider
from repro.workloads.arrivals import flash_crowd, schedule_arrivals
from repro.workloads.churn import ReplacementChurn

PROTOCOLS = ["random", "bittorrent", "propshare", "fairtorrent",
             "tchain"]
PIECE_COUNTS = (1, 2, 3, 5, 10, 20, 30)
BASE_LEECHERS = 50
MEASUREMENT_WINDOW_S = 150.0


@dataclass
class Fig13Row:
    """One (protocol, piece count, free-rider fraction) point."""

    protocol: str
    n_pieces: int
    freerider_fraction: float
    mean_throughput_kbps: float
    throughput_ci95: float


def _run_once(protocol: str, n_pieces: int, fraction: float,
              leechers: int, seed: int) -> float:
    """One churn run; returns compliant mean download throughput."""
    config = build_config(protocol, pieces=n_pieces,
                          piece_size_kb=64.0, seed=seed)
    swarm = Swarm(config)
    seeder_cls, leecher_cls = PROTOCOL_REGISTRY[protocol]
    seeder_cls(swarm).join()

    n_free = round(fraction * leechers)
    freerider_cls = make_freerider(leecher_cls, FreeRiderOptions())

    def compliant():
        return leecher_cls(swarm)

    def freerider():
        return freerider_cls(swarm)

    factories = [compliant] * (leechers - n_free) \
        + [freerider] * n_free
    swarm.sim.rng.shuffle(factories)
    schedule_arrivals(swarm, flash_crowd(factories, swarm.sim.rng))

    # Replacement churn keeps the population constant: a finished
    # compliant leecher is replaced by a compliant newcomer.
    ReplacementChurn(swarm, compliant, horizon_s=MEASUREMENT_WINDOW_S)
    swarm.run(max_time=MEASUREMENT_WINDOW_S, stop_when_drained=False)
    swarm.metrics.finalize_active(swarm)

    throughputs = []
    for record in swarm.metrics.by_kind("leecher"):
        lifetime = (record.leave_time if record.leave_time is not None
                    else MEASUREMENT_WINDOW_S) - record.join_time
        if lifetime > 0:
            throughputs.append(
                record.kb_downloaded * 8.0 / lifetime)
    if not throughputs:
        return 0.0
    return sum(throughputs) / len(throughputs)


def run(scale: ExperimentScale = DEFAULT_SCALE,
        fractions=(0.0, 0.5)) -> List[Fig13Row]:
    """Run the Fig. 13 sweep for the given free-rider fractions."""
    rows: List[Fig13Row] = []
    leechers = scale.swarm(BASE_LEECHERS)
    for fraction in fractions:
        for protocol in PROTOCOLS:
            for n_pieces in PIECE_COUNTS:
                seeds = seeds_for(
                    f"fig13/{protocol}/{n_pieces}/{fraction}",
                    scale.root_seed, scale.seeds)
                values = [_run_once(protocol, n_pieces, fraction,
                                    leechers, seed)
                          for seed in seeds]
                summary = summarize(values)
                rows.append(Fig13Row(
                    protocol=protocol,
                    n_pieces=n_pieces,
                    freerider_fraction=fraction,
                    mean_throughput_kbps=summary.mean,
                    throughput_ci95=summary.ci95))
    return rows


def render(rows: List[Fig13Row]) -> str:
    """Figure 13 as one printed table per free-rider fraction."""
    blocks = []
    for fraction in sorted({r.freerider_fraction for r in rows}):
        subset = [r for r in rows if r.freerider_fraction == fraction]
        blocks.append(format_table(
            ["protocol", "pieces", "throughput (Kbps)", "ci95"],
            [(r.protocol, r.n_pieces, r.mean_throughput_kbps,
              r.throughput_ci95) for r in subset],
            title=(f"Fig. 13 avg compliant download throughput, "
                   f"{int(fraction * 100)}% free-riders")))
    return "\n\n".join(blocks)


def value(rows: List[Fig13Row], protocol: str, n_pieces: int,
          fraction: float) -> float:
    """Look up one point."""
    for r in rows:
        if (r.protocol, r.n_pieces) == (protocol, n_pieces) \
                and abs(r.freerider_fraction - fraction) < 1e-9:
            return r.mean_throughput_kbps
    raise KeyError((protocol, n_pieces, fraction))
