"""Figure 3: performance without free-riding.

(a) average download completion time and (b) average uplink
utilization versus swarm size, for BitTorrent, PropShare, FairTorrent
and T-Chain under a flash-crowd arrival with no free-riders, plus the
fluid-optimal line.

Paper shapes to reproduce: all four protocols sit near the optimum
and stay flat as the swarm grows (scalability); T-Chain and
FairTorrent edge out the others on completion time thanks to higher
uplink utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, seeds_for

PROTOCOLS = ["bittorrent", "propshare", "fairtorrent", "tchain"]

#: Paper sweep: 200..1000 leechers; bench default scales this down.
BASE_SWARM_SIZES = (20, 40, 60, 80, 100)
BASE_PIECES = 24


@dataclass
class Fig3Row:
    """One (protocol, swarm size) data point."""

    protocol: str
    swarm_size: int
    mean_completion_s: float
    completion_ci95: float
    mean_utilization: float
    optimal_s: float


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Fig3Row]:
    """Run the Fig. 3 sweep and return its data points."""
    rows: List[Fig3Row] = []
    sizes = [scale.swarm(s) for s in BASE_SWARM_SIZES]
    pieces = scale.pieces(BASE_PIECES)
    for protocol in PROTOCOLS:
        for size in sizes:
            seeds = seeds_for(f"fig3/{protocol}/{size}",
                              scale.root_seed, scale.seeds)
            results = run_many(seeds, protocol=protocol, leechers=size,
                               pieces=pieces)
            mct = summarize([r.mean_completion_time() for r in results])
            util = summarize([r.mean_utilization() for r in results])
            rows.append(Fig3Row(
                protocol=protocol,
                swarm_size=size,
                mean_completion_s=mct.mean if mct else float("nan"),
                completion_ci95=mct.ci95 if mct else 0.0,
                mean_utilization=util.mean if util else 0.0,
                optimal_s=results[0].optimal_time()))
    return rows


def render(rows: List[Fig3Row]) -> str:
    """Figure 3 as two printed tables."""
    a = format_table(
        ["protocol", "swarm", "mean completion (s)", "ci95", "optimal"],
        [(r.protocol, r.swarm_size, r.mean_completion_s,
          r.completion_ci95, r.optimal_s) for r in rows],
        title="Fig. 3(a) avg download completion time (no free-riders)")
    b = format_table(
        ["protocol", "swarm", "uplink utilization"],
        [(r.protocol, r.swarm_size, r.mean_utilization) for r in rows],
        title="Fig. 3(b) avg uplink utilization (no free-riders)")
    return a + "\n\n" + b


def mean_by_protocol(rows: List[Fig3Row], attr: str) -> dict:
    """Protocol -> mean of an attribute across swarm sizes."""
    out = {}
    for protocol in {r.protocol for r in rows}:
        values = [getattr(r, attr) for r in rows
                  if r.protocol == protocol]
        out[protocol] = sum(values) / len(values)
    return out
