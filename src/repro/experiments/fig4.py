"""Figure 4: file-size and swarm-size effects under T-Chain.

(a) 600 compliant leechers, file size swept 32 MB → 1024 MB: the
paper reports completion time growing *linearly* with file size.
(b) 128 MB file, swarm size swept 10 → 10 000: completion time
converges and stays nearly constant (T-Chain scalability); small
swarms finish faster because the 6000 Kbps seeder dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, seeds_for

#: Paper: 32..1024 MB at 64 KB pieces (512..16384 pieces); scaled to
#: piece counts that keep the x4 range visible.
BASE_PIECE_SWEEP = (8, 16, 32, 64)
BASE_LEECHERS_A = 60

#: Paper: 10..10 000 leechers.
BASE_SWARM_SWEEP = (5, 10, 25, 50, 100, 200)
BASE_PIECES_B = 24


@dataclass
class FileSizeRow:
    """One Fig. 4(a) point."""

    n_pieces: int
    file_mb: float
    mean_completion_s: float
    completion_ci95: float


@dataclass
class SwarmSizeRow:
    """One Fig. 4(b) point."""

    swarm_size: int
    mean_completion_s: float
    completion_ci95: float


def run_file_size(scale: ExperimentScale = DEFAULT_SCALE
                  ) -> List[FileSizeRow]:
    """Fig. 4(a): sweep the shared file's size."""
    rows = []
    leechers = scale.swarm(BASE_LEECHERS_A)
    for base in BASE_PIECE_SWEEP:
        pieces = scale.pieces(base)
        seeds = seeds_for(f"fig4a/{pieces}", scale.root_seed,
                          scale.seeds)
        results = run_many(seeds, protocol="tchain", leechers=leechers,
                           pieces=pieces, piece_size_kb=64.0)
        mct = summarize([r.mean_completion_time() for r in results])
        rows.append(FileSizeRow(
            n_pieces=pieces,
            file_mb=pieces * 64.0 / 1024.0,
            mean_completion_s=mct.mean,
            completion_ci95=mct.ci95))
    return rows


def run_swarm_size(scale: ExperimentScale = DEFAULT_SCALE
                   ) -> List[SwarmSizeRow]:
    """Fig. 4(b): sweep the number of leechers."""
    rows = []
    pieces = scale.pieces(BASE_PIECES_B)
    for base in BASE_SWARM_SWEEP:
        size = scale.swarm(base)
        seeds = seeds_for(f"fig4b/{size}", scale.root_seed, scale.seeds)
        results = run_many(seeds, protocol="tchain", leechers=size,
                           pieces=pieces)
        mct = summarize([r.mean_completion_time() for r in results])
        rows.append(SwarmSizeRow(
            swarm_size=size,
            mean_completion_s=mct.mean,
            completion_ci95=mct.ci95))
    return rows


def render(file_rows: List[FileSizeRow],
           swarm_rows: List[SwarmSizeRow]) -> str:
    """Figure 4 as two printed tables."""
    a = format_table(
        ["pieces", "file (MB)", "mean completion (s)", "ci95"],
        [(r.n_pieces, r.file_mb, r.mean_completion_s,
          r.completion_ci95) for r in file_rows],
        title="Fig. 4(a) file size effects (T-Chain, no free-riders)")
    b = format_table(
        ["swarm", "mean completion (s)", "ci95"],
        [(r.swarm_size, r.mean_completion_s, r.completion_ci95)
         for r in swarm_rows],
        title="Fig. 4(b) swarm size effects (T-Chain, no free-riders)")
    return a + "\n\n" + b


def linearity_r2(rows: List[FileSizeRow]) -> float:
    """R² of completion time against file size (paper: linear)."""
    xs = [r.file_mb for r in rows]
    ys = [r.mean_completion_s for r in rows]
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 1.0
    return (sxy * sxy) / (sxx * syy)
