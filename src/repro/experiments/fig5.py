"""Figure 5: per-piece transfer timelines for extreme leechers.

For one T-Chain swarm, plot (as data series) when each encrypted
piece arrived and when its decryption key arrived, for the leecher
with the lowest (400 Kbps) and highest (1200 Kbps) upload rate.

Paper shapes: the encrypted-piece line climbs at the rate of the
*neighbors'* upload capacity, the decrypted line at the leecher's own
(reciprocation-bound) rate — so the 400 Kbps leecher shows a growing
gap between the two lines, while the 1200 Kbps leecher's lines nearly
coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.reporting import format_series
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_swarm

BASE_LEECHERS = 60
BASE_PIECES = 48


@dataclass
class PieceTimeline:
    """Cumulative encrypted/decrypted piece counts for one leecher."""

    capacity_kbps: float
    encrypted: List[Tuple[float, int]]  # (elapsed s, count)
    decrypted: List[Tuple[float, int]]

    def mean_key_lag_s(self) -> float:
        """Average time between matching encrypted and decrypted
        counts — the key-delivery lag the figure visualizes."""
        if not self.encrypted or not self.decrypted:
            return 0.0
        lags = []
        for (t_enc, count) in self.encrypted:
            later = [t for t, c in self.decrypted if c >= count]
            if later:
                lags.append(min(later) - t_enc)
        return sum(lags) / len(lags) if lags else 0.0


def run(scale: ExperimentScale = DEFAULT_SCALE
        ) -> Dict[str, PieceTimeline]:
    """Run one swarm and extract the two extreme leechers' timelines."""
    result = run_swarm(protocol="tchain",
                       leechers=scale.swarm(BASE_LEECHERS),
                       pieces=scale.pieces(BASE_PIECES),
                       seed=scale.root_seed)
    peers = [p for p in result.swarm.departed.values()
             if p.kind == "leecher" and p.piece_log]
    slowest = min(peers, key=lambda p: p.uplink.capacity_kbps)
    fastest = max(peers, key=lambda p: p.uplink.capacity_kbps)
    return {
        "slow": _timeline(slowest),
        "fast": _timeline(fastest),
    }


def _timeline(peer) -> PieceTimeline:
    encrypted: List[Tuple[float, int]] = []
    decrypted: List[Tuple[float, int]] = []
    join = peer.join_time or 0.0
    for t, piece, kind in sorted(peer.piece_log):
        elapsed = t - join
        if kind == "encrypted":
            encrypted.append((elapsed, len(encrypted) + 1))
        else:
            decrypted.append((elapsed, len(decrypted) + 1))
    return PieceTimeline(capacity_kbps=peer.uplink.capacity_kbps,
                         encrypted=encrypted, decrypted=decrypted)


def render(timelines: Dict[str, PieceTimeline]) -> str:
    """Figure 5 as printed series (sampled every few pieces)."""
    blocks = []
    for label in ("slow", "fast"):
        tl = timelines[label]
        blocks.append(
            f"Fig. 5 ({label}: {tl.capacity_kbps:.0f} Kbps leecher), "
            f"mean key lag {tl.mean_key_lag_s():.2f} s")
        blocks.append(format_series(
            "  encrypted pieces received", _sample(tl.encrypted),
            x_label="s after join", y_label="count"))
        blocks.append(format_series(
            "  decryption keys received", _sample(tl.decrypted),
            x_label="s after join", y_label="count"))
    return "\n".join(blocks)


def _sample(points: List[Tuple[float, int]], n: int = 10) -> list:
    if len(points) <= n:
        return points
    step = max(1, len(points) // n)
    sampled = points[::step]
    if sampled[-1] != points[-1]:
        sampled.append(points[-1])
    return sampled
