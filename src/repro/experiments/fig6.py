"""Figure 6: piece diversity and its effect on chain growth.

(a) The paper inserts a crawler into a live swarm and measures the
number of *different* pieces between every pair of its neighbors over
seven days, finding large differences (mean 612 of 2808) — leechers
almost always have something to trade.  We reproduce the methodology
inside the simulator: a crawler samples pairwise symmetric piece-set
differences among its neighbors over a continuous-arrival swarm (see
DESIGN.md substitutions).

(b) 600 leechers join with a pre-seeded random fraction of pieces
(0 %–100 %); completion time falls linearly with the pre-seeded
fraction, showing chains grow from whatever diversity exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, run_swarm, seeds_for
from repro.sim.events import PeriodicTask

BASE_LEECHERS_A = 50
BASE_PIECES_A = 48
BASE_LEECHERS_B = 40
BASE_PIECES_B = 24
FRACTION_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class DiversitySample:
    """Mean pairwise piece difference among sampled neighbors."""

    time_s: float
    mean_difference: float
    pairs: int


def run_crawler(scale: ExperimentScale = DEFAULT_SCALE,
                sample_interval_s: float = 20.0,
                sample_pairs: int = 40) -> List[DiversitySample]:
    """Fig. 6(a): crawl pairwise piece differences over time."""
    samples: List[DiversitySample] = []

    def setup(swarm):
        def crawl():
            # The crawler examines pairs among its neighbor view; we
            # sample random active leecher pairs, which is the same
            # population the tracker would hand a crawler.
            leechers = [p for p in swarm.peers.values()
                        if p.kind == "leecher"]
            if len(leechers) < 2:
                return
            rng = swarm.sim.rng
            diffs = []
            for _ in range(sample_pairs):
                a, b = rng.sample(leechers, 2)
                diffs.append(len(a.book.completed
                                 ^ b.book.completed))
            samples.append(DiversitySample(
                time_s=swarm.sim.now,
                mean_difference=sum(diffs) / len(diffs),
                pairs=len(diffs)))
        PeriodicTask(swarm.sim, sample_interval_s, crawl)

    run_swarm(protocol="tchain", leechers=scale.swarm(BASE_LEECHERS_A),
              pieces=scale.pieces(BASE_PIECES_A), seed=scale.root_seed,
              arrival="trace", trace_horizon_s=400.0, setup=setup)
    return samples


@dataclass
class InitialPieceRow:
    """One Fig. 6(b) point."""

    initial_fraction: float
    mean_completion_s: float
    completion_ci95: float


def run_initial_pieces(scale: ExperimentScale = DEFAULT_SCALE
                       ) -> List[InitialPieceRow]:
    """Fig. 6(b): sweep the pre-seeded piece fraction."""
    rows = []
    for fraction in FRACTION_SWEEP:
        seeds = seeds_for(f"fig6b/{fraction}", scale.root_seed,
                          scale.seeds)
        results = run_many(seeds, protocol="tchain",
                           leechers=scale.swarm(BASE_LEECHERS_B),
                           pieces=scale.pieces(BASE_PIECES_B),
                           initial_piece_fraction=fraction)
        mct = summarize([r.mean_completion_time() or 0.0
                         for r in results])
        rows.append(InitialPieceRow(
            initial_fraction=fraction,
            mean_completion_s=mct.mean,
            completion_ci95=mct.ci95))
    return rows


def render(samples: List[DiversitySample],
           rows: List[InitialPieceRow], n_pieces: int) -> str:
    """Figure 6 as a printed series and table."""
    a = format_series(
        f"Fig. 6(a) mean pairwise piece difference "
        f"(of {n_pieces} pieces)",
        [(s.time_s, s.mean_difference) for s in samples],
        x_label="time (s)", y_label="pieces")
    b = format_table(
        ["initial piece fraction", "mean completion (s)", "ci95"],
        [(r.initial_fraction, r.mean_completion_s, r.completion_ci95)
         for r in rows],
        title="Fig. 6(b) effect of initial piece differences (T-Chain)")
    return a + "\n\n" + b
