"""Figure 7: performance under free-riding (25 % free-riders).

Free-riders contribute zero upload bandwidth and evade penalties with
the large-view exploit and whitewashing.  The paper's shapes:

* (a) compliant leechers slow down noticeably under BitTorrent,
  PropShare and FairTorrent (up to ~33 %), while T-Chain protects
  them;
* (b) free-riders eventually finish under all three baselines
  (fastest under FairTorrent, thanks to whitewashing the deficits)
  but **never** under T-Chain — there is no T-Chain line in the
  paper's plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.attacks.freerider import FreeRiderOptions
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, seeds_for

PROTOCOLS = ["bittorrent", "propshare", "fairtorrent", "tchain"]
BASE_SWARM_SIZES = (20, 40, 60, 80, 100)
#: Larger than Fig. 3's piece count: free-rider damage shapes are
#: endgame-sensitive, and very short files overweight the endgame.
BASE_PIECES = 48
FREERIDER_FRACTION = 0.25

#: Give baseline free-riders room to finish (paper's Fig. 7(b) y-axis
#: runs to 50 000 s for ~1500 s compliant times).
MAX_TIME_FACTOR = 40.0


@dataclass
class Fig7Row:
    """One (protocol, swarm size) point with both populations."""

    protocol: str
    swarm_size: int
    compliant_completion_s: float
    compliant_ci95: float
    freerider_completion_s: Optional[float]
    freerider_completion_rate: float
    #: mean fraction of the file free-riders managed to *decrypt*
    freerider_progress: float = 0.0


def run(scale: ExperimentScale = DEFAULT_SCALE,
        options: FreeRiderOptions = FreeRiderOptions(),
        label: str = "fig7") -> List[Fig7Row]:
    """Run the Fig. 7 sweep (also reused by Fig. 8 with collusion)."""
    rows: List[Fig7Row] = []
    pieces = scale.pieces(BASE_PIECES)
    for protocol in PROTOCOLS:
        for base in BASE_SWARM_SIZES:
            size = scale.swarm(base)
            seeds = seeds_for(f"{label}/{protocol}/{size}",
                              scale.root_seed, scale.seeds)
            results = run_many(
                seeds, protocol=protocol, leechers=size, pieces=pieces,
                freerider_fraction=FREERIDER_FRACTION,
                freerider_options=options,
                max_time=MAX_TIME_FACTOR * pieces * 4.0)
            compliant = summarize(
                [r.mean_completion_time("leecher") for r in results])
            freerider = summarize(
                [r.mean_completion_time("freerider") for r in results])
            fr_rate = sum(r.completion_rate("freerider")
                          for r in results) / len(results)
            progress = []
            for r in results:
                for record in r.metrics.freeriders():
                    progress.append(record.pieces_completed
                                    / r.config.n_pieces)
            rows.append(Fig7Row(
                protocol=protocol,
                swarm_size=size,
                compliant_completion_s=(compliant.mean if compliant
                                        else float("nan")),
                compliant_ci95=compliant.ci95 if compliant else 0.0,
                freerider_completion_s=(freerider.mean if freerider
                                        else None),
                freerider_completion_rate=fr_rate,
                freerider_progress=(sum(progress) / len(progress)
                                    if progress else 0.0)))
    return rows


def render(rows: List[Fig7Row], title_prefix: str = "Fig. 7") -> str:
    """Figure 7 as two printed tables."""
    a = format_table(
        ["protocol", "swarm", "compliant completion (s)", "ci95"],
        [(r.protocol, r.swarm_size, r.compliant_completion_s,
          r.compliant_ci95) for r in rows],
        title=f"{title_prefix}(a) compliant leechers, 25% free-riders")
    b = format_table(
        ["protocol", "swarm", "free-rider completion (s)",
         "completion rate", "file fraction decrypted"],
        [(r.protocol, r.swarm_size, r.freerider_completion_s,
          r.freerider_completion_rate, r.freerider_progress)
         for r in rows],
        title=f"{title_prefix}(b) free-riders, 25% free-riders")
    return a + "\n\n" + b
