"""Figure 8: collusion against T-Chain.

Same setting as Fig. 7, but all T-Chain free-riders collude: whenever
a colluder is the designated payee for a fellow colluder's
transaction, it files a false reception report, so the donor releases
the key for an upload that never happened (Sec. III-A4).

Paper shapes: colluding free-riders *can* now finish downloads, but
orders of magnitude slower than compliant leechers (~40× at swarm
size 1000 — sub-dial-up speeds), and collusion barely affects
compliant leechers.  The baselines are unchanged from Fig. 7.
"""

from __future__ import annotations

from typing import List

from repro.attacks.freerider import FreeRiderOptions
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.fig7 import Fig7Row, render as _render, run as _run

#: Colluding free-riders (no whitewash: identity changes would break
#: the colluders' mutual recognition).
COLLUSION_OPTIONS = FreeRiderOptions(large_view=True, whitewash=False,
                                     collude=True)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Fig7Row]:
    """Run the Fig. 8 sweep (Fig. 7 with T-Chain collusion)."""
    return _run(scale, options=COLLUSION_OPTIONS, label="fig8")


def render(rows: List[Fig7Row]) -> str:
    """Figure 8 as two printed tables."""
    return _render(rows, title_prefix="Fig. 8")


def freerider_slowdown(rows: List[Fig7Row], protocol: str) -> float:
    """Mean free-rider/compliant completion ratio for a protocol
    (Fig. 8's headline: ~40× for T-Chain)."""
    ratios = []
    for r in rows:
        if r.protocol == protocol and r.freerider_completion_s \
                and r.compliant_completion_s:
            ratios.append(r.freerider_completion_s
                          / r.compliant_completion_s)
    return sum(ratios) / len(ratios) if ratios else float("inf")
