"""Figure 9: compliant performance vs free-rider share, trace arrivals.

Leecher arrivals follow the continuous RedHat-9-like trace; the
fraction of free-riders sweeps 0 %–50 %.  The paper measures the
steady-state compliant completion time (excluding startup transients).

Paper shapes: all methods are close below ~10 % free-riders; beyond
that the baselines degrade sharply while T-Chain stays nearly flat —
at 50 % free-riders the baselines are roughly 5× slower than T-Chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_many, seeds_for

PROTOCOLS = ["bittorrent", "propshare", "fairtorrent", "tchain"]
FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Denser than the other trace experiments: the Fig. 9 shape (baseline
#: degradation under free-riding) needs enough concurrent leechers
#: that the seeder is a small share of total capacity.
BASE_LEECHERS = 120
BASE_PIECES = 32
TRACE_HORIZON_S = 250.0


@dataclass
class Fig9Row:
    """One (protocol, free-rider fraction) point."""

    protocol: str
    freerider_fraction: float
    compliant_completion_s: float
    completion_ci95: float


def run(scale: ExperimentScale = DEFAULT_SCALE) -> List[Fig9Row]:
    """Run the Fig. 9 sweep."""
    rows: List[Fig9Row] = []
    leechers = scale.swarm(BASE_LEECHERS)
    pieces = scale.pieces(BASE_PIECES)
    for protocol in PROTOCOLS:
        for fraction in FRACTIONS:
            seeds = seeds_for(f"fig9/{protocol}/{fraction}",
                              scale.root_seed, scale.seeds)
            results = run_many(
                seeds, protocol=protocol, leechers=leechers,
                pieces=pieces, freerider_fraction=fraction,
                arrival="trace", trace_horizon_s=TRACE_HORIZON_S,
                max_time=40.0 * pieces * 4.0 + TRACE_HORIZON_S)
            mct = summarize([_steady_state_mct(r) for r in results])
            rows.append(Fig9Row(
                protocol=protocol,
                freerider_fraction=fraction,
                compliant_completion_s=(mct.mean if mct
                                        else float("nan")),
                completion_ci95=mct.ci95 if mct else 0.0))
    return rows


def _steady_state_mct(result) -> float:
    """Mean compliant completion time excluding the startup transient
    (the paper drops the first 500 of 1000 finishers; we drop the
    first third)."""
    records = [r for r in result.metrics.by_kind("leecher")
               if r.completion_time is not None]
    records.sort(key=lambda r: r.finish_time)
    steady = records[len(records) // 3:]
    if not steady:
        return float("nan")
    return sum(r.completion_time for r in steady) / len(steady)


def render(rows: List[Fig9Row]) -> str:
    """Figure 9 as a printed table."""
    return format_table(
        ["protocol", "free-rider %", "compliant completion (s)",
         "ci95"],
        [(r.protocol, int(r.freerider_fraction * 100),
          r.compliant_completion_s, r.completion_ci95) for r in rows],
        title="Fig. 9 compliant completion vs free-rider share "
              "(trace arrivals)")


def value(rows: List[Fig9Row], protocol: str,
          fraction: float) -> float:
    """Look up one point."""
    for r in rows:
        if r.protocol == protocol \
                and abs(r.freerider_fraction - fraction) < 1e-9:
            return r.compliant_completion_s
    raise KeyError((protocol, fraction))
