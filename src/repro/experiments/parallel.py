"""Parallel experiment execution.

Every paper figure is a sweep — seeds × protocols × populations pushed
through :func:`repro.experiments.runner.run_swarm` — and each run is an
independent, seeded simulation.  That makes the sweep embarrassingly
parallel *if* the unit of work can cross a process boundary, which the
live :class:`~repro.experiments.runner.RunResult` cannot (it drags the
whole ``Swarm``/``Simulator`` object graph along).  This module supplies
the two picklable halves:

* :class:`RunSpec` — a frozen, hashable description of one run (what
  :func:`run_swarm` would be called with), safe to ship to a worker;
* :class:`RunSummary` — the slim result extracted from a ``RunResult``
  (per-peer metric records, recovery counters, chain statistics, engine
  counters) with the same accessor surface the figure modules use, so
  serial and parallel sweeps are drop-in interchangeable.

:func:`run_specs` executes a spec list over a ``ProcessPoolExecutor``
and returns summaries **in spec order** regardless of which worker
finishes first — so a parallel sweep is bit-identical to a serial one,
worker count being pure wall-clock mechanics.  The worker count resolves
from the ``REPRO_WORKERS`` environment knob (``0`` = one per CPU) when
not passed explicitly; the default is serial.

This module is the single sanctioned fan-out choke point: simlint rule
SL008 flags ``ProcessPoolExecutor``/``multiprocessing`` use anywhere
else under ``src/`` so that determinism guarantees (spec-order results,
per-run seeding, no shared mutable state) cannot be bypassed ad hoc.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.chains import ChainStats, summarize_chains
from repro.analysis.metrics import SwarmMetrics
from repro.attacks.freerider import FreeRiderOptions
from repro.bt.config import SwarmConfig

#: Environment knob read when ``workers`` is not passed explicitly.
#: ``1`` (default) = serial, ``N`` = N worker processes, ``0`` = one
#: worker per CPU.
ENV_WORKERS = "REPRO_WORKERS"

#: run_swarm parameters that cannot cross a process boundary.
_UNSPECABLE = ("config", "setup", "fault_plan")


class ParallelExecutionError(RuntimeError):
    """A sweep could not be executed (or survive) in parallel."""


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else ``REPRO_WORKERS``
    (default 1 = serial); ``0`` means one worker per CPU."""
    if workers is None:
        raw = os.environ.get(ENV_WORKERS, "").strip()
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            raise ParallelExecutionError(
                f"{ENV_WORKERS}={raw!r} is not an integer")
    if workers < 0:
        raise ParallelExecutionError(f"workers must be >= 0: {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


# ----------------------------------------------------------------------
# RunSpec — the picklable unit of work
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One :func:`~repro.experiments.runner.run_swarm` call, frozen.

    Fields mirror the harness knobs; anything else a sweep passes
    (``real_crypto=True``, capacity overrides, ...) rides in
    ``config_overrides`` as a sorted key/value tuple so specs stay
    hashable and order-independent.
    """

    protocol: str = "tchain"
    seed: int = 0
    leechers: int = 40
    freerider_fraction: float = 0.0
    arrival: str = "flash"
    file_mb: Optional[float] = None
    pieces: Optional[int] = None
    piece_size_kb: Optional[float] = None
    max_time: Optional[float] = None
    freerider_options: Optional[FreeRiderOptions] = None
    initial_piece_fraction: float = 0.0
    trace_horizon_s: float = 2000.0
    sanitize: bool = False
    config_overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def from_kwargs(cls, **kwargs) -> "RunSpec":
        """Build a spec from ``run_swarm``-style keyword arguments.

        Raises :class:`ParallelExecutionError` for arguments that
        cannot cross a process boundary (``setup`` callables, live
        ``config`` objects, fault plans) — such runs must stay serial.

        ``kwargs`` is never mutated — neither on success nor on the
        error path — so callers can safely reuse one kwargs dict
        across many specs (the seed loop in ``run_many`` does).
        """
        blocked = [k for k in _UNSPECABLE if kwargs.get(k) is not None]
        if blocked:
            raise ParallelExecutionError(
                f"run_swarm argument(s) {', '.join(blocked)} cannot be "
                f"executed in a worker process; run serially "
                f"(workers=1) instead")
        names = {f.name for f in fields(cls)} - {"config_overrides"}
        direct = {k: v for k, v in kwargs.items() if k in names}
        extra = {k: v for k, v in kwargs.items()
                 if k not in names and k not in _UNSPECABLE}
        overrides = tuple(sorted(extra.items(), key=lambda kv: kv[0]))
        return cls(config_overrides=overrides, **direct)

    def kwargs(self) -> Dict[str, object]:
        """The ``run_swarm`` keyword arguments this spec describes."""
        kw: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
            if f.name != "config_overrides"}
        kw.update(dict(self.config_overrides))
        return kw


# ----------------------------------------------------------------------
# RunSummary — the picklable unit of result
# ----------------------------------------------------------------------
@dataclass
class RunSummary:
    """Everything a sweep consumes from one run, minus the live swarm.

    Carries the real :class:`~repro.analysis.metrics.SwarmMetrics`
    (plain per-peer records plus recovery counters — no simulator
    references) and the run's :class:`~repro.bt.config.SwarmConfig`,
    so the accessor surface matches ``RunResult`` where the figure
    modules need it.  ``wall_time_s`` is excluded from equality:
    summaries are *bit-identical* across serial/parallel execution,
    wall clocks are not.
    """

    protocol: str
    seed: int
    n_compliant: int
    n_freeriders: int
    config: SwarmConfig
    metrics: SwarmMetrics
    chain_stats: Optional[ChainStats]
    collusion_successes: int
    sim_time_s: float
    events_fired: int
    wall_time_s: float = field(compare=False, default=0.0)

    # -- RunResult-compatible accessors --------------------------------
    def mean_completion_time(self, kind: str = "leecher"
                             ) -> Optional[float]:
        """Average completion time for a peer kind."""
        return self.metrics.mean_completion_time(kind)

    def mean_utilization(self, kind: str = "leecher") -> Optional[float]:
        """Average uplink utilization for a peer kind."""
        return self.metrics.mean_utilization(kind)

    def completion_rate(self, kind: str = "leecher") -> float:
        """Fraction of peers of a kind that finished downloading."""
        return self.metrics.completion_rate(kind)

    def optimal_time(self) -> float:
        """The fluid optimum for this run's population."""
        from repro.experiments.runner import optimal_completion_time
        capacities = [r.capacity_kbps for r in self.metrics.records
                      if r.kind == "leecher"]
        return optimal_completion_time(
            self.config.n_pieces * self.config.piece_size_kb,
            self.config.seeder_capacity_kbps, capacities)

    @property
    def opportunistic_fraction(self) -> float:
        """Share of T-Chain chains initiated by leechers (0.0 when the
        run was not T-Chain)."""
        if self.chain_stats is None:
            return 0.0
        return self.chain_stats.opportunistic_fraction

    @property
    def events_per_second(self) -> float:
        """Engine throughput of the run (0.0 if wall time unknown)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.events_fired / self.wall_time_s


def summarize_run(result, wall_time_s: float = 0.0) -> RunSummary:
    """Extract a :class:`RunSummary` from a live ``RunResult``."""
    state = result.tchain_state
    chain_stats = (summarize_chains(state.registry)
                   if state is not None else None)
    collusion = (state.ledger.collusion_successes
                 if state is not None else 0)
    return RunSummary(
        protocol=result.protocol,
        seed=result.config.seed,
        n_compliant=result.n_compliant,
        n_freeriders=result.n_freeriders,
        config=result.config,
        metrics=result.metrics,
        chain_stats=chain_stats,
        collusion_successes=collusion,
        sim_time_s=result.swarm.sim.now,
        events_fired=result.swarm.sim.events_fired,
        wall_time_s=wall_time_s,
    )


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion (the worker-process entry point)."""
    from repro.experiments.runner import run_swarm
    start = time.perf_counter()  # simlint: disable=SL002 -- measures real sweep wall-time, not simulated time
    result = run_swarm(**spec.kwargs())
    wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    return summarize_run(result, wall_time_s=wall)


# ----------------------------------------------------------------------
# Ordered fan-out
# ----------------------------------------------------------------------
def _map_ordered(fn, items: Sequence, workers: int) -> List:
    """``[fn(x) for x in items]`` over a process pool, results in
    submission order regardless of completion order.

    A dead worker (hard crash, OOM kill) surfaces promptly as
    :class:`ParallelExecutionError`; an exception *raised by* ``fn``
    propagates as itself, exactly as in the serial comprehension.

    The raised error carries an ``in_flight`` tuple with the repr of
    every item that was possibly executing when the pool broke (the
    pool cannot say which worker held which item, so all unfinished
    items are candidates) — enough to isolate the killer without
    rerunning the whole sweep serially.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool
    futures: List = []
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [f.result() for f in futures]
    except BrokenProcessPool as exc:
        # Every future is settled once the with-block exits; the ones
        # poisoned by the pool break (rather than completed or
        # cancelled while queued) were the in-flight candidates.
        in_flight = tuple(
            repr(item) for item, future in zip(items, futures)
            if not future.done()
            or (not future.cancelled()
                and isinstance(future.exception(), BrokenProcessPool)))
        shown = ", ".join(in_flight[:3])
        if len(in_flight) > 3:
            shown += f", ... ({len(in_flight) - 3} more)"
        error = ParallelExecutionError(
            f"a worker process died while executing {len(items)} "
            f"spec(s) across {workers} workers (hard crash or the "
            f"OOM killer); in flight: [{shown}]; rerun with "
            f"{ENV_WORKERS}=1 to isolate the failing spec, or use "
            f"run_specs_fabric for checkpointed retries")
        error.in_flight = in_flight
        raise error from exc


def run_specs(specs: Sequence[RunSpec],
              workers: Optional[int] = None) -> List[RunSummary]:
    """Execute specs, serially or across worker processes.

    Results are returned in spec order and are bit-identical across
    any worker count: each run derives all randomness from its spec's
    seed, and summaries carry no shared state.
    """
    specs = list(specs)
    workers = resolve_workers(workers)
    if workers <= 1 or len(specs) <= 1:
        return [execute_spec(spec) for spec in specs]
    return _map_ordered(execute_spec, specs, workers)


# ----------------------------------------------------------------------
# Chaos sweeps (repro chaos --seeds ...)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSpec:
    """One picklable :func:`repro.faults.run_chaos` invocation."""

    leechers: int = 16
    pieces: int = 10
    seed: int = 0
    control_loss_prob: float = 0.10
    control_delay_prob: float = 0.10
    control_delay_s: float = 1.0
    upload_stall_prob: float = 0.02
    upload_stall_s: float = 5.0
    crashes: int = 2
    max_time: Optional[float] = None
    races: bool = False


@dataclass
class ChaosSummary:
    """The picklable slice of a ``ChaosResult`` the CLI reports."""

    seed: int
    passed: bool
    survivors_finished: int
    survivors_total: int
    crashes_executed: int
    sanitizer_checks: int
    recovery: Dict[str, int]
    rows: List[tuple]
    race_conflicts: int = 0
    race_descriptions: Tuple[str, ...] = ()
    wall_time_s: float = field(compare=False, default=0.0)


def execute_chaos(spec: ChaosSpec) -> ChaosSummary:
    """Run one chaos scenario (worker-process entry point)."""
    from repro.faults import run_chaos
    start = time.perf_counter()  # simlint: disable=SL002 -- real wall-time of the chaos sweep
    chaos = run_chaos(**asdict(spec))
    wall = time.perf_counter() - start  # simlint: disable=SL002 -- see above
    return ChaosSummary(
        seed=spec.seed,
        passed=chaos.passed,
        survivors_finished=chaos.survivors_finished,
        survivors_total=len(chaos.survivor_records),
        crashes_executed=len(chaos.injector.crashed_ids),
        sanitizer_checks=chaos.sanitizer_checks,
        recovery=chaos.counters.as_dict(),
        rows=chaos.summary_rows(),
        race_conflicts=chaos.race_conflict_count,
        race_descriptions=tuple(chaos.race_conflicts),
        wall_time_s=wall,
    )


def run_chaos_specs(specs: Sequence[ChaosSpec],
                    workers: Optional[int] = None) -> List[ChaosSummary]:
    """Execute chaos specs, serially or in parallel, in spec order."""
    specs = list(specs)
    workers = resolve_workers(workers)
    if workers <= 1 or len(specs) <= 1:
        return [execute_chaos(spec) for spec in specs]
    return _map_ordered(execute_chaos, specs, workers)
