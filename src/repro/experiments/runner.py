"""Build-populate-run harness for swarm experiments.

:func:`run_swarm` assembles one simulated swarm the way Sec. IV-A
describes: one permanent seeder, a population of leechers (optionally
partly free-riding), an arrival model (flash crowd or continuous
RedHat-9-like trace), then runs to completion and returns a
:class:`RunResult` exposing every metric the paper plots.

Per-protocol piece sizes follow the paper: 256 KB for BitTorrent and
PropShare, 64 KB for T-Chain and FairTorrent (Sec. IV-A).  Passing
``file_mb`` sizes the torrent in those units; passing ``pieces``
fixes the piece count directly (uniform 256 KB pieces) for quick,
protocol-comparable unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.attacks.freerider import FreeRiderOptions, make_freerider
from repro.bt.config import SwarmConfig
from repro.bt.protocols import PROTOCOLS
from repro.bt.swarm import Swarm
from repro.bt.torrent import partial_book
from repro.sim.randomness import SeedSequence
from repro.workloads.arrivals import flash_crowd, schedule_arrivals
from repro.workloads.trace import redhat9_like_trace

#: Paper piece sizes per protocol (Sec. IV-A).
PIECE_SIZE_KB = {
    "bittorrent": 256.0,
    "propshare": 256.0,
    "random": 256.0,
    "eigentrust": 256.0,
    "dandelion": 256.0,
    "fairtorrent": 64.0,
    "tchain": 64.0,
}


def optimal_completion_time(file_kb: float, seeder_kbps: float,
                            leecher_kbps: Sequence[float]) -> float:
    """Fluid lower bound on mean completion time (the "Optimal" line
    of Fig. 3, after Bharambe et al. [27] / Kumar-Ross).

    With unconstrained downlinks the binding constraints are the
    seeder's uplink and the swarm-wide average upload capacity.
    """
    n = len(leecher_kbps)
    if n == 0:
        return 0.0
    file_kbit = file_kb * 8.0
    aggregate = (seeder_kbps + sum(leecher_kbps)) / n
    return file_kbit / min(seeder_kbps, aggregate)


@dataclass
class RunResult:
    """Everything measured in one swarm run."""

    protocol: str
    config: SwarmConfig
    swarm: Swarm
    n_compliant: int
    n_freeriders: int

    @property
    def metrics(self):
        """The swarm's metric records."""
        return self.swarm.metrics

    @property
    def tchain_state(self):
        """T-Chain shared state (ledger, chains) or None."""
        return getattr(self.swarm, "_tchain_state", None)

    def mean_completion_time(self, kind: str = "leecher"
                             ) -> Optional[float]:
        """Average completion time for a peer kind."""
        return self.metrics.mean_completion_time(kind)

    def mean_utilization(self, kind: str = "leecher") -> Optional[float]:
        """Average uplink utilization for a peer kind."""
        return self.metrics.mean_utilization(kind)

    def completion_rate(self, kind: str = "leecher") -> float:
        """Fraction of peers of a kind that finished downloading."""
        return self.metrics.completion_rate(kind)

    def optimal_time(self) -> float:
        """The fluid optimum for this run's population."""
        capacities = [r.capacity_kbps for r in self.metrics.records
                      if r.kind == "leecher"]
        return optimal_completion_time(
            self.config.n_pieces * self.config.piece_size_kb,
            self.config.seeder_capacity_kbps, capacities)

    @property
    def opportunistic_fraction(self) -> float:
        """Share of T-Chain chains initiated by leechers (0.0 when the
        run was not T-Chain).  Mirrors
        :attr:`repro.experiments.parallel.RunSummary.opportunistic_fraction`
        so sweeps read the same attribute serial or parallel."""
        state = self.tchain_state
        if state is None:
            return 0.0
        return state.registry.opportunistic_fraction

    def summary(self, wall_time_s: float = 0.0):
        """The picklable :class:`~repro.experiments.parallel.RunSummary`
        slice of this result (what parallel sweeps return)."""
        from repro.experiments.parallel import summarize_run
        return summarize_run(self, wall_time_s=wall_time_s)


def build_config(protocol: str,
                 file_mb: Optional[float] = None,
                 pieces: Optional[int] = None,
                 piece_size_kb: Optional[float] = None,
                 seed: int = 0,
                 **overrides) -> SwarmConfig:
    """A :class:`SwarmConfig` with paper piece sizing for a protocol."""
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; "
                         f"choose from {sorted(PROTOCOLS)}")
    if file_mb is not None:
        size_kb = piece_size_kb if piece_size_kb is not None \
            else PIECE_SIZE_KB[protocol]
        n_pieces = max(1, round(file_mb * 1024.0 / size_kb))
    else:
        n_pieces = pieces if pieces is not None else 32
        size_kb = piece_size_kb if piece_size_kb is not None else 256.0
    return SwarmConfig(n_pieces=n_pieces, piece_size_kb=size_kb,
                       seed=seed, **overrides)


def run_swarm(protocol: str = "tchain",
              leechers: int = 40,
              freerider_fraction: float = 0.0,
              seed: int = 0,
              arrival: str = "flash",
              file_mb: Optional[float] = None,
              pieces: Optional[int] = None,
              piece_size_kb: Optional[float] = None,
              max_time: Optional[float] = None,
              freerider_options: Optional[FreeRiderOptions] = None,
              initial_piece_fraction: float = 0.0,
              trace_horizon_s: float = 2000.0,
              config: Optional[SwarmConfig] = None,
              setup: Optional[Callable[[Swarm], None]] = None,
              sanitize: object = False,
              profile: object = False,
              fault_plan=None,
              **config_overrides) -> RunResult:
    """Run one full swarm simulation.

    Parameters mirror the paper's experimental knobs; see Sec. IV-A.
    ``setup`` runs after the seeder joins but before leecher arrivals
    (used by experiments that need custom instrumentation).
    ``sanitize`` runs the whole swarm under the simulation sanitizer
    (see :mod:`repro.devtools.sanitizer`); the string ``"races"``
    additionally attaches the same-instant order-sensitivity reporter
    (:class:`~repro.devtools.sanitizer.RaceReporter`, the runtime
    counterpart of the SL2xx static checks).  ``profile="alloc"``
    attaches the engine's per-event allocation profiler
    (:class:`~repro.sim.engine.AllocProfile`, read back via
    ``result.swarm.sim.profile`` — the runner closes it after the run
    so tracemalloc does not keep taxing the process).  ``fault_plan``
    attaches a :class:`repro.faults.FaultPlan` through a fresh
    :class:`~repro.faults.FaultInjector`; an idle plan leaves the
    event trace bit-identical to a run without one (docs/FAULTS.md).
    """
    if freerider_options is None:
        # Constructed per call: a shared default instance would let a
        # caller's mutation (or a future non-frozen options class)
        # leak strategy flags across unrelated runs.
        freerider_options = FreeRiderOptions()
    if config is None:
        config = build_config(protocol, file_mb=file_mb, pieces=pieces,
                              piece_size_kb=piece_size_kb, seed=seed,
                              **config_overrides)
    if sanitize:
        # Keep the raw value: "races" means sanitizer + RaceReporter.
        config = config.with_overrides(
            extra={**config.extra, "sanitize": sanitize})
    if profile:
        config = config.with_overrides(
            extra={**config.extra, "profile": profile})
    swarm = Swarm(config)
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector
        FaultInjector(fault_plan, seed=config.seed).attach(swarm)
    seeder_cls, leecher_cls = PROTOCOLS[protocol]
    seeder = seeder_cls(swarm)
    seeder.join()
    if setup is not None:
        setup(swarm)

    n_free = round(freerider_fraction * leechers)
    n_compliant = leechers - n_free
    freerider_cls = make_freerider(leecher_cls, freerider_options)

    def compliant_factory():
        peer = leecher_cls(swarm)
        if initial_piece_fraction > 0:
            peer.book = partial_book(swarm.torrent,
                                     initial_piece_fraction,
                                     swarm.sim.rng)
        return peer

    factories: List[Callable] = [compliant_factory] * n_compliant
    factories += [lambda: freerider_cls(swarm)] * n_free
    swarm.sim.rng.shuffle(factories)

    if arrival == "flash":
        schedule = flash_crowd(factories, swarm.sim.rng)
    elif arrival == "trace":
        schedule = redhat9_like_trace(factories, swarm.sim.rng,
                                      horizon_s=trace_horizon_s)
    else:
        raise ValueError(f"unknown arrival model {arrival!r}")
    schedule_arrivals(swarm, schedule)

    if max_time is None:
        # Generous default: enough for the slowest compliant leechers
        # plus a long tail for free-riders in exploitable protocols.
        per_leecher = [min(config.leecher_capacities_kbps)] * max(
            leechers, 1)
        max_time = 60.0 * max(optimal_completion_time(
            config.n_pieces * config.piece_size_kb,
            config.seeder_capacity_kbps, per_leecher), 10.0)
        max_time += schedule.last_arrival

    try:
        swarm.run(max_time=max_time)
        swarm.metrics.finalize_active(swarm)
    finally:
        # The race reporter patches watched *classes*; unpatch even on
        # a sanitizer abort so later runs in this process are clean.
        if swarm.sim.races is not None:
            swarm.sim.races.uninstall()
        # Stop an owned tracemalloc tracer; the collected per-event
        # profile stays readable on swarm.sim.profile.
        if swarm.sim.profile is not None:
            swarm.sim.profile.close()
    return RunResult(protocol=protocol, config=config, swarm=swarm,
                     n_compliant=n_compliant, n_freeriders=n_free)


def run_many(seeds: Sequence[int], workers: Optional[int] = None,
             sweep_dir: Optional[str] = None, **kwargs) -> List:
    """Repeat :func:`run_swarm` across seeds.

    ``workers`` (or the ``REPRO_WORKERS`` environment knob when it is
    not passed; ``0`` = one per CPU) fans the seeds out over a process
    pool via :mod:`repro.experiments.parallel`.  Parallel execution
    returns :class:`~repro.experiments.parallel.RunSummary` objects —
    slim, picklable, in seed order, and bit-identical to summarizing
    the serial results; serial execution keeps returning full
    :class:`RunResult` objects (live swarm attached).  Both carry the
    accessor surface the figure sweeps consume.

    ``sweep_dir`` (or the ``REPRO_SWEEP_DIR`` environment knob) routes
    the sweep through the fault-tolerant fabric
    (:mod:`repro.experiments.fabric`): state persists in a per-matrix
    subdirectory of that parent, worker death costs at most one shard,
    and a killed sweep resumes with ``repro sweep --resume``.  Results
    stay bit-identical to the plain paths.
    """
    from repro.experiments.fabric import (resolve_sweep_dir,
                                          run_specs_fabric,
                                          sweep_subdir)
    from repro.experiments.parallel import (RunSpec, resolve_workers,
                                            run_specs)
    sweep_dir = resolve_sweep_dir(sweep_dir)
    if sweep_dir is None and resolve_workers(workers) <= 1:
        return [run_swarm(seed=seed, **kwargs) for seed in seeds]
    specs = [RunSpec.from_kwargs(seed=seed, **kwargs) for seed in seeds]
    if sweep_dir is None:
        return run_specs(specs, workers=workers)
    return run_specs_fabric(specs, workers=workers,
                            sweep_dir=sweep_subdir(sweep_dir, specs))


def summarize_metric(results: Sequence[RunResult],
                     metric: Callable[[RunResult], Optional[float]]
                     ) -> Optional[Summary]:
    """Mean ± CI of a per-run metric across results."""
    return summarize([metric(r) for r in results])


def seeds_for(experiment: str, root: int, count: int) -> List[int]:
    """Stable per-experiment seed derivation."""
    return SeedSequence(root, experiment).seeds(count)
