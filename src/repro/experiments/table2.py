"""Table II: incentive-scheme comparison under attacks.

The paper's Table II scores each incentive scheme (✓ good / blank
medium / ✗ bad) against the known manipulation strategies.  We
reproduce the *measurable* cells by running attack micro-scenarios
against our four protocol implementations and classifying the
outcome; the remaining cells (simplicity, false praise — properties
of reputation systems we do not implement) are design facts carried
over from the paper for context.

Measured cells:

* **exploiting altruism** — a plain free-rider (no tricks): does it
  complete the file in bounded time?
* **large-view exploit** — a free-rider harvesting neighbors: how
  much does the exploit speed it up / does it still complete?
* **whitewashing** — identity resets after every usable piece.
* **collusion** — colluding free-riders (T-Chain's false reports;
  meaningless against the baselines' local observations, which we
  verify by running it anyway).
* **fairness under attack** — spread of compliant fairness factors
  with 25 % free-riders.
* **small files** — compliant throughput on a 3-piece file under
  churn relative to the best protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.attacks.freerider import FreeRiderOptions
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.runner import run_swarm
from repro.experiments import fig13

PROTOCOLS = ["bittorrent", "propshare", "fairtorrent", "tchain"]

GOOD, MEDIUM, BAD = "good", "medium", "bad"

#: Paper Table II verdicts for the columns we measure.
PAPER_VERDICTS: Dict[str, Dict[str, str]] = {
    "exploiting altruism": {"bittorrent": BAD, "propshare": BAD,
                            "fairtorrent": BAD, "tchain": GOOD},
    "large-view exploit": {"bittorrent": BAD, "propshare": MEDIUM,
                           "fairtorrent": MEDIUM, "tchain": GOOD},
    "whitewashing": {"bittorrent": GOOD, "propshare": MEDIUM,
                     "fairtorrent": BAD, "tchain": GOOD},
    "collusion": {"bittorrent": GOOD, "propshare": GOOD,
                  "fairtorrent": GOOD, "tchain": GOOD},
    "fairness": {"bittorrent": BAD, "propshare": GOOD,
                 "fairtorrent": GOOD, "tchain": GOOD},
    "small files": {"bittorrent": BAD, "propshare": BAD,
                    "fairtorrent": GOOD, "tchain": GOOD},
}


@dataclass
class Cell:
    """One measured Table II cell."""

    feature: str
    protocol: str
    metric: float
    verdict: str
    paper_verdict: str

    @property
    def agrees(self) -> bool:
        """Direction agreement with the paper (medium counts with
        whichever side it borders)."""
        order = {GOOD: 2, MEDIUM: 1, BAD: 0}
        return abs(order[self.verdict]
                   - order[self.paper_verdict]) <= 1


@dataclass
class Table2:
    """All measured cells."""

    cells: List[Cell] = field(default_factory=list)

    def verdict(self, feature: str, protocol: str) -> str:
        """Measured verdict for a cell."""
        for c in self.cells:
            if (c.feature, c.protocol) == (feature, protocol):
                return c.verdict
        raise KeyError((feature, protocol))


def _freerider_scenario(protocol: str, options: FreeRiderOptions,
                        seed: int):
    return run_swarm(protocol=protocol, leechers=30, pieces=12,
                     seed=seed, freerider_fraction=0.2,
                     freerider_options=options,
                     max_time=4000.0)


def _verdict_from_freeriding(result) -> (float, str):
    """Classify how well free-riders did: GOOD means the attack
    yielded nothing, MEDIUM a throttled trickle, BAD a practical
    download."""
    rate = result.metrics.completion_rate("freerider")
    if rate == 0:
        return rate, GOOD
    compliant = result.mean_completion_time("leecher") or 1.0
    freerider = result.mean_completion_time("freerider")
    if freerider is None or freerider > 5.0 * compliant or rate < 0.5:
        return rate, MEDIUM
    return rate, BAD


def run(scale: ExperimentScale = DEFAULT_SCALE) -> Table2:
    """Run all attack micro-scenarios and assemble the table."""
    seed = scale.root_seed
    table = Table2()

    plain = FreeRiderOptions(large_view=False, whitewash=False)
    large_view = FreeRiderOptions(large_view=True, whitewash=False)
    whitewash = FreeRiderOptions(large_view=False, whitewash=True)
    collusion = FreeRiderOptions(large_view=True, whitewash=False,
                                 collude=True)

    for protocol in PROTOCOLS:
        scenarios = [
            ("exploiting altruism", plain),
            ("large-view exploit", large_view),
            ("whitewashing", whitewash),
            ("collusion", collusion),
        ]
        for feature, options in scenarios:
            result = _freerider_scenario(protocol, options, seed)
            metric, verdict = _verdict_from_freeriding(result)
            table.cells.append(Cell(
                feature=feature, protocol=protocol, metric=metric,
                verdict=verdict,
                paper_verdict=PAPER_VERDICTS[feature][protocol]))

        # fairness spread under 25% free-riders
        result = run_swarm(protocol=protocol, leechers=40, pieces=16,
                           seed=seed, freerider_fraction=0.25)
        factors = result.metrics.fairness_factors("leecher")
        spread = (percentile(factors, 90) - percentile(factors, 10)
                  if len(factors) >= 2 else 0.0)
        median = percentile(factors, 50) if factors else 1.0
        rel = spread / max(median, 1e-9)
        verdict = GOOD if rel < 1.3 else (MEDIUM if rel < 2.1 else BAD)
        table.cells.append(Cell(
            feature="fairness", protocol=protocol, metric=rel,
            verdict=verdict,
            paper_verdict=PAPER_VERDICTS["fairness"][protocol]))

    # small files: relative throughput on a 3-piece file, 50% FRs
    throughputs = {
        protocol: fig13._run_once(protocol, n_pieces=3, fraction=0.5,
                                  leechers=30, seed=seed)
        for protocol in PROTOCOLS
    }
    best = max(throughputs.values()) or 1.0
    for protocol, tp in throughputs.items():
        rel = tp / best
        verdict = GOOD if rel > 0.75 else (MEDIUM if rel > 0.4
                                           else BAD)
        table.cells.append(Cell(
            feature="small files", protocol=protocol, metric=rel,
            verdict=verdict,
            paper_verdict=PAPER_VERDICTS["small files"][protocol]))
    return table


def render(table: Table2) -> str:
    """Table II as printed text."""
    return format_table(
        ["feature", "protocol", "metric", "measured", "paper"],
        [(c.feature, c.protocol, c.metric, c.verdict, c.paper_verdict)
         for c in table.cells],
        title="Table II incentive comparison under attacks "
              "(measured vs paper)")
