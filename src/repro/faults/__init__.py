"""Deterministic fault injection for the T-Chain exchange.

Three pieces (see docs/FAULTS.md):

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the declarative
  failure configuration (control-message loss/delay, peer crash
  schedule, upload stalls);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which draws
  every fault decision from a *named substream* of the run seed so an
  attached-but-idle injector reproduces the fault-free event trace
  bit-for-bit;
* :mod:`repro.faults.harness` — :func:`run_chaos`, the chaos
  regression harness CI runs (``repro chaos``);
* :mod:`repro.faults.workerkill` — :class:`WorkerKill`, seeded
  SIGKILL injection for sweep-fabric worker processes
  (``repro sweep --kill-prob``, docs/SWEEPS.md).

The recovery machinery the faults exercise lives in the protocol glue
(:mod:`repro.bt.protocols.tchain`): report/key retransmission with
capped exponential backoff, the requestor plead path, donor-crash
orphan handling.
"""

from repro.faults.harness import ChaosResult, crash_schedule, run_chaos
from repro.faults.injector import FAULT_STREAM_LABEL, FaultInjector
from repro.faults.plan import (FaultPlan, FaultPlanError,
                               NetworkPartition, PeerCrash)
from repro.faults.workerkill import WORKERKILL_STREAM_LABEL, WorkerKill

__all__ = [
    "FAULT_STREAM_LABEL",
    "WORKERKILL_STREAM_LABEL",
    "ChaosResult",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "NetworkPartition",
    "PeerCrash",
    "WorkerKill",
    "crash_schedule",
    "run_chaos",
]
