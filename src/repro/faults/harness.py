"""Chaos regression harness.

:func:`run_chaos` is the one-call answer to "does the exchange still
converge when the network misbehaves?": it builds a
:class:`~repro.faults.plan.FaultPlan` from a few rates, runs a swarm
under the runtime sanitizer (every fair-exchange violation raises),
and reports whether every *surviving* honest leecher finished despite
the injected loss, delays, stalls and crashes.  CI runs it as a smoke
job (``repro chaos``); the acceptance tests pin seeds and assert the
recovery counters are nonzero and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PeerCrash


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    result: object  # repro.experiments.runner.RunResult
    plan: FaultPlan
    injector: FaultInjector

    @property
    def counters(self):
        """The run's :class:`repro.analysis.metrics.RecoveryCounters`."""
        return self.result.swarm.metrics.recovery

    @property
    def survivor_records(self) -> List:
        """Compliant-leecher records excluding crash victims."""
        crashed = set(self.injector.crashed_ids)
        return [r for r in self.result.metrics.by_kind("leecher")
                if r.peer_id not in crashed]

    @property
    def survivors_finished(self) -> int:
        return sum(1 for r in self.survivor_records if r.completed)

    @property
    def all_survivors_finished(self) -> bool:
        """The headline robustness claim: chaos starves nobody honest."""
        records = self.survivor_records
        return bool(records) and all(r.completed for r in records)

    def summary_rows(self) -> List[tuple]:
        """(label, value) rows for the CLI report."""
        counters = self.counters
        survivors = self.survivor_records
        return [
            ("seed", self.result.config.seed),
            ("survivors finished",
             f"{self.survivors_finished}/{len(survivors)}"),
            ("crashes executed / skipped",
             f"{len(self.injector.crashed_ids)}"
             f" / {self.injector.crashes_skipped}"),
            ("control dropped / delayed",
             f"{counters.control_dropped} / {counters.control_delayed}"),
            ("upload stalls", counters.stalls),
            ("report / key retransmits",
             f"{counters.report_retransmits} / "
             f"{counters.key_retransmits}"),
            ("key timeouts / pleads",
             f"{counters.key_timeouts} / {counters.pleads}"),
            ("reopens / forgives / orphaned chains",
             f"{counters.reopens} / {counters.forgives} / "
             f"{counters.orphaned_chains}"),
            ("sanitizer checks", self.sanitizer_checks),
        ]

    @property
    def sanitizer_checks(self) -> int:
        """Invariant checks the sanitizer ran (0 means it was off)."""
        sanitizer = self.result.swarm.sim.sanitizer
        return sanitizer.checks_run if sanitizer is not None else 0

    @property
    def passed(self) -> bool:
        """Survivors all finished and the sanitizer actually watched.

        A :class:`~repro.devtools.sanitizer.SanitizerError` would have
        aborted the run before this property is reachable, so reaching
        it with nonzero checks already implies zero fair-exchange
        violations.
        """
        return self.all_survivors_finished and self.sanitizer_checks > 0


def crash_schedule(count: int, first_s: float = 20.0,
                   spacing_s: float = 25.0) -> List[PeerCrash]:
    """``count`` seeded-victim crashes at fixed, spread-out times."""
    return [PeerCrash(at_s=first_s + i * spacing_s)
            for i in range(count)]


def run_chaos(leechers: int = 16,
              pieces: int = 10,
              seed: int = 0,
              control_loss_prob: float = 0.10,
              control_delay_prob: float = 0.10,
              control_delay_s: float = 1.0,
              upload_stall_prob: float = 0.02,
              upload_stall_s: float = 5.0,
              crashes: int = 2,
              plan: Optional[FaultPlan] = None,
              max_time: Optional[float] = None,
              **run_kwargs) -> ChaosResult:
    """One sanitized T-Chain swarm run under fault injection.

    Pass ``plan`` to override the rate knobs entirely.  Extra keyword
    arguments flow to :func:`repro.experiments.runner.run_swarm`.
    """
    from repro.experiments.runner import run_swarm

    if plan is None:
        plan = FaultPlan(
            control_loss_prob=control_loss_prob,
            control_delay_prob=control_delay_prob,
            control_delay_s=control_delay_s,
            upload_stall_prob=upload_stall_prob,
            upload_stall_s=upload_stall_s,
            crashes=tuple(crash_schedule(crashes)))
    result = run_swarm(protocol="tchain", leechers=leechers,
                       pieces=pieces, seed=seed, sanitize=True,
                       fault_plan=plan, max_time=max_time,
                       **run_kwargs)
    return ChaosResult(result=result, plan=plan,
                       injector=result.swarm.fault_injector)
