"""Chaos regression harness.

:func:`run_chaos` is the one-call answer to "does the exchange still
converge when the network misbehaves?": it builds a
:class:`~repro.faults.plan.FaultPlan` from a few rates, runs a swarm
under the runtime sanitizer (every fair-exchange violation raises),
and reports whether every *surviving* honest leecher finished despite
the injected loss, delays, stalls and crashes.  CI runs it as a smoke
job (``repro chaos``); the acceptance tests pin seeds and assert the
recovery counters are nonzero and reproducible.

``races=True`` runs the swarm with ``sanitize="races"``: the
:class:`~repro.devtools.sanitizer.RaceReporter` records per-event
field footprints inside each same-instant batch and surfaces
conflicting accesses on :attr:`ChaosResult.race_conflicts` — the
runtime counterpart of the SL201–SL203 static checks, exercised here
because fault-driven reschedules are exactly what perturbs
same-instant orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PeerCrash


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    result: object  # repro.experiments.runner.RunResult
    plan: FaultPlan
    injector: FaultInjector

    @property
    def counters(self):
        """The run's :class:`repro.analysis.metrics.RecoveryCounters`."""
        return self.result.swarm.metrics.recovery

    @property
    def survivor_records(self) -> List:
        """Compliant-leecher records excluding crash victims."""
        crashed = set(self.injector.crashed_ids)
        return [r for r in self.result.metrics.by_kind("leecher")
                if r.peer_id not in crashed]

    @property
    def survivors_finished(self) -> int:
        return sum(1 for r in self.survivor_records if r.completed)

    @property
    def all_survivors_finished(self) -> bool:
        """The headline robustness claim: chaos starves nobody honest."""
        records = self.survivor_records
        return bool(records) and all(r.completed for r in records)

    def summary_rows(self) -> List[tuple]:
        """(label, value) rows for the CLI report."""
        counters = self.counters
        survivors = self.survivor_records
        rows = [
            ("seed", self.result.config.seed),
            ("survivors finished",
             f"{self.survivors_finished}/{len(survivors)}"),
            ("crashes executed / skipped",
             f"{len(self.injector.crashed_ids)}"
             f" / {self.injector.crashes_skipped}"),
            ("control dropped / delayed",
             f"{counters.control_dropped} / {counters.control_delayed}"),
            ("upload stalls", counters.stalls),
            ("report / key retransmits",
             f"{counters.report_retransmits} / "
             f"{counters.key_retransmits}"),
            ("key timeouts / pleads",
             f"{counters.key_timeouts} / {counters.pleads}"),
            ("reopens / forgives / orphaned chains",
             f"{counters.reopens} / {counters.forgives} / "
             f"{counters.orphaned_chains}"),
            ("sanitizer checks", self.sanitizer_checks),
        ]
        reporter = self.race_reporter
        if reporter is not None:
            rows.append(("same-instant race conflicts",
                         f"{reporter.total_conflicts}"
                         f" ({len(reporter.conflicts)} distinct,"
                         f" {reporter.events_seen} events watched)"))
        return rows

    @property
    def sanitizer_checks(self) -> int:
        """Invariant checks the sanitizer ran (0 means it was off)."""
        sanitizer = self.result.swarm.sim.sanitizer
        return sanitizer.checks_run if sanitizer is not None else 0

    @property
    def race_reporter(self):
        """The run's :class:`~repro.devtools.sanitizer.RaceReporter`,
        or None when the run was not started with ``races=True``.  The
        reporter is uninstalled (classes unpatched) by the time the
        harness returns, but keeps its recorded conflicts."""
        return self.result.swarm.sim.races

    @property
    def race_conflict_count(self) -> int:
        """Total same-instant conflicting access pairs observed."""
        reporter = self.race_reporter
        return reporter.total_conflicts if reporter is not None else 0

    @property
    def race_conflicts(self) -> List[str]:
        """Human-readable descriptions of the retained conflicts."""
        reporter = self.race_reporter
        if reporter is None:
            return []
        return [c.describe() for c in reporter.conflicts]

    @property
    def passed(self) -> bool:
        """Survivors all finished and the sanitizer actually watched.

        A :class:`~repro.devtools.sanitizer.SanitizerError` would have
        aborted the run before this property is reachable, so reaching
        it with nonzero checks already implies zero fair-exchange
        violations.
        """
        return self.all_survivors_finished and self.sanitizer_checks > 0


def crash_schedule(count: int, first_s: float = 20.0,
                   spacing_s: float = 25.0) -> List[PeerCrash]:
    """``count`` seeded-victim crashes at fixed, spread-out times."""
    return [PeerCrash(at_s=first_s + i * spacing_s)
            for i in range(count)]


def run_chaos(leechers: int = 16,
              pieces: int = 10,
              seed: int = 0,
              control_loss_prob: float = 0.10,
              control_delay_prob: float = 0.10,
              control_delay_s: float = 1.0,
              upload_stall_prob: float = 0.02,
              upload_stall_s: float = 5.0,
              crashes: int = 2,
              plan: Optional[FaultPlan] = None,
              max_time: Optional[float] = None,
              races: bool = False,
              **run_kwargs) -> ChaosResult:
    """One sanitized T-Chain swarm run under fault injection.

    Pass ``plan`` to override the rate knobs entirely.  ``races``
    additionally attaches the runtime order-sensitivity reporter (the
    fair-exchange sanitizer stays on either way).  Extra keyword
    arguments flow to :func:`repro.experiments.runner.run_swarm`.
    """
    from repro.experiments.runner import run_swarm

    if plan is None:
        plan = FaultPlan(
            control_loss_prob=control_loss_prob,
            control_delay_prob=control_delay_prob,
            control_delay_s=control_delay_s,
            upload_stall_prob=upload_stall_prob,
            upload_stall_s=upload_stall_s,
            crashes=tuple(crash_schedule(crashes)))
    result = run_swarm(protocol="tchain", leechers=leechers,
                       pieces=pieces, seed=seed,
                       sanitize="races" if races else True,
                       fault_plan=plan, max_time=max_time,
                       **run_kwargs)
    return ChaosResult(result=result, plan=plan,
                       injector=result.swarm.fault_injector)
