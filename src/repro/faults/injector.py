"""The deterministic fault injector.

A :class:`FaultInjector` interprets a :class:`repro.faults.plan.FaultPlan`
against one swarm.  It interposes at exactly three points:

* :meth:`control_fate` — consulted by :meth:`repro.bt.swarm.Swarm.send_control`
  for every control message (drop / extra delay / pass);
* :meth:`stall_delay` — consulted by :meth:`repro.bt.peer.Peer` when a
  finished piece transfer hands its payload to the receiver;
* the crash schedule — :meth:`attach` schedules one event per
  :class:`~repro.faults.plan.PeerCrash`, each calling
  :meth:`repro.bt.peer.Peer.crash` (unclean departure).

Every draw comes from a *named substream* of the run seed
(:func:`repro.sim.randomness.substream`), never from the simulation's
main ``Simulator.rng`` — attaching an injector therefore perturbs no
existing draw, and an idle plan reproduces the fault-free trace
bit-for-bit.  simlint rule SL007 enforces this at review time for
everything under ``faults/``.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.faults.plan import FaultPlan, FaultPlanError, PeerCrash
from repro.sim.randomness import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.bt.swarm import Swarm

#: Label of the injector's substream; documented in docs/FAULTS.md as
#: part of the determinism contract.
FAULT_STREAM_LABEL = "faults"


class FaultInjector:
    """Injects the faults of one plan into one swarm, reproducibly.

    Parameters
    ----------
    plan:
        The declarative fault plan.
    seed:
        Root seed the substream is derived from; pass the swarm's
        ``config.seed`` (``attach`` asserts they match when possible).
    """

    def __init__(self, plan: FaultPlan, seed: int):
        self.plan = plan
        self._draws = substream(seed, FAULT_STREAM_LABEL)
        self.seed = seed
        self.swarm: Optional["Swarm"] = None
        #: ids of peers this injector crashed, in crash order
        self.crashed_ids: List[str] = []
        self.crashes_skipped = 0
        #: severed-link sets per applied partition, keyed by plan index
        self._severed_by_partition: dict = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, swarm: "Swarm") -> "FaultInjector":
        """Install on ``swarm`` and schedule the crash plan."""
        if swarm.fault_injector is not None:
            raise RuntimeError("swarm already has a fault injector")
        if self.plan.partitions and getattr(swarm, "net", None) is None:
            raise FaultPlanError(
                "partition plans need the network substrate — run "
                "with extra={'net': ...}")
        self.swarm = swarm
        swarm.fault_injector = self
        for crash in self.plan.crashes:
            swarm.sim.schedule_at(crash.at_s, self._execute_crash, crash)
        for index, partition in enumerate(self.plan.partitions):
            swarm.sim.schedule_at(partition.at_s,
                                  self._apply_partition, index,
                                  partition)
            if partition.heal_s is not None:
                swarm.sim.schedule_at(partition.heal_s,
                                      self._heal_partition, index)
        return self

    # ------------------------------------------------------------------
    # Network partitions
    # ------------------------------------------------------------------
    def _apply_partition(self, index: int, partition) -> None:
        cut = self.swarm.net.sever(partition.groups)
        self._severed_by_partition[index] = cut

    def _heal_partition(self, index: int) -> None:
        cut = self._severed_by_partition.pop(index, ())
        self.swarm.net.restore(cut)

    @property
    def _counters(self):
        return self.swarm.metrics.recovery

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def control_fate(self, kind: str, sender_id: str,
                     receiver_id: str) -> Optional[float]:
        """Decide one control message's fate.

        Returns ``None`` for a drop, else the extra delay (>= 0) to
        add on top of the configured control latency.  The zero-rate
        guards matter: an idle plan must make *no* draws, so its
        substream state cannot influence anything.
        """
        plan = self.plan
        if plan.control_loss_prob > 0.0 \
                and self._draws.random() < plan.control_loss_prob:
            self._counters.control_dropped += 1
            return None
        if plan.control_delay_prob > 0.0 \
                and self._draws.random() < plan.control_delay_prob:
            extra = self._draws.uniform(0.0, plan.control_delay_s)
            self._counters.control_delayed += 1
            return extra
        return 0.0

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def stall_delay(self) -> float:
        """Extra seconds before a finished transfer's payload lands."""
        plan = self.plan
        if plan.upload_stall_prob > 0.0 \
                and self._draws.random() < plan.upload_stall_prob:
            self._counters.stalls += 1
            return self._draws.uniform(0.0, plan.upload_stall_s)
        return 0.0

    # ------------------------------------------------------------------
    # Peer lifecycle
    # ------------------------------------------------------------------
    def _execute_crash(self, crash: PeerCrash) -> None:
        victim = self._resolve_victim(crash)
        if victim is None:
            self.crashes_skipped += 1
            return
        self.crashed_ids.append(victim.id)
        self._counters.crashes += 1
        victim.crash()

    def _resolve_victim(self, crash: PeerCrash):
        swarm = self.swarm
        if crash.peer_id is not None:
            victim = swarm.find_peer(crash.peer_id)
            if victim is None or not victim.active:
                return None
            return victim
        # Seeded draw: prefer a leecher that is mid-transaction (the
        # interesting victim — its crash strands sealed pieces, silent
        # payees and unhandled keys); fall back to any active leecher.
        leechers = sorted(swarm.leechers(), key=lambda p: p.id)
        if not leechers:
            return None
        state = getattr(swarm, "_tchain_state", None)
        if state is not None:
            busy = [p for p in leechers
                    if state.ledger.open_transactions_involving(p.id)]
            if busy:
                return self._draws.choice(busy)
        return self._draws.choice(leechers)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"FaultInjector(seed={self.seed}, "
                f"crashed={self.crashed_ids}, "
                f"skipped={self.crashes_skipped})")
