"""Declarative fault plans.

A :class:`FaultPlan` is pure configuration: which failure modes a run
should suffer and at what rates.  It makes no draws and holds no
state — the :class:`repro.faults.injector.FaultInjector` interprets it
against its own named random substream, so the *same plan + same seed*
always injects the same faults, and a plan with every rate at zero is
indistinguishable from no plan at all (bit-identical event traces;
see docs/FAULTS.md for the determinism contract).

The failure modes map to the robustness discussion of the paper
(Secs. II-B3/B4, III-A):

* **control-message loss/delay** — reception reports, key releases
  and pleads travel out-of-band (Sec. III-C); losing one silently
  wedges an exchange unless the recovery layer retries or pleads.
* **peer crashes** — *unclean* departures: the victim vanishes
  mid-transaction without the Sec. II-B4 key handover or payee
  reassignment it would perform on a clean leave.
* **upload stalls** — a piece transfer whose payload lands late
  (flaky last hop), exercising the obligation retry machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class FaultPlanError(ValueError):
    """Raised for ill-formed fault plans."""


@dataclass(frozen=True)
class PeerCrash:
    """One scheduled unclean departure.

    ``peer_id`` pins the victim; ``None`` lets the injector draw one
    (from its substream) among the active leechers with open
    transactions at ``at_s`` — the mid-transaction crash the recovery
    layer must survive.  A crash whose victim cannot be resolved
    (departed already, nobody eligible) is skipped and counted in
    :attr:`FaultInjector.crashes_skipped`.
    """

    at_s: float
    peer_id: Optional[str] = None

    def __post_init__(self):
        if self.at_s < 0:
            raise FaultPlanError(f"crash scheduled at negative time "
                                 f"{self.at_s!r}")


@dataclass(frozen=True)
class NetworkPartition:
    """One scheduled network partition (requires the substrate,
    ``extra={"net": ...}``; attaching a partition plan to a flat-model
    swarm is a configuration error the injector rejects).

    At ``at_s`` every substrate link whose endpoints fall in different
    ``groups`` is severed — nodes not named in any group form an
    implicit final group, so ``groups=(("dc2",),)`` isolates ``dc2``
    from the rest of the world.  Control messages between the sides
    drop as unroutable and piece transfers cannot start, exercising
    retransmit/plead/orphan recovery at partition scale rather than
    per-peer.  At ``heal_s`` (if given) the severed links come back
    and routing re-converges.
    """

    at_s: float
    groups: Tuple[Tuple[str, ...], ...]
    heal_s: Optional[float] = None

    def __post_init__(self):
        if self.at_s < 0:
            raise FaultPlanError(
                f"partition scheduled at negative time {self.at_s!r}")
        if self.heal_s is not None and self.heal_s <= self.at_s:
            raise FaultPlanError(
                f"partition heal at {self.heal_s!r} must follow the "
                f"cut at {self.at_s!r}")
        groups = tuple(tuple(group) for group in self.groups)
        if not groups or not any(groups):
            raise FaultPlanError("partition needs at least one "
                                 "non-empty node group")
        object.__setattr__(self, "groups", groups)


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Failure rates and schedules for one simulated run.

    Attributes
    ----------
    control_loss_prob:
        Probability each control message (reception report, key
        release, plead, reopen notice) is silently dropped.
    control_delay_prob / control_delay_s:
        Probability a surviving control message is delayed, and the
        maximum extra delay (uniform draw in ``(0, control_delay_s]``).
    upload_stall_prob / upload_stall_s:
        Probability a completed piece transfer's payload lands late,
        and the maximum stall.
    crashes:
        Scheduled unclean departures (:class:`PeerCrash`).
    partitions:
        Scheduled substrate partitions (:class:`NetworkPartition`);
        only valid on swarms running with a network substrate.
    """

    control_loss_prob: float = 0.0
    control_delay_prob: float = 0.0
    control_delay_s: float = 1.0
    upload_stall_prob: float = 0.0
    upload_stall_s: float = 5.0
    crashes: Tuple[PeerCrash, ...] = field(default_factory=tuple)
    partitions: Tuple[NetworkPartition, ...] = field(
        default_factory=tuple)

    def __post_init__(self):
        _check_prob("control_loss_prob", self.control_loss_prob)
        _check_prob("control_delay_prob", self.control_delay_prob)
        _check_prob("upload_stall_prob", self.upload_stall_prob)
        if self.control_delay_s < 0:
            raise FaultPlanError(
                f"control_delay_s must be >= 0, got "
                f"{self.control_delay_s!r}")
        if self.upload_stall_s < 0:
            raise FaultPlanError(
                f"upload_stall_s must be >= 0, got "
                f"{self.upload_stall_s!r}")
        # Tuple-ify so callers may pass lists without breaking
        # hashability of the frozen dataclass.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def idle(self) -> bool:
        """True when the plan injects nothing at all."""
        return (self.control_loss_prob == 0.0
                and self.control_delay_prob == 0.0
                and self.upload_stall_prob == 0.0
                and not self.crashes
                and not self.partitions)
