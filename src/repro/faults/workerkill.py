"""WorkerKill — seeded SIGKILL injection for sweep workers.

The sweep fabric's robustness claim ("a dead worker never costs more
than one shard, and a killed sweep resumes bit-identically") is only
credible if something actually kills workers mid-shard.  This fault
does, deterministically: every kill decision is drawn from a named
substream (:func:`repro.sim.randomness.substream`) keyed by the shard
id, the attempt number, and the spec index, so the same plan + same
sweep always murders the same workers at the same spec boundaries —
the test suite, the ``sweep_fabric`` bench leg and the CI
``sweep-chaos`` job all rely on that reproducibility.

``SIGKILL`` is the point: the worker gets no chance to flush, raise,
or clean up — exactly the failure a ``BrokenProcessPool`` reports —
so the supervisor's rebuild/retry/resume machinery is exercised on
the real thing, not a polite exception.

Two targeting modes:

* **probabilistic** — ``prob`` per spec boundary (so a shard of *s*
  specs dies with probability ``1 - (1-prob)**s``);
* **pinned** — ``shard_indices`` names exact shards to kill, for the
  "kill after k shards" resume tests.

By default kills only fire on a shard's *first* attempt
(``max_kill_attempts=1``), so a retrying or resumed supervisor always
makes progress — raise it to model a persistently poisonous shard
that must end in quarantine.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.randomness import substream

#: Substream label namespace; shard/attempt/spec are appended so every
#: decision point owns an independent, collision-free stream.
WORKERKILL_STREAM_LABEL = "workerkill"


@dataclass(frozen=True)
class WorkerKill:
    """A declarative, seeded worker-murder plan.

    Attributes
    ----------
    prob:
        Kill probability at each spec boundary within a shard.
    seed:
        Root seed of the kill substreams.
    shard_indices:
        When set, only these shard indices are ever killed (still
        gated by ``prob`` — pass ``prob=1.0`` for a certain kill).
    max_kill_attempts:
        Kills fire only while ``attempt < max_kill_attempts``.  The
        default of 1 guarantees a retry or resume completes; larger
        values (or ``None`` for "always") model poison shards.
    """

    prob: float = 0.0
    seed: int = 0
    shard_indices: Optional[Tuple[int, ...]] = None
    max_kill_attempts: Optional[int] = 1

    def __post_init__(self):
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob!r}")
        if self.shard_indices is not None:
            object.__setattr__(self, "shard_indices",
                               tuple(self.shard_indices))

    def should_kill(self, shard_id: str, shard_index: int,
                    attempt: int, spec_index: int) -> bool:
        """Deterministic kill decision for one spec boundary."""
        if self.prob <= 0.0:
            return False
        if (self.max_kill_attempts is not None
                and attempt >= self.max_kill_attempts):
            return False
        if (self.shard_indices is not None
                and shard_index not in self.shard_indices):
            return False
        stream = substream(
            self.seed,
            f"{WORKERKILL_STREAM_LABEL}/{shard_id}/{attempt}/{spec_index}")
        return stream.random() < self.prob

    @staticmethod
    def kill() -> None:  # pragma: no cover - by definition unobservable
        """SIGKILL the calling process — no cleanup, no goodbye."""
        os.kill(os.getpid(), signal.SIGKILL)
