"""Analytical models from Section III of the paper.

* :mod:`repro.models.bootstrap` — the bootstrapping-dynamics models of
  Sec. III-B (Fig. 2's transition systems, equations (1)–(6)) and the
  sufficient conditions of Propositions III.1/III.2.
* :mod:`repro.models.collusion` — the collusion/Sybil success
  probability P_s of Sec. III-A4, closed form and Monte Carlo.
* :mod:`repro.models.overhead` — the encryption/report/space overhead
  accounting of Sec. III-C, backed by the real cipher.
"""

from repro.models.bootstrap import (
    BitTorrentLikeModel,
    TChainModel,
    omega_prime_uniform,
    omega_double_prime_uniform,
    proposition_iii1_holds,
    proposition_iii2_holds,
)
from repro.models.collusion import (
    collusion_success_probability,
    collusion_success_probability_closed_form,
    collusion_success_probability_paper_form,
    simulate_collusion_probability,
)
from repro.models.overhead import OverheadModel, measure_encryption_rate

__all__ = [
    "BitTorrentLikeModel",
    "OverheadModel",
    "TChainModel",
    "collusion_success_probability",
    "collusion_success_probability_closed_form",
    "collusion_success_probability_paper_form",
    "measure_encryption_rate",
    "omega_double_prime_uniform",
    "omega_prime_uniform",
    "proposition_iii1_holds",
    "proposition_iii2_holds",
    "simulate_collusion_probability",
]
