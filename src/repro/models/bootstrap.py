"""Bootstrapping-dynamics models of Sec. III-B.

The paper compares how fast newcomers acquire their first usable piece
under a BitTorrent-like protocol (optimistic unchoking with
probability δ) versus T-Chain (K chains per bootstrapped peer per
timeslot, indirect reciprocity with probability ω).  Both are
discrete-time population models over

* ``x(t)`` — completely un-bootstrapped peers,
* ``y(t)`` — partially bootstrapped peers (T-Chain only: they hold one
  encrypted, unreciprocated piece),
* ``z(t) = n − x − y`` — fully bootstrapped peers,

with Poisson arrivals ``α·n`` and departures rate ``β`` (Fig. 2).

We iterate the expected-value dynamics — equations (1) for BitTorrent
and (2)–(6) for T-Chain — and expose the sufficient conditions of
Propositions III.1 (short-term, flash-crowd) and III.2 (long-term).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def omega_prime_uniform(n_pieces: int) -> float:
    """ω′ for uniform piece counts: the probability a bootstrapped
    peer already has the single piece of a partially bootstrapped
    peer, ``E[m]/M = (M−1)/(2M)`` (≈ 0.495 at M = 100, the paper's
    example)."""
    if n_pieces < 1:
        raise ValueError("need at least one piece")
    return (n_pieces - 1) / (2.0 * n_pieces)


def omega_double_prime_uniform(n_pieces: int, exact: bool = False
                               ) -> float:
    """ω″ for uniform piece counts: the probability one bootstrapped
    peer needs nothing from another (eq. (4)); ``≈ log(M)/M`` for
    large M, which the paper adopts."""
    if n_pieces < 1:
        raise ValueError("need at least one piece")
    if n_pieces == 1:
        return 1.0
    if not exact:
        return math.log(n_pieces) / n_pieces
    # Exact evaluation of eq. (4) with p_m = 1/M over m = 1..M-1.
    big_m = n_pieces
    p = 1.0 / big_m
    total = 0.0
    for mj in range(1, big_m):
        inner = 0.0
        for mi in range(1, mj + 1):
            # (M-mi)! mj! / (M! (mj-mi)!) = C(mj, mi)/C(M, mi)
            inner += p * (math.comb(mj, mi) / math.comb(big_m, mi))
        total += p * inner
    return total


@dataclass
class ModelState:
    """One timeslot of a population model."""

    t: int
    x: float
    y: float
    z: float

    @property
    def n(self) -> float:
        """Total population."""
        return self.x + self.y + self.z

    @property
    def unbootstrapped(self) -> float:
        """x + y: peers with no usable piece yet."""
        return self.x + self.y


class BitTorrentLikeModel:
    """Equation (1): optimistic unchoking bootstraps newcomers.

    Each bootstrapped peer spends a fraction δ of timeslots on a
    uniformly random peer; the seeder bootstraps one peer per slot.
    """

    def __init__(self, n: int, delta: float = 0.2, alpha: float = 0.0,
                 beta: float = 0.0):
        if not 0 <= delta <= 1:
            raise ValueError("delta must be in [0, 1]")
        self.delta = delta
        self.alpha = alpha
        self.beta = beta
        self.n0 = float(n)

    def bootstrap_probability(self, x: float, n: float) -> float:
        """P of Fig. 2(a): seeder ∪ some downloader picks the peer."""
        if n <= 1:
            return 1.0
        z = max(n - x, 0.0)
        p_seeder = 1.0 / n
        miss = (1.0 - self.delta) + self.delta * (n - 2.0) / (n - 1.0)
        p_downloader = 1.0 - miss ** z
        return (p_seeder + p_downloader - p_downloader * p_seeder)

    def trajectory(self, x0: float, steps: int) -> List[ModelState]:
        """Iterate E[x(t+1)] = x(t)(1−β)(1−P) + α·n(t)."""
        states = [ModelState(0, x0, 0.0, self.n0 - x0)]
        x, n = x0, self.n0
        for t in range(1, steps + 1):
            p = self.bootstrap_probability(x, n)
            x = x * (1.0 - self.beta) * (1.0 - p) + self.alpha * n
            n = (1.0 - self.beta + self.alpha) * n
            x = min(x, n)
            states.append(ModelState(t, x, 0.0, n - x))
        return states


class TChainModel:
    """Equations (2)–(6): chains bootstrap newcomers.

    Each bootstrapped peer participates in K chains per timeslot and
    engages in *indirect* reciprocity with probability ω — exactly the
    designations that can land on an un-bootstrapped peer.  A chosen
    newcomer becomes *partially* bootstrapped (one encrypted piece)
    for one slot, then fully bootstrapped after reciprocating.
    """

    def __init__(self, n: int, k_chains: float = 2.0,
                 n_pieces: int = 100, alpha: float = 0.0,
                 beta: float = 0.0):
        self.k = k_chains
        self.alpha = alpha
        self.beta = beta
        self.n0 = float(n)
        self.omega_prime = omega_prime_uniform(n_pieces)
        self.omega_double_prime = omega_double_prime_uniform(n_pieces)

    def omega(self, x: float, y: float, z: float) -> float:
        """Equation (3): probability a chain step is indirect."""
        n = x + y + z
        if n <= 1:
            return 0.0
        return (x + self.omega_prime * y
                + self.omega_double_prime * max(z - 1.0, 0.0)) / (n - 1.0)

    def bootstrap_probability(self, x: float, y: float, z_prev: float,
                              n: float, n_prev: float) -> float:
        """Equation (2): seeder choice ∪ indirect designations."""
        if n <= 1:
            return 1.0
        omega = self.omega(x, y, z_prev)
        exponent = self.k * omega * max(z_prev, 0.0)
        miss = ((n - 1.0) / n) * (
            ((n - 2.0) / max(n_prev - 1.0, 1.0)) ** exponent)
        return 1.0 - miss

    def trajectory(self, x0: float, steps: int) -> List[ModelState]:
        """Iterate equations (5)–(6)."""
        states = [ModelState(0, x0, 0.0, self.n0 - x0)]
        x, y, n = x0, 0.0, self.n0
        x_prev, y_prev, n_prev = x, y, n
        for t in range(1, steps + 1):
            z_prev = max(n_prev - x_prev - y_prev, 0.0)
            p = self.bootstrap_probability(x, y, z_prev, n, n_prev)
            new_x = self.alpha * n + x * (1.0 - self.beta) * (1.0 - p)
            new_y = x * (1.0 - self.beta) * p
            x_prev, y_prev, n_prev = x, y, n
            n = (1.0 - self.beta + self.alpha) * n
            x, y = min(new_x, n), new_y
            states.append(ModelState(t, x, y, max(n - x - y, 0.0)))
        return states


def bootstrap_rate(states: List[ModelState], t: int) -> float:
    """E[x(t+1)]/x(t): lower is faster bootstrapping."""
    if states[t].unbootstrapped <= 0:
        return 0.0
    return states[t + 1].unbootstrapped / states[t].unbootstrapped


def proposition_iii1_holds(n: int, x_t: float, y_t: float,
                           x_b: float, k_chains: float,
                           delta: float, n_pieces: int) -> bool:
    """Sufficient condition (7) for T-Chain to bootstrap faster than
    BitTorrent shortly after a flash crowd."""
    z_t = n - x_t - y_t
    omega_p = omega_prime_uniform(n_pieces)
    omega_pp = omega_double_prime_uniform(n_pieces)
    lhs = k_chains * z_t * (
        (x_t + omega_p * y_t + omega_pp * (z_t - 1.0)) / (n - 1.0))
    rhs = delta * (n - x_b)
    return lhs >= rhs


def proposition_iii2_holds(n: int, mu: float, nu: float,
                           k_chains: float, delta: float,
                           n_pieces: int) -> bool:
    """Sufficient condition (8) for the long-term regime, with
    x_t + y_t ≤ μn un-bootstrapped T-Chain peers and x_b ≥ νn
    BitTorrent ones."""
    omega_pp = omega_double_prime_uniform(n_pieces)
    lhs = (1.0 - delta / (n - 1.0)) ** (n * (1.0 - nu))
    rhs = (1.0 - 1.0 / (n - 1.0)) ** (k_chains * n * (1.0 - mu)
                                      * omega_pp)
    return lhs >= rhs
