"""Collusion / Sybil success probability (Sec. III-A4).

A collusion (or Sybil) attack on T-Chain succeeds only when the
requestor *and* the payee of the same transaction belong to the same
colluder set S of size m.  With N peers and b tracker-returned
neighbors per peer, the paper derives

    P_s = Σ_{l=2}^{min(m,b)}  P_l · P_c,
    P_c = (l/b) · ((l−1)/(b−1)),

where P_l is the probability that l of the b tracker-drawn neighbors
are colluders and P_c the probability that both chosen parties land
among those l.  The paper prints P_l as the sequential product
``Π_{i<l} (m−i)/(N−i)`` — the probability that the *first* l draws
are all colluders — which is not a distribution over l (the terms sum
past 1 once m is large); the intended quantity is the hypergeometric
mass ``C(m,l)·C(N−m,b−l)/C(N,b)``, which we use.  The sum then
telescopes to the exact closed form

    P_s = m(m−1) / (N(N−1)),

independent of b (each list slot is marginally uniform), confirmed by
the Monte Carlo in :func:`simulate_collusion_probability`.  For m ≪ N
this is ~(m/N)² — the quantitative backing for "collusion
opportunities are extremely limited".  The paper's literal form is
kept as :func:`collusion_success_probability_paper_form` for
comparison; for small m/N the two agree in order of magnitude.
"""

from __future__ import annotations

import math
from random import Random


def collusion_success_probability(n_peers: int, colluders: int,
                                  neighbors: int) -> float:
    """P_s with the hypergeometric P_l (see module docstring).

    Parameters
    ----------
    n_peers:
        Swarm size N.
    colluders:
        Colluder set size m.
    neighbors:
        Tracker list size b.
    """
    if n_peers < 2 or neighbors < 2:
        raise ValueError("need at least 2 peers and 2 neighbors")
    if not 0 <= colluders <= n_peers:
        raise ValueError("colluders must be within the swarm")
    m, big_n, b = colluders, n_peers, neighbors
    denominator = math.comb(big_n, b)
    total = 0.0
    for l in range(2, min(m, b) + 1):
        p_l = (math.comb(m, l) * math.comb(big_n - m, b - l)
               / denominator)
        p_c = (l / b) * ((l - 1) / (b - 1))
        total += p_l * p_c
    return total


def collusion_success_probability_closed_form(n_peers: int,
                                              colluders: int) -> float:
    """The telescoped exact form ``m(m−1)/(N(N−1))``."""
    if n_peers < 2:
        raise ValueError("need at least 2 peers")
    return (colluders * (colluders - 1)) / (n_peers * (n_peers - 1))


def collusion_success_probability_paper_form(n_peers: int,
                                             colluders: int,
                                             neighbors: int) -> float:
    """The paper's literal P_l = Π (m−i)/(N−i).

    Kept for reference: adequate for m ≪ N, but not a normalized
    distribution over l (see module docstring).
    """
    if n_peers < 2 or neighbors < 2:
        raise ValueError("need at least 2 peers and 2 neighbors")
    m, big_n, b = colluders, n_peers, neighbors
    total = 0.0
    for l in range(2, min(m, b) + 1):
        p_l = 1.0
        for i in range(l):
            p_l *= (m - i) / (big_n - i)
        p_c = (l / b) * ((l - 1) / (b - 1))
        total += p_l * p_c
    return total


def simulate_collusion_probability(n_peers: int, colluders: int,
                                   neighbors: int, trials: int = 20000,
                                   seed: int = 0) -> float:
    """Monte Carlo estimate of the same experiment.

    Each trial draws ``l`` (colluders among the first draws of a
    b-peer tracker list, following the paper's sequential-draw
    simplification), then picks the requestor and the payee uniformly
    from the list and checks whether both are colluders.
    """
    rng = Random(seed)
    peers = list(range(n_peers))
    colluder_set = set(range(colluders))
    hits = 0
    for _ in range(trials):
        listing = rng.sample(peers, neighbors)
        requestor = rng.choice(listing)
        payee = rng.choice(listing)
        if requestor in colluder_set and payee in colluder_set \
                and requestor != payee:
            hits += 1
    return hits / trials
