"""T-Chain overhead accounting (Sec. III-C), backed by the real cipher.

The paper argues T-Chain's costs are negligible against BitTorrent's:

1. **Encryption** — each leecher ciphers the file once in each
   direction; with hardware of the time a 128 KB piece took 0.715 ms,
   i.e. ~12 s for a 1 GB file against 1024 s of transfer at 8 Mbps
   (< 1.2 %).  :func:`measure_encryption_rate` times *our* cipher so
   the benchmark reports the machine-honest equivalent.
2. **Reports/keys** — reception reports and 256-bit keys are orders of
   magnitude smaller than pieces, and a chain of n transactions
   completes within n + 2 piece-upload times because consecutive
   transactions interleave.
3. **Space** — a leecher stores pending pieces (reusable space) plus
   one 256-bit key per outstanding transaction: 256 KB extra for a
   1 GB file of 128 KB pieces (0.02 %).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.crypto import KEY_SIZE_BYTES, decrypt, encrypt


def measure_encryption_rate(piece_kb: int = 128,
                            repetitions: int = 5) -> float:
    """Measured cipher throughput in KB/s (encrypt + decrypt)."""
    key = bytes(range(32))
    piece = bytes(piece_kb * 1024)
    start = time.perf_counter()  # simlint: disable=SL002 -- deliberately measures real cipher wall-time, not simulated time
    for _ in range(repetitions):
        blob = encrypt(key, piece)
        decrypt(key, blob)
    elapsed = time.perf_counter() - start  # simlint: disable=SL002 -- see above: machine-honest crypto benchmark
    return (2 * repetitions * piece_kb) / elapsed


@dataclass
class OverheadModel:
    """Closed-form overhead figures for a given configuration."""

    file_mb: float = 1024.0
    piece_kb: float = 128.0
    bandwidth_kbps: float = 8000.0
    cipher_rate_kb_per_s: float = 350_000.0  # ~0.715 ms per 128 KB

    @property
    def n_pieces(self) -> int:
        """Pieces in the file."""
        return int(self.file_mb * 1024 / self.piece_kb)

    @property
    def transfer_time_s(self) -> float:
        """Seconds to move the whole file at the given bandwidth."""
        return self.file_mb * 1024 * 8 / self.bandwidth_kbps

    @property
    def crypto_time_s(self) -> float:
        """Seconds to encrypt and decrypt the whole file once each."""
        return 2 * self.file_mb * 1024 / self.cipher_rate_kb_per_s

    @property
    def encryption_overhead(self) -> float:
        """Crypto time as a fraction of transfer time (paper: <1.2 %)."""
        return self.crypto_time_s / self.transfer_time_s

    @property
    def key_storage_bytes(self) -> int:
        """One key per piece: the worst-case key store."""
        return self.n_pieces * KEY_SIZE_BYTES

    @property
    def space_overhead(self) -> float:
        """Key storage against file size (paper: 0.02 %)."""
        return self.key_storage_bytes / (self.file_mb * 1024 * 1024)

    def chain_completion_slots(self, n_transactions: int) -> int:
        """Upper bound on piece-upload slots to finish an n-transaction
        chain: interleaving makes it n + 2 (Sec. III-C2)."""
        if n_transactions < 1:
            raise ValueError("a chain has at least one transaction")
        return n_transactions + 2

    def report_overhead(self, report_bytes: int = 64) -> float:
        """Report + key bytes per piece against the piece size."""
        per_piece = report_bytes + KEY_SIZE_BYTES
        return per_piece / (self.piece_kb * 1024)
