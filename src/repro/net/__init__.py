"""Network substrate: uplink bandwidth and neighbor topology.

Following the paper's evaluation assumptions (Sec. IV-A), upload
bandwidth is the only constrained resource; download bandwidth is
unlimited and link latency matters only for small control messages.
"""

from repro.net.bandwidth import Transfer, Uplink
from repro.net.topology import Topology

__all__ = ["Topology", "Transfer", "Uplink"]
