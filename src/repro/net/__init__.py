"""Network substrate: uplink bandwidth, neighbor topology, and the
optional link-level model.

Following the paper's evaluation assumptions (Sec. IV-A), upload
bandwidth is the only constrained resource by default; download
bandwidth is unlimited and link latency matters only for small control
messages.  The optional substrate (:mod:`repro.net.link`,
:mod:`repro.net.topogen`, :mod:`repro.net.routing`; enabled via
``extra={"net": spec}``) layers per-edge latency/jitter/loss, FIFO
queueing and shortest-path routing on top — see docs/NETWORK.md.
"""

from repro.net.bandwidth import Transfer, Uplink
from repro.net.link import (
    Link,
    LinkSpec,
    NET_STREAM_LABEL,
    NetGraph,
    NetworkModel,
    build_network,
)
from repro.net.routing import RouteTable
from repro.net.topogen import (
    DEFAULT_DC_MATRIX_MS,
    fat_tree,
    full_mesh,
    graph_from_spec,
    multi_dc,
    random_graph,
    star,
)
from repro.net.topology import Topology

__all__ = [
    "DEFAULT_DC_MATRIX_MS",
    "Link",
    "LinkSpec",
    "NET_STREAM_LABEL",
    "NetGraph",
    "NetworkModel",
    "RouteTable",
    "Topology",
    "Transfer",
    "Uplink",
    "build_network",
    "fat_tree",
    "full_mesh",
    "graph_from_spec",
    "multi_dc",
    "random_graph",
    "star",
]
