"""Uplink bandwidth model.

Each peer owns an :class:`Uplink` with a fixed capacity split across
``n_slots`` parallel upload slots (the standard slot model of
BitTorrent simulators: original BitTorrent serves 4 regular unchokes
plus 1 optimistic unchoke, each at roughly capacity/5).  A piece
transfer occupies one slot for ``piece_bits / slot_rate`` seconds.

The uplink also keeps the accounting behind the paper's *uplink
utilization* metric (Fig. 3(b)): bits actually pushed versus capacity
over the peer's time in the swarm.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator


def _transfer_seq(transfer: "Transfer") -> int:
    """Sort key for in-flight views (module-level so the per-event
    ``in_flight`` copy doesn't also build a closure — SL303)."""
    return transfer.seq


class Transfer:
    """One in-flight piece upload occupying a slot."""

    __slots__ = ("uplink", "size_kb", "rate_kbps", "started_at",
                 "on_complete", "meta", "_event", "done", "cancelled",
                 "seq", "_idx")

    def __init__(self, uplink: "Uplink", size_kb: float, rate_kbps: float,
                 on_complete: Callable[["Transfer"], Any], meta: Any,
                 min_duration_s: float = 0.0):
        self.uplink = uplink
        self.size_kb = size_kb
        self.rate_kbps = rate_kbps
        self.started_at = uplink.sim.now
        self.on_complete = on_complete
        self.meta = meta
        self.done = False
        self.cancelled = False
        self.seq = -1  # start order, assigned by the uplink
        self._idx = -1  # position in the uplink's swap-pop list
        duration = (size_kb * 8.0) / rate_kbps
        if min_duration_s > duration:
            # Network-substrate floor: the path (latency + bottleneck
            # serialization) is slower than the slot, so the slot is
            # held for the full path time at the implied lower rate.
            duration = min_duration_s
            self.rate_kbps = (size_kb * 8.0) / duration
        self._event: Optional[EventHandle] = uplink.sim.schedule(
            duration, self._finish)

    @property
    def duration(self) -> float:
        """Nominal transfer duration in seconds."""
        return (self.size_kb * 8.0) / self.rate_kbps

    def _finish(self) -> None:
        self.done = True
        self._event = None
        self.uplink._complete(self)
        self.on_complete(self)

    def cancel(self) -> None:
        """Abort the transfer (e.g. the uploader departed).

        Bits pushed so far still count toward utilization — the
        bandwidth was really spent.
        """
        if self.done or self.cancelled:
            return
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
        elapsed = self.uplink.sim.now - self.started_at
        partial_kb = min(self.size_kb, elapsed * self.rate_kbps / 8.0)
        self.uplink._abort(self, partial_kb)


class Uplink:
    """A peer's upload link: ``n_slots`` slots of capacity/n each.

    Parameters
    ----------
    sim:
        The simulator (for scheduling and the clock).
    capacity_kbps:
        Total upload capacity.  Zero capacity models a strict
        free-rider; such an uplink never starts transfers.
    n_slots:
        Number of parallel upload slots.
    """

    def __init__(self, sim: Simulator, capacity_kbps: float,
                 n_slots: int = 4):
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if capacity_kbps < 0:
            raise ValueError("capacity must be >= 0")
        self.sim = sim
        self.capacity_kbps = capacity_kbps
        self.n_slots = n_slots
        self.busy_slots = 0
        self.kb_sent = 0.0
        self.opened_at = sim.now
        self.closed_at: Optional[float] = None
        # Removal is O(1) swap-pop (each transfer knows its index), so
        # the list order is *not* start order; anything order-sensitive
        # must sort by ``Transfer.seq`` (see close/in_flight).
        self._transfers: list = []
        self._next_seq = 0
        # Conservation checks ride along when the simulator runs with
        # sanitize=True; None otherwise, costing one attribute read.
        self._sanitizer = getattr(sim, "sanitizer", None)

    @property
    def slot_rate_kbps(self) -> float:
        """Rate of one slot."""
        return self.capacity_kbps / self.n_slots

    @property
    def idle_slots(self) -> int:
        """Slots currently free."""
        return self.n_slots - self.busy_slots

    def try_start(self, size_kb: float,
                  on_complete: Callable[[Transfer], Any],
                  meta: Any = None,
                  min_duration_s: float = 0.0) -> Optional[Transfer]:
        """Start a transfer if a slot is free; ``None`` otherwise.

        A zero-capacity uplink never transfers (strict free-rider).
        ``min_duration_s`` floors the delivery time (the network
        substrate's path latency + bottleneck serialization): the
        piece lands at ``max(slot time, min_duration_s)``.
        """
        if self.closed_at is not None:
            return None
        if self.capacity_kbps <= 0 or self.busy_slots >= self.n_slots:
            return None
        self.busy_slots += 1
        transfer = Transfer(self, size_kb, self.slot_rate_kbps,
                            on_complete, meta,
                            min_duration_s=min_duration_s)
        transfer.seq = self._next_seq
        self._next_seq += 1
        transfer._idx = len(self._transfers)
        self._transfers.append(transfer)
        if self._sanitizer is not None:
            self._sanitizer.on_transfer_start(self, transfer)
        return transfer

    def _remove(self, transfer: Transfer) -> None:
        """Unlink a transfer in O(1): move the tail into its slot."""
        transfers = self._transfers
        idx = transfer._idx
        tail = transfers.pop()
        if tail is not transfer:
            transfers[idx] = tail
            tail._idx = idx
        transfer._idx = -1

    def _complete(self, transfer: Transfer) -> None:
        self.busy_slots -= 1
        self.kb_sent += transfer.size_kb
        self._remove(transfer)
        if self._sanitizer is not None:
            self._sanitizer.on_transfer_end(self, transfer,
                                            transfer.size_kb)

    def _abort(self, transfer: Transfer, partial_kb: float) -> None:
        self.busy_slots -= 1
        self.kb_sent += partial_kb
        self._remove(transfer)
        if self._sanitizer is not None:
            self._sanitizer.on_transfer_end(self, transfer, partial_kb)

    def close(self) -> None:
        """The peer left the swarm: cancel in-flight transfers and
        freeze the utilization window."""
        if self.closed_at is not None:
            return
        # Cancel in start order: the internal list is swap-pop
        # scrambled, and cancellation order feeds float accumulation
        # (kb_sent) and sanitizer hooks, which must stay bit-stable.
        for transfer in self.in_flight():
            transfer.cancel()
        self.closed_at = self.sim.now

    def in_flight(self) -> list:
        """Currently running transfers (copy, in start order)."""
        return sorted(self._transfers, key=_transfer_seq)

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of capacity actually used while in the swarm.

        An explicit ``now`` samples the window ``[opened_at, now]``
        even after the uplink closed (retroactive metric sampling of a
        departed peer); the window never extends past ``closed_at``.
        """
        if now is None:
            end = self.closed_at if self.closed_at is not None \
                else self.sim.now
        elif self.closed_at is not None:
            end = min(self.closed_at, now)
        else:
            end = now
        elapsed = end - self.opened_at
        if elapsed <= 0 or self.capacity_kbps <= 0:
            return 0.0
        return min(1.0, (self.kb_sent * 8.0)
                   / (self.capacity_kbps * elapsed))
