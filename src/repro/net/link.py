"""Network substrate: per-edge links with latency, jitter, loss and
FIFO queueing (ROADMAP item 4).

The flat model charges every control message one fixed
``control_latency_s`` and every piece one uplink-slot time; *where*
peers sit is invisible.  This module adds an optional substrate — a
graph of :class:`Link` edges between named network nodes, with peers
placed onto nodes — so WAN swarms, multi-DC latency matrices and lossy
links become expressible:

* **control plane** — every ``Swarm.send_control`` crosses the
  shortest-latency route between the endpoints' nodes; each hop adds
  latency (+ seeded jitter) and may drop the message (seeded per-link
  loss).  Lost messages exercise exactly the retransmit/plead recovery
  machinery the fault injector does.
* **data plane** — piece delivery time is floored at the path time
  (propagation + bottleneck serialization, degraded by path loss the
  way a loss-bound TCP flow would be), threaded through
  ``Uplink.try_start(min_duration_s=...)``.  Payload loss is modeled
  as deterministic throughput degradation, not probabilistic piece
  drop: a silently vanishing piece would wedge the exchange ledger in
  ways no real transport (which retransmits) exhibits.

Determinism contract: all randomness comes from
``substream(seed, "net")`` and a draw happens **only** when the
configured probability/jitter is nonzero, so an idle substrate (all
zeros) is bit-trace-neutral — verified by the equivalence suite in
``tests/test_net_substrate.py`` and the ``net_substrate`` bench leg.

Enable via ``run_swarm(..., extra={"net": spec})`` where ``spec`` is a
:class:`NetGraph`, a ready :class:`NetworkModel`, or a plain dict
handed to :func:`repro.net.topogen.graph_from_spec` (JSON-able, so
sweep manifests and the CLI can carry it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.randomness import substream

NET_STREAM_LABEL = "net"
"""Substream label for all substrate randomness."""


def link_key(a: str, b: str) -> Tuple[str, str]:
    """Canonical undirected edge key."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one undirected link.

    ``bandwidth_kbps=None`` means unconstrained (no serialization and
    no FIFO queueing on this hop); zero latency/jitter/loss hops are
    free and draw no randomness.
    """

    a: str
    b: str
    latency_s: float = 0.0
    bandwidth_kbps: Optional[float] = None
    jitter_s: float = 0.0
    loss_prob: float = 0.0

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError(f"self-link {self.a!r}")
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency/jitter must be >= 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.bandwidth_kbps is not None and self.bandwidth_kbps <= 0:
            raise ValueError("bandwidth_kbps must be positive or None")


@dataclass(frozen=True)
class NetGraph:
    """A generated topology: nodes, links, and the subset of nodes
    peers may be placed on (e.g. the edge switches of a fat-tree)."""

    nodes: Tuple[str, ...]
    links: Tuple[LinkSpec, ...]
    attach: Tuple[str, ...] = ()

    def __post_init__(self):
        known = set(self.nodes)
        for spec in self.links:
            if spec.a not in known or spec.b not in known:
                raise ValueError(
                    f"link {spec.a!r}-{spec.b!r} references unknown "
                    f"node")
        for node in self.attach:
            if node not in known:
                raise ValueError(f"attach node {node!r} unknown")

    @property
    def attach_nodes(self) -> Tuple[str, ...]:
        """Placement candidates: ``attach`` if given, else all nodes,
        always in sorted order (placement must not depend on
        generator emission order)."""
        return tuple(sorted(self.attach or self.nodes))


class Link:
    """One live undirected link with a FIFO transmission queue.

    ``busy_until`` is the store-and-forward cursor: a sized message
    arriving at ``now`` starts serializing at ``max(now,
    busy_until)`` and occupies the link for ``size·8/bandwidth``
    seconds.  Zero-size messages (the control plane; Sec. III-C notes
    control overhead is negligible) skip the queue entirely.
    """

    __slots__ = ("a", "b", "latency_s", "bandwidth_kbps", "jitter_s",
                 "loss_prob", "busy_until", "messages", "dropped",
                 "kb_carried")

    def __init__(self, spec: LinkSpec):
        self.a = spec.a
        self.b = spec.b
        self.latency_s = spec.latency_s
        self.bandwidth_kbps = spec.bandwidth_kbps
        self.jitter_s = spec.jitter_s
        self.loss_prob = spec.loss_prob
        self.busy_until = 0.0
        self.messages = 0
        self.dropped = 0
        self.kb_carried = 0.0

    @property
    def key(self) -> Tuple[str, str]:
        return link_key(self.a, self.b)

    def traverse(self, now: float, size_kb: float,
                 rng) -> Optional[float]:
        """Seconds this hop adds, or ``None`` if the message is lost.

        Draws from ``rng`` only for nonzero loss/jitter so an
        all-zero link is trace-neutral.
        """
        if self.loss_prob > 0.0 and rng.random() < self.loss_prob:
            self.dropped += 1
            return None
        delay = self.latency_s
        if self.jitter_s > 0.0:
            delay += rng.uniform(0.0, self.jitter_s)
        if self.bandwidth_kbps is not None and size_kb > 0.0:
            serialization = size_kb * 8.0 / self.bandwidth_kbps
            start = self.busy_until if self.busy_until > now else now
            self.busy_until = start + serialization
            delay += (start - now) + serialization
        self.messages += 1
        self.kb_carried += size_kb
        return delay

    def path_quality(self) -> Tuple[float, Optional[float], float]:
        """(latency, bandwidth, loss) triple for data-path estimates."""
        return (self.latency_s, self.bandwidth_kbps, self.loss_prob)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Link({self.a}-{self.b}, {self.latency_s * 1e3:g}ms, "
                f"bw={self.bandwidth_kbps}, loss={self.loss_prob:g})")


@dataclass
class NetCounters:
    """Substrate-level accounting, surfaced in chaos/bench reports."""

    control_sent: int = 0
    control_dropped: int = 0
    control_unroutable: int = 0
    transfers_priced: int = 0
    transfers_unroutable: int = 0
    partitions_applied: int = 0
    partitions_healed: int = 0
    links_severed: int = 0
    links_restored: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class NetworkModel:
    """The live substrate: links + routing + peer placement.

    Parameters
    ----------
    graph:
        The :class:`NetGraph` to instantiate.
    seed:
        Root seed; loss/jitter draws come from
        ``substream(seed, "net")`` so the substrate never perturbs
        protocol or fault randomness.
    placement:
        Optional explicit ``peer_id -> node`` pins.  Unpinned peers
        are placed round-robin over ``graph.attach_nodes`` in
        registration order (deterministic: registration order is).
    control_size_kb:
        Size attributed to control messages on constrained links.
        Zero (the default, per the paper's negligible-overhead
        argument) keeps the control plane off the FIFO queues.
    """

    def __init__(self, graph: NetGraph, seed: int = 0,
                 placement: Optional[Dict[str, str]] = None,
                 control_size_kb: float = 0.0):
        self.graph = graph
        self._rng = substream(seed, NET_STREAM_LABEL)
        self.control_size_kb = control_size_kb
        self.sim: Optional[Any] = None
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, Dict[str, Link]] = {
            node: {} for node in graph.nodes}
        for spec in graph.links:
            self._add_link(Link(spec))
        self._placement: Dict[str, str] = dict(placement or {})
        for peer_id, node in self._placement.items():
            if node not in self._adj:
                raise ValueError(
                    f"placement pins {peer_id!r} to unknown node "
                    f"{node!r}")
        self._attach_nodes = graph.attach_nodes
        if not self._attach_nodes:
            raise ValueError("graph has no nodes to place peers on")
        self._rr = 0
        self.counters = NetCounters()
        # Severed links (NetworkPartition faults) keyed like .links.
        self._severed: Dict[Tuple[str, str], Link] = {}
        # Route tables are built lazily and invalidated wholesale on
        # any edge change (sever/heal/add/remove).
        from repro.net.routing import RouteTable
        self.routes = RouteTable(self._adj)
        self._update_inert()

    def _update_inert(self) -> None:
        """Maintain the idle fast path: an all-zero, fully-connected,
        unsevered substrate adds exactly 0.0 to every message and
        transfer, so :meth:`control_fate` / :meth:`transfer_floor`
        skip routing and per-link bookkeeping entirely (model-level
        counters still advance; per-link ``messages``/``kb_carried``
        do not — there is no traffic shaping to account for).  The
        swarm choke points go one step further and skip the calls
        wholesale while the flag is set, so an inert substrate stays
        within wall-clock noise of the flat model and its counters
        stay at zero — the ``net_substrate`` bench leg gates the
        ratio."""
        self._inert = False
        if self._severed:
            return
        for link in self.links.values():
            if (link.latency_s or link.jitter_s or link.loss_prob
                    or link.bandwidth_kbps is not None):
                return
        nodes = list(self._adj)
        if nodes:
            seen = {nodes[0]}
            stack = [nodes[0]]
            while stack:
                for neighbor in self._adj[stack.pop()]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            if len(seen) != len(nodes):
                return
        self._inert = True

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, swarm: Any) -> None:
        """Bind to a swarm's simulator (for the FIFO clock)."""
        self.sim = swarm.sim

    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def _add_link(self, link: Link) -> None:
        key = link.key
        if key in self.links:
            raise ValueError(f"duplicate link {key}")
        self.links[key] = link
        self._adj[link.a][link.b] = link
        self._adj[link.b][link.a] = link

    def _drop_link(self, link: Link) -> None:
        del self.links[link.key]
        del self._adj[link.a][link.b]
        del self._adj[link.b][link.a]

    def sever(self, groups: Sequence[Sequence[str]]) -> List[Link]:
        """Cut every link whose endpoints fall in different partition
        groups; returns the severed links (for :meth:`restore`).

        Nodes not named in any group form an implicit final group, so
        ``groups=[("dc2",)]`` isolates ``dc2`` from everything else.
        """
        side: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node not in self._adj:
                    raise ValueError(f"partition names unknown node "
                                     f"{node!r}")
                side[node] = index
        rest = len(groups)  # implicit group for unlisted nodes
        cut: List[Link] = []
        for key in sorted(self.links):
            link = self.links[key]
            if side.get(link.a, rest) != side.get(link.b, rest):
                cut.append(link)
        for link in cut:
            self._drop_link(link)
            self._severed[link.key] = link
        if cut:
            self.counters.links_severed += len(cut)
            self.routes.invalidate()
            self._update_inert()
        self.counters.partitions_applied += 1
        return cut

    def restore(self, links: Sequence[Link]) -> int:
        """Re-add previously severed links (partition heal)."""
        healed = 0
        for link in links:
            if self._severed.pop(link.key, None) is None:
                continue
            self._add_link(link)
            healed += 1
        if healed:
            self.counters.links_restored += healed
            self.routes.invalidate()
            self._update_inert()
        self.counters.partitions_healed += 1
        return healed

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, peer_id: str) -> str:
        """The peer's network node, assigning one if unseen."""
        node = self._placement.get(peer_id)
        if node is None:
            node = self._attach_nodes[self._rr % len(self._attach_nodes)]
            self._rr += 1
            self._placement[peer_id] = node
        return node

    def rename(self, old_id: str, new_id: str) -> None:
        """Keep a whitewashing peer on its physical node: a rebrand
        changes identity, not geography."""
        node = self._placement.pop(old_id, None)
        if node is not None and new_id not in self._placement:
            self._placement[new_id] = node

    def node_of(self, peer_id: str) -> Optional[str]:
        """The peer's node, or None if never placed."""
        return self._placement.get(peer_id)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def control_fate(self, sender_id: str,
                     receiver_id: str) -> Optional[float]:
        """Route latency for one control message, or ``None`` when it
        is lost (per-link loss draw) or unroutable (partition)."""
        self.counters.control_sent += 1
        if self._inert:
            return 0.0
        src = self.place(sender_id)
        dst = self.place(receiver_id)
        if src == dst:
            return 0.0
        path = self.routes.path(src, dst)
        if path is None:
            self.counters.control_unroutable += 1
            return None
        now = self.now
        total = 0.0
        adj = self._adj
        for index in range(len(path) - 1):
            link = adj[path[index]][path[index + 1]]
            hop = link.traverse(now + total, self.control_size_kb,
                                self._rng)
            if hop is None:
                self.counters.control_dropped += 1
                return None
            total += hop
        return total

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def transfer_floor(self, sender_id: str, receiver_id: str,
                       size_kb: float) -> Optional[float]:
        """Minimum seconds for a piece to cross the substrate, or
        ``None`` when no route exists (partition): propagation along
        the path plus serialization at the bottleneck link, degraded
        by the path loss rate the way a loss-bound flow's goodput is.

        Deterministic by design — no draws — so the payload path stays
        bit-stable and a lossy link slows pieces down rather than
        silently discarding them (real transports retransmit).
        """
        if self._inert:
            self.counters.transfers_priced += 1
            return 0.0
        src = self.place(sender_id)
        dst = self.place(receiver_id)
        if src == dst:
            return 0.0
        path = self.routes.path(src, dst)
        if path is None:
            self.counters.transfers_unroutable += 1
            return None
        latency = 0.0
        bottleneck: Optional[float] = None
        survival = 1.0
        adj = self._adj
        for index in range(len(path) - 1):
            link = adj[path[index]][path[index + 1]]
            latency += link.latency_s
            if link.bandwidth_kbps is not None:
                if bottleneck is None \
                        or link.bandwidth_kbps < bottleneck:
                    bottleneck = link.bandwidth_kbps
            if link.loss_prob > 0.0:
                survival *= (1.0 - link.loss_prob)
        self.counters.transfers_priced += 1
        floor = latency
        if bottleneck is not None and size_kb > 0.0:
            floor += (size_kb * 8.0 / bottleneck) / survival
        return floor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Summary for reports and the CLI."""
        return {
            "nodes": len(self._adj),
            "links": len(self.links),
            "severed": len(self._severed),
            "placed_peers": len(self._placement),
            **self.counters.snapshot(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NetworkModel(nodes={len(self._adj)}, "
                f"links={len(self.links)}, "
                f"severed={len(self._severed)})")


def build_network(spec: Any, seed: int = 0) -> NetworkModel:
    """Coerce a config value into a live :class:`NetworkModel`.

    Accepts a ready model (returned as-is), a :class:`NetGraph`, or a
    plain dict forwarded to :func:`repro.net.topogen.graph_from_spec`
    (which also extracts ``placement`` / ``control_kb`` keys).
    """
    if isinstance(spec, NetworkModel):
        return spec
    if isinstance(spec, NetGraph):
        return NetworkModel(spec, seed=seed)
    if isinstance(spec, dict):
        from repro.net.topogen import graph_from_spec
        graph, placement, control_kb = graph_from_spec(spec)
        return NetworkModel(graph, seed=seed, placement=placement,
                            control_size_kb=control_kb)
    raise TypeError(
        f"extra['net'] must be a NetworkModel, NetGraph or dict spec, "
        f"not {type(spec).__name__}")
