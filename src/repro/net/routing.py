"""Shortest-path routing over the network substrate.

Routes minimize ``(total latency, hop count, path ids)`` — the
lexicographic tie-breaks make route selection fully deterministic even
on graphs full of zero-latency equal-cost paths (a mesh of identical
links), independent of dict order or hashing.

One Dijkstra pass per *source* is cached as a predecessor tree; the
cache is invalidated wholesale on any edge change (partition sever /
heal).  Swarm workloads route between a small set of DC/switch nodes
thousands of times between rare topology changes, so per-source
caching turns routing into a dict lookup on the hot path.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Tuple


class RouteTable:
    """Latency-weighted shortest paths with per-source caching.

    Parameters
    ----------
    adjacency:
        A live ``node -> {neighbor: Link}`` mapping.  The table reads
        it lazily; callers mutate it freely and call
        :meth:`invalidate` afterwards.
    """

    def __init__(self, adjacency: Mapping[str, Mapping[str, "object"]]):
        self._adj = adjacency
        #: source -> (dist, predecessor) maps from the last build.
        self._trees: Dict[str, Dict[str, Tuple[float, Optional[str]]]] = {}
        self.builds = 0
        self.hits = 0
        self.invalidations = 0

    def invalidate(self) -> None:
        """Drop every cached tree (call after any edge change)."""
        if self._trees:
            self._trees = {}
        self.invalidations += 1

    def _tree(self, src: str
              ) -> Dict[str, Tuple[float, Optional[str]]]:
        tree = self._trees.get(src)
        if tree is not None:
            self.hits += 1
            return tree
        self.builds += 1
        # Dijkstra with (latency, hops, node) keys; neighbors are
        # visited in sorted order so the predecessor tree is unique.
        dist: Dict[str, Tuple[float, int]] = {src: (0.0, 0)}
        pred: Dict[str, Optional[str]] = {src: None}
        done = set()
        frontier: List[Tuple[float, int, str]] = [(0.0, 0, src)]
        while frontier:
            cost, hops, node = heapq.heappop(frontier)
            if node in done:
                continue
            done.add(node)
            neighbors = self._adj.get(node)
            if not neighbors:
                continue
            for other in sorted(neighbors):
                if other in done:
                    continue
                link = neighbors[other]
                cand = (cost + link.latency_s, hops + 1)
                best = dist.get(other)
                if best is None or cand < best:
                    dist[other] = cand
                    pred[other] = node
                    heapq.heappush(frontier,
                                   (cand[0], cand[1], other))
        tree = {node: (dist[node][0], pred[node]) for node in dist}
        self._trees[src] = tree
        return tree

    def path(self, src: str, dst: str) -> Optional[List[str]]:
        """Node sequence ``[src, ..., dst]``, or ``None`` when ``dst``
        is unreachable (severed partition, unknown node)."""
        if src == dst:
            return [src]
        tree = self._tree(src)
        if dst not in tree:
            return None
        hops = [dst]
        node: Optional[str] = dst
        while node != src:
            node = tree[node][1]
            if node is None:  # pragma: no cover - defensive
                return None
            hops.append(node)
        hops.reverse()
        return hops

    def distance(self, src: str, dst: str) -> Optional[float]:
        """Total path latency, or ``None`` when unreachable."""
        tree = self._tree(src)
        entry = tree.get(dst)
        return entry[0] if entry is not None else None

    def reachable(self, src: str, dst: str) -> bool:
        """True when a route exists."""
        return dst in self._tree(src)
