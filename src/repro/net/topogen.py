"""Generated network topologies for the substrate.

Each generator returns a :class:`~repro.net.link.NetGraph` — nodes,
:class:`~repro.net.link.LinkSpec` edges, and the attach set peers may
be placed on.  All generators are pure functions of their arguments:
the only seeded one (:func:`random_graph`) derives its randomness from
``substream(seed, "topogen")`` so graph shape never perturbs protocol
streams.

The ladder mirrors the classic simulator progression (star → mesh →
random → fat-tree → WAN latency matrix); :func:`graph_from_spec`
builds any of them from a JSON-able dict so sweep manifests and the
CLI can carry topologies as plain data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.link import LinkSpec, NetGraph
from repro.sim.randomness import substream

TOPOGEN_STREAM_LABEL = "topogen"


def _link(a: str, b: str, latency_s: float, bandwidth_kbps,
          jitter_s: float, loss_prob: float) -> LinkSpec:
    return LinkSpec(a=a, b=b, latency_s=latency_s,
                    bandwidth_kbps=bandwidth_kbps, jitter_s=jitter_s,
                    loss_prob=loss_prob)


def star(n_leaves: int, hub: str = "core", latency_s: float = 0.0,
         bandwidth_kbps: Optional[float] = None, jitter_s: float = 0.0,
         loss_prob: float = 0.0) -> NetGraph:
    """``n_leaves`` access nodes hanging off one hub; peers attach to
    the leaves.  The minimal topology with a real shared hop."""
    if n_leaves < 1:
        raise ValueError("star needs at least one leaf")
    leaves = tuple(f"leaf{i}" for i in range(n_leaves))
    links = tuple(_link(leaf, hub, latency_s, bandwidth_kbps,
                        jitter_s, loss_prob) for leaf in leaves)
    return NetGraph(nodes=leaves + (hub,), links=links, attach=leaves)


def full_mesh(n_nodes: int, latency_s: float = 0.0,
              bandwidth_kbps: Optional[float] = None,
              jitter_s: float = 0.0,
              loss_prob: float = 0.0) -> NetGraph:
    """Every pair of nodes directly linked (uniform cost)."""
    if n_nodes < 2:
        raise ValueError("mesh needs at least two nodes")
    nodes = tuple(f"n{i}" for i in range(n_nodes))
    links = tuple(_link(nodes[i], nodes[j], latency_s, bandwidth_kbps,
                        jitter_s, loss_prob)
                  for i in range(n_nodes)
                  for j in range(i + 1, n_nodes))
    return NetGraph(nodes=nodes, links=links)


def random_graph(n_nodes: int, extra_edge_prob: float = 0.2,
                 seed: int = 0, latency_s: float = 0.0,
                 bandwidth_kbps: Optional[float] = None,
                 jitter_s: float = 0.0,
                 loss_prob: float = 0.0) -> NetGraph:
    """Connected random graph: a random spanning tree (guaranteeing
    connectivity) plus each remaining pair with ``extra_edge_prob``."""
    if n_nodes < 2:
        raise ValueError("random graph needs at least two nodes")
    if not 0.0 <= extra_edge_prob <= 1.0:
        raise ValueError("extra_edge_prob must be in [0, 1]")
    rng = substream(seed, TOPOGEN_STREAM_LABEL)
    nodes = tuple(f"n{i}" for i in range(n_nodes))
    edges: List[Tuple[str, str]] = []
    present = set()
    # Random spanning tree: each node links to a random earlier one.
    for i in range(1, n_nodes):
        j = rng.randrange(i)
        edges.append((nodes[j], nodes[i]))
        present.add((j, i))
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if (i, j) in present:
                continue
            if rng.random() < extra_edge_prob:
                edges.append((nodes[i], nodes[j]))
                present.add((i, j))
    links = tuple(_link(a, b, latency_s, bandwidth_kbps, jitter_s,
                        loss_prob) for a, b in edges)
    return NetGraph(nodes=nodes, links=links)


def fat_tree(k: int = 4, edge_latency_s: float = 0.0005,
             agg_latency_s: float = 0.001,
             core_latency_s: float = 0.002,
             bandwidth_kbps: Optional[float] = None,
             jitter_s: float = 0.0,
             loss_prob: float = 0.0) -> NetGraph:
    """A k-ary fat-tree (k even): ``(k/2)²`` cores, ``k`` pods of
    ``k/2`` aggregation + ``k/2`` edge switches; peers attach at the
    edge layer.  Latencies default to a datacenter-ish hierarchy."""
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be even and >= 2")
    half = k // 2
    cores = tuple(f"core{i}" for i in range(half * half))
    nodes: List[str] = list(cores)
    links: List[LinkSpec] = []
    edges_all: List[str] = []
    for pod in range(k):
        aggs = [f"p{pod}a{i}" for i in range(half)]
        edges = [f"p{pod}e{i}" for i in range(half)]
        nodes.extend(aggs)
        nodes.extend(edges)
        edges_all.extend(edges)
        for agg in aggs:
            for edge in edges:
                links.append(_link(edge, agg, edge_latency_s,
                                   bandwidth_kbps, jitter_s,
                                   loss_prob))
        # Aggregation switch i uplinks to core group i.
        for i, agg in enumerate(aggs):
            for j in range(half):
                core = cores[i * half + j]
                links.append(_link(agg, core,
                                   agg_latency_s + core_latency_s,
                                   bandwidth_kbps, jitter_s,
                                   loss_prob))
    return NetGraph(nodes=tuple(nodes), links=tuple(links),
                    attach=tuple(edges_all))


def multi_dc(latency_ms: Sequence[Sequence[float]],
             names: Optional[Sequence[str]] = None,
             bandwidth_kbps: Optional[float] = None,
             jitter_ms: float = 0.0,
             loss_prob: float = 0.0) -> NetGraph:
    """WAN of datacenters from a symmetric latency matrix (ms).

    ``latency_ms[i][j]`` is the one-way latency between DC ``i`` and
    ``j``; the diagonal is ignored.  Peers attach to the DCs
    round-robin, modelling a swarm spread across regions."""
    n = len(latency_ms)
    if n < 2:
        raise ValueError("multi_dc needs at least two datacenters")
    for row in latency_ms:
        if len(row) != n:
            raise ValueError("latency matrix must be square")
    if names is None:
        names = tuple(f"dc{i}" for i in range(n))
    elif len(names) != n:
        raise ValueError("names must match the matrix size")
    links = []
    for i in range(n):
        for j in range(i + 1, n):
            if latency_ms[i][j] != latency_ms[j][i]:
                raise ValueError(
                    f"latency matrix asymmetric at ({i}, {j})")
            links.append(_link(names[i], names[j],
                               latency_ms[i][j] / 1000.0,
                               bandwidth_kbps, jitter_ms / 1000.0,
                               loss_prob))
    return NetGraph(nodes=tuple(names), links=tuple(links))


#: Canonical 3-region WAN used by examples, tests and the net-smoke CI
#: job: a US/EU/APAC triangle with realistic one-way latencies.
DEFAULT_DC_MATRIX_MS = (
    (0.0, 40.0, 120.0),
    (40.0, 0.0, 90.0),
    (120.0, 90.0, 0.0),
)

GENERATORS = ("star", "mesh", "random", "fat_tree", "multi_dc")


def graph_from_spec(spec: Dict
                    ) -> Tuple[NetGraph, Optional[Dict[str, str]], float]:
    """Build ``(graph, placement, control_size_kb)`` from a JSON-able
    dict — the ``extra={"net": {...}}`` / CLI / sweep-manifest format.

    Keys: ``topology`` (one of :data:`GENERATORS`), ``nodes`` (count,
    where applicable), ``latency_ms``, ``jitter_ms``, ``loss``,
    ``bandwidth_kbps``, ``seed``/``edge_prob`` (random), ``k``
    (fat-tree), ``matrix_ms``/``names`` (multi-DC; defaults to
    :data:`DEFAULT_DC_MATRIX_MS`), plus pass-through ``placement`` and
    ``control_kb``.
    """
    spec = dict(spec)
    kind = spec.pop("topology", "star")
    placement = spec.pop("placement", None)
    control_kb = float(spec.pop("control_kb", 0.0))
    nodes = int(spec.pop("nodes", 4))
    latency_s = float(spec.pop("latency_ms", 0.0)) / 1000.0
    jitter_ms = float(spec.pop("jitter_ms", 0.0))
    loss = float(spec.pop("loss", 0.0))
    bandwidth = spec.pop("bandwidth_kbps", None)
    bandwidth = float(bandwidth) if bandwidth is not None else None
    common = dict(bandwidth_kbps=bandwidth,
                  jitter_s=jitter_ms / 1000.0, loss_prob=loss)
    if kind == "star":
        graph = star(nodes, latency_s=latency_s, **common)
    elif kind == "mesh":
        graph = full_mesh(nodes, latency_s=latency_s, **common)
    elif kind == "random":
        graph = random_graph(
            nodes, extra_edge_prob=float(spec.pop("edge_prob", 0.2)),
            seed=int(spec.pop("seed", 0)), latency_s=latency_s,
            **common)
    elif kind == "fat_tree":
        graph = fat_tree(k=int(spec.pop("k", 4)), **common)
    elif kind == "multi_dc":
        matrix = spec.pop("matrix_ms", DEFAULT_DC_MATRIX_MS)
        graph = multi_dc(matrix, names=spec.pop("names", None),
                         bandwidth_kbps=bandwidth,
                         jitter_ms=jitter_ms, loss_prob=loss)
    else:
        raise ValueError(
            f"unknown topology {kind!r}; expected one of "
            f"{', '.join(GENERATORS)}")
    unused = sorted(spec)
    if unused:
        raise ValueError(f"unused net spec keys: {', '.join(unused)}")
    return graph, placement, control_kb
