"""Neighbor topology.

An undirected graph of peer connections maintained the BitTorrent way
(Sec. II-A / IV-A): on arrival a peer receives up to 50 random swarm
members from the tracker and connects to them; peers keep at most 55
neighbors and ask the tracker for more when they drop below 30.

The topology is a swarm-wide object so departures can atomically sever
all of a peer's edges and notify its former neighbors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

DEFAULT_MAX_NEIGHBORS = 55
DEFAULT_REFILL_THRESHOLD = 30


class Topology:
    """Undirected neighbor graph with per-peer caps.

    Parameters
    ----------
    max_neighbors:
        Hard cap per peer (55 in the paper).  Free-riders mounting the
        large-view exploit register with ``unlimited=True`` to bypass
        the cap.
    """

    def __init__(self, max_neighbors: int = DEFAULT_MAX_NEIGHBORS,
                 refill_threshold: int = DEFAULT_REFILL_THRESHOLD):
        self.max_neighbors = max_neighbors
        self.refill_threshold = refill_threshold
        self._adj: Dict[str, Set[str]] = {}
        self._unlimited: Set[str] = set()
        # Memoized sorted neighbor lists: every deterministic iteration
        # over a neighborhood sorts it, and neighborhoods change far
        # less often than they are read (rechoke scans, payee
        # selection, rarest-first counting all read per event).
        self._sorted_cache: Dict[str, List[str]] = {}
        self.on_disconnect: Optional[Callable[[str, str], None]] = None
        # Edge-change notifications for the interest index.  Unlike
        # on_disconnect (a protocol-facing hook fired only from
        # remove_peer), these fire on *every* edge mutation, and
        # on_edge_removed fires *before* on_disconnect so the index is
        # consistent when disconnect handlers re-enter (refills, pumps).
        self.on_edge_added: Optional[Callable[[str, str], None]] = None
        self.on_edge_removed: Optional[Callable[[str, str], None]] = None

    def add_peer(self, peer_id: str, unlimited: bool = False) -> None:
        """Register a peer with no neighbors yet."""
        if peer_id in self._adj:
            raise ValueError(f"duplicate peer {peer_id!r}")
        self._adj[peer_id] = set()
        if unlimited:
            self._unlimited.add(peer_id)

    def remove_peer(self, peer_id: str) -> List[str]:
        """Remove a peer and all its edges; returns its ex-neighbors.

        Neighbors are notified in sorted order so simulations do not
        depend on per-process string hashing.
        """
        neighbors = sorted(self._adj.pop(peer_id, ()))
        self._sorted_cache.pop(peer_id, None)
        for other in neighbors:
            self._adj[other].discard(peer_id)
            self._sorted_cache.pop(other, None)
            if self.on_edge_removed is not None:
                self.on_edge_removed(peer_id, other)
            if self.on_disconnect is not None:
                self.on_disconnect(other, peer_id)
        self._unlimited.discard(peer_id)
        return neighbors

    def _cap(self, peer_id: str) -> int:
        if peer_id in self._unlimited:
            return 10 ** 9
        return self.max_neighbors

    def can_accept(self, peer_id: str) -> bool:
        """True while the peer has neighbor capacity left."""
        return len(self._adj[peer_id]) < self._cap(peer_id)

    def connect(self, a: str, b: str) -> bool:
        """Create the edge a—b if both sides have capacity.

        Returns True when the edge exists afterwards.
        """
        if a == b:
            return False
        if a not in self._adj or b not in self._adj:
            return False
        if b in self._adj[a]:
            return True
        if not (self.can_accept(a) and self.can_accept(b)):
            return False
        self._adj[a].add(b)
        self._adj[b].add(a)
        self._sorted_cache.pop(a, None)
        self._sorted_cache.pop(b, None)
        if self.on_edge_added is not None:
            self.on_edge_added(a, b)
        return True

    def disconnect(self, a: str, b: str) -> None:
        """Remove the edge a—b if present.

        Deliberately does *not* fire ``on_disconnect`` (snubbing a
        neighbor is not a departure), but does report the edge change.
        """
        # An edge counts as existing if *either* side records it:
        # asymmetric state (a half-removed edge, a peer mid-departure)
        # must still produce exactly one on_edge_removed so the
        # interest index and route caches don't drift.
        existed = (b in self._adj.get(a, ())
                   or a in self._adj.get(b, ()))
        if a in self._adj:
            self._adj[a].discard(b)
            self._sorted_cache.pop(a, None)
        if b in self._adj:
            self._adj[b].discard(a)
            self._sorted_cache.pop(b, None)
        if existed and self.on_edge_removed is not None:
            self.on_edge_removed(a, b)

    def neighbors(self, peer_id: str) -> Set[str]:
        """The peer's current neighbor set (live view, do not mutate)."""
        return self._adj[peer_id]

    def sorted_neighbors(self, peer_id: str) -> List[str]:
        """The peer's neighbor ids in sorted order (cached between
        edge changes; treat the returned list as read-only)."""
        cached = self._sorted_cache.get(peer_id)
        if cached is None:
            cached = sorted(self._adj[peer_id])
            self._sorted_cache[peer_id] = cached
        return cached

    def degree(self, peer_id: str) -> int:
        """Number of neighbors."""
        return len(self._adj[peer_id])

    def are_neighbors(self, a: str, b: str) -> bool:
        """True if the edge a—b exists."""
        return b in self._adj.get(a, ())

    def needs_refill(self, peer_id: str) -> bool:
        """True when the peer should ask the tracker for more members."""
        return len(self._adj[peer_id]) < self.refill_threshold

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._adj

    def __len__(self) -> int:
        return len(self._adj)
