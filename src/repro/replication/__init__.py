"""File replication over T-Chain — the paper's generality claim,
exercised on a second resource.

Section VI lists "file replication (and preservation)" among the
applications T-Chain should carry to.  Here the shared resource is
*storage*, not upload bandwidth: peers want off-site replicas of
their objects; storing someone's replica is the contribution, a
durable replica is the benefit, and free-riders are peers who want
replicas hosted but never host any.

The exchange maps one-to-one onto the file-sharing protocol
(:mod:`repro.core` is reused unchanged):

* the **donor** stores the requestor's object, but the replica starts
  *pending* — the donor withholds its storage commitment (the
  file-sharing analogue of withholding the decryption key), so the
  replica is not yet durable for the owner;
* the donor designates a **payee** whose object the requestor must
  store in turn (pay-it-forward across asymmetric storage needs);
* once the payee reports the reciprocation, the donor issues the
  commitment: the replica becomes durable, and the payee's new
  pending replica continues the chain.

A replica whose commitment never arrives is dropped at the donor's
next audit — a free-rider can fill other peers' disks with nothing.
"""

from repro.replication.node import NodeKind, StorageNode
from repro.replication.objects import ReplicaState, StoredObject
from repro.replication.system import (
    ReplicationConfig,
    ReplicationReport,
    ReplicationSystem,
)

__all__ = [
    "NodeKind",
    "ReplicaState",
    "ReplicationConfig",
    "ReplicationReport",
    "ReplicationSystem",
    "StorageNode",
    "StoredObject",
]
