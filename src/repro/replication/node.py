"""Storage nodes for the preservation extension."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.replication.objects import ReplicaState, StoredObject


class NodeKind(enum.Enum):
    """Behavioural class of a storage node."""

    COMPLIANT = "compliant"
    FREERIDER = "freerider"  # wants replicas, never stores any


@dataclass
class StorageNode:
    """One participant in the replication network.

    ``capacity_units`` bounds how many replica-units the node can
    host for others; its *own* objects live elsewhere (primary copy).
    """

    node_id: str
    capacity_units: int
    kind: NodeKind = NodeKind.COMPLIANT
    alive: bool = True
    #: objects this node owns (primary copies)
    objects: List[StoredObject] = field(default_factory=list)
    #: object_id -> state for replicas this node hosts for others
    hosted: Dict[int, ReplicaState] = field(default_factory=dict)
    #: counters for fairness accounting
    stored_for_others: int = 0
    commitments_received: int = 0

    @property
    def used_units(self) -> int:
        """Replica units currently hosted (pending or committed)."""
        return sum(1 for state in self.hosted.values()
                   if state is not ReplicaState.DROPPED)

    @property
    def free_units(self) -> int:
        """Remaining hosting capacity."""
        return max(0, self.capacity_units - self.used_units)

    def can_host(self) -> bool:
        """Willing and able to host one more replica?"""
        if not self.alive:
            return False
        if self.kind is NodeKind.FREERIDER:
            return False
        return self.free_units > 0

    def host(self, object_id: int) -> None:
        """Start hosting a replica (pending until committed)."""
        if object_id in self.hosted:
            raise ValueError(
                f"{self.node_id} already hosts object {object_id}")
        self.hosted[object_id] = ReplicaState.PENDING
        self.stored_for_others += 1

    def commit(self, object_id: int) -> None:
        """The exchange completed: the replica is durable."""
        if self.hosted.get(object_id) is ReplicaState.PENDING:
            self.hosted[object_id] = ReplicaState.COMMITTED

    def drop(self, object_id: int) -> None:
        """Stop hosting (audit of an uncommitted replica, or churn)."""
        self.hosted.pop(object_id, None)

    def hosted_ids(self, state: ReplicaState = None) -> Set[int]:
        """Object ids hosted, optionally filtered by state."""
        if state is None:
            return set(self.hosted)
        return {oid for oid, s in self.hosted.items() if s is state}

    def needs_replicas(self, target: int) -> List[StoredObject]:
        """Own objects below the target replication factor."""
        return [obj for obj in self.objects
                if obj.replication_factor() < target]
