"""Objects and replicas for the preservation extension."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Set


class ReplicaState(enum.Enum):
    """Lifecycle of one replica held at one node."""

    PENDING = "pending"      # stored, commitment withheld
    COMMITTED = "committed"  # durable: counts toward replication
    DROPPED = "dropped"      # audited out (no commitment arrived)


@dataclass
class StoredObject:
    """An object some owner wants preserved off-site.

    ``object_id`` doubles as the ledger's ``piece_index`` so the
    unmodified :class:`repro.core.exchange.ExchangeLedger` can referee
    replication exchanges.
    """

    object_id: int
    owner_id: str
    size_units: int = 1
    #: node id -> replica state for replicas of this object
    replicas: Dict[str, ReplicaState] = field(default_factory=dict)

    def committed_replicas(self) -> Set[str]:
        """Nodes durably holding this object."""
        return {node for node, state in self.replicas.items()
                if state is ReplicaState.COMMITTED}

    def replication_factor(self) -> int:
        """Number of committed off-site replicas."""
        return len(self.committed_replicas())

    def drop_at(self, node_id: str) -> None:
        """The node stopped holding the replica (failure or audit)."""
        self.replicas.pop(node_id, None)
