"""The replication network: T-Chain exchanges over storage.

:class:`ReplicationSystem` runs a population of storage nodes on the
discrete-event engine.  Owners periodically repair under-replicated
objects by finding a host; in **tchain** mode the host's commitment is
withheld until the owner reciprocates by hosting a replica for a
payee the host designates (the unmodified
:class:`~repro.core.exchange.ExchangeLedger` referees the exchange);
in the **altruistic** baseline hosts commit immediately.

Churn kills nodes (their hosted replicas vanish; their own objects
are lost unless a committed replica survives); replacements join
empty.  The measured quantities are the ones preservation systems
care about: object durability, committed replication factor, storage
fairness — and who gets them when free-riders are present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.chain import ChainRegistry
from repro.core.exchange import ExchangeLedger
from repro.core.transaction import Transaction, TransactionState
from repro.replication.node import NodeKind, StorageNode
from repro.replication.objects import ReplicaState, StoredObject
from repro.sim.engine import Simulator
from repro.sim.events import PeriodicTask


def _node_id(node: StorageNode) -> str:
    """Sort key for node lists (module-level so per-event candidate
    sorts don't rebuild a closure each call — SL303)."""
    return node.node_id


@dataclass
class ReplicationConfig:
    """Tunables of a replication run."""

    n_nodes: int = 24
    objects_per_node: int = 2
    capacity_units: int = 6
    target_replication: int = 2
    transfer_time_s: float = 5.0
    repair_interval_s: float = 20.0
    audit_interval_s: float = 60.0
    churn_interval_s: float = 40.0
    churn_kill_probability: float = 0.02
    duration_s: float = 600.0
    freerider_fraction: float = 0.0
    mode: str = "tchain"  # or "altruistic"
    seed: int = 0


@dataclass
class ReplicationReport:
    """Outcome of a run."""

    compliant_objects: int
    compliant_durable: int
    freerider_objects: int
    freerider_durable: int
    objects_lost: int
    mean_compliant_replication: float
    mean_freerider_replication: float
    storage_fairness: Dict[str, float] = field(default_factory=dict)

    @property
    def compliant_durability(self) -> float:
        """Fraction of compliant objects at/above one replica."""
        if self.compliant_objects == 0:
            return 0.0
        return self.compliant_durable / self.compliant_objects

    @property
    def freerider_durability(self) -> float:
        """Fraction of free-rider objects at/above one replica."""
        if self.freerider_objects == 0:
            return 0.0
        return self.freerider_durable / self.freerider_objects


class ReplicationSystem:
    """One replication network simulation."""

    def __init__(self, config: ReplicationConfig):
        if config.mode not in ("tchain", "altruistic"):
            raise ValueError(f"unknown mode {config.mode!r}")
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.ledger = ExchangeLedger(ChainRegistry())
        self.nodes: Dict[str, StorageNode] = {}
        self.objects: Dict[int, StoredObject] = {}
        self.objects_lost = 0
        self._next_object = 0
        self._next_node = 0
        #: owner id -> open transaction ids awaiting its reciprocation
        self._obligations: Dict[str, List[int]] = {}
        rng = self.sim.rng
        n_free = round(config.freerider_fraction * config.n_nodes)
        kinds = [NodeKind.FREERIDER] * n_free \
            + [NodeKind.COMPLIANT] * (config.n_nodes - n_free)
        rng.shuffle(kinds)
        for kind in kinds:
            self._spawn_node(kind)
        PeriodicTask(self.sim, config.repair_interval_s,
                     self._repair_round, first_delay=1.0)
        PeriodicTask(self.sim, config.audit_interval_s, self._audit)
        PeriodicTask(self.sim, config.churn_interval_s, self._churn)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _spawn_node(self, kind: NodeKind) -> StorageNode:
        self._next_node += 1
        node = StorageNode(node_id=f"N{self._next_node}",
                           capacity_units=self.config.capacity_units,
                           kind=kind)
        for _ in range(self.config.objects_per_node):
            obj = StoredObject(object_id=self._next_object,
                               owner_id=node.node_id)
            self._next_object += 1
            node.objects.append(obj)
            self.objects[obj.object_id] = obj
        self.nodes[node.node_id] = node
        return node

    def _alive_nodes(self) -> List[StorageNode]:
        return [n for n in self.nodes.values() if n.alive]

    # ------------------------------------------------------------------
    # Repair: owners seek hosts for under-replicated objects
    # ------------------------------------------------------------------
    def _repair_round(self) -> None:
        rng = self.sim.rng
        for node in sorted(self._alive_nodes(),
                           key=_node_id):
            for obj in node.needs_replicas(
                    self.config.target_replication):
                host = self._find_host(obj)
                if host is None:
                    continue
                if self.config.mode == "altruistic":
                    self._store_altruistically(host, obj)
                else:
                    self._store_tchain(host, node, obj)

    def _find_host(self, obj: StoredObject) -> Optional[StorageNode]:
        rng = self.sim.rng
        candidates = [
            n for n in self._alive_nodes()
            if n.node_id != obj.owner_id
            and obj.object_id not in n.hosted
            and n.can_host()
        ]
        if not candidates:
            return None
        candidates.sort(key=_node_id)
        return rng.choice(candidates)

    # ------------------------------------------------------------------
    # Altruistic baseline
    # ------------------------------------------------------------------
    def _store_altruistically(self, host: StorageNode,
                              obj: StoredObject) -> None:
        host.host(obj.object_id)
        obj.replicas[host.node_id] = ReplicaState.PENDING
        self.sim.schedule(self.config.transfer_time_s,
                          self._commit_replica, host.node_id,
                          obj.object_id)

    # ------------------------------------------------------------------
    # T-Chain exchange
    # ------------------------------------------------------------------
    def _store_tchain(self, host: StorageNode, owner: StorageNode,
                      obj: StoredObject) -> None:
        """Host stores the object; owner owes a reciprocation toward a
        payee (another owner with replication needs) chosen by the
        host."""
        payee = self._select_payee(host, owner)
        chain = self.ledger.begin_chain(host.node_id, False,
                                        self.sim.now)
        if payee is None:
            # termination analogue: nobody needs anything — commit
            # unconditionally
            tx, _ = self.ledger.create_transaction(
                chain, host.node_id, owner.node_id, None,
                obj.object_id, self.sim.now, encrypted=False)
            host.host(obj.object_id)
            obj.replicas[host.node_id] = ReplicaState.PENDING
            self.sim.schedule(self.config.transfer_time_s,
                              self._finish_unconditional,
                              tx.transaction_id, host.node_id,
                              obj.object_id)
            return
        tx, _ = self.ledger.create_transaction(
            chain, host.node_id, owner.node_id, payee.node_id,
            obj.object_id, self.sim.now)
        host.host(obj.object_id)
        obj.replicas[host.node_id] = ReplicaState.PENDING
        self.sim.schedule(self.config.transfer_time_s,
                          self._replica_stored, tx.transaction_id)

    def _select_payee(self, host: StorageNode,
                      owner: StorageNode) -> Optional[StorageNode]:
        rng = self.sim.rng
        candidates = [
            n for n in self._alive_nodes()
            if n.node_id not in (host.node_id, owner.node_id)
            and n.needs_replicas(self.config.target_replication)
        ]
        if host.needs_replicas(self.config.target_replication):
            return host  # direct reciprocity: host itself
        if not candidates:
            return None
        candidates.sort(key=_node_id)
        return rng.choice(candidates)

    def _replica_stored(self, transaction_id: int) -> None:
        """The host finished writing the replica; now the owner owes."""
        tx = self.ledger.get(transaction_id)
        if tx.state is not TransactionState.CREATED:
            return
        self.ledger.mark_delivered(transaction_id, self.sim.now)
        owner = self.nodes.get(tx.requestor_id)
        if owner is None or not owner.alive:
            return
        self._obligations.setdefault(owner.node_id, []).append(
            transaction_id)
        self.sim.call_now(self._fulfil_obligations, owner.node_id)

    def _fulfil_obligations(self, owner_id: str) -> None:
        owner = self.nodes.get(owner_id)
        if owner is None or not owner.alive:
            return
        pending = self._obligations.get(owner_id, [])
        for tx_id in list(pending):
            tx = self.ledger.get(tx_id)
            if tx.state is not TransactionState.DELIVERED:
                pending.remove(tx_id)
                continue
            if owner.kind is NodeKind.FREERIDER:
                continue  # never reciprocates; replica stays pending
            payee = self.nodes.get(tx.payee_id)
            if payee is None or not payee.alive:
                continue
            under = payee.needs_replicas(
                self.config.target_replication)
            under = [o for o in under
                     if o.object_id not in owner.hosted
                     and o.owner_id != owner.node_id]
            if not under or owner.free_units <= 0:
                continue
            target_obj = under[0]
            next_payee = self._select_payee(owner, payee)
            chain = self.ledger.registry.get(tx.chain_id)
            if not chain.active:
                self.ledger.registry.revive(chain.chain_id)
            if next_payee is None:
                next_tx, _ = self.ledger.create_transaction(
                    chain, owner.node_id, payee.node_id, None,
                    target_obj.object_id, self.sim.now,
                    reciprocates=tx_id, encrypted=False)
            else:
                next_tx, _ = self.ledger.create_transaction(
                    chain, owner.node_id, payee.node_id,
                    next_payee.node_id, target_obj.object_id,
                    self.sim.now, reciprocates=tx_id)
            owner.host(target_obj.object_id)
            target_obj.replicas[owner.node_id] = ReplicaState.PENDING
            pending.remove(tx_id)
            self.sim.schedule(self.config.transfer_time_s,
                              self._reciprocation_stored,
                              next_tx.transaction_id)

    def _reciprocation_stored(self, transaction_id: int) -> None:
        tx = self.ledger.get(transaction_id)
        if tx.state is not TransactionState.CREATED:
            return
        prev = self.ledger.mark_delivered(transaction_id, self.sim.now)
        if not tx.encrypted:
            # unconditional store completes immediately
            self._commit_replica(tx.donor_id, tx.piece_index)
        else:
            beneficiary = self.nodes.get(tx.requestor_id)
            if beneficiary is not None and beneficiary.alive:
                self._obligations.setdefault(
                    tx.requestor_id, []).append(transaction_id)
                self.sim.call_now(self._fulfil_obligations,
                                  tx.requestor_id)
        if prev is not None:
            # payee's report reaches the original host: commitment
            self.ledger.report_reciprocation(prev.transaction_id,
                                             self.sim.now)
            self.ledger.release_key(prev.transaction_id, self.sim.now)
            self._commit_replica(prev.donor_id, prev.piece_index)

    def _finish_unconditional(self, transaction_id: int,
                              host_id: str, object_id: int) -> None:
        tx = self.ledger.get(transaction_id)
        if tx.state is TransactionState.CREATED:
            self.ledger.mark_delivered(transaction_id, self.sim.now)
        self._commit_replica(host_id, object_id)

    def _commit_replica(self, host_id: str, object_id: int) -> None:
        host = self.nodes.get(host_id)
        obj = self.objects.get(object_id)
        if host is None or obj is None or not host.alive:
            return
        if obj.replicas.get(host_id) is ReplicaState.PENDING:
            host.commit(object_id)
            host.commitments_received += 1
            obj.replicas[host_id] = ReplicaState.COMMITTED

    # ------------------------------------------------------------------
    # Audits and churn
    # ------------------------------------------------------------------
    def _audit(self) -> None:
        """Hosts drop replicas whose commitment never came: storage
        reclaimed from non-reciprocating owners."""
        for node in self._alive_nodes():
            for object_id in list(node.hosted_ids(
                    ReplicaState.PENDING)):
                node.drop(object_id)
                obj = self.objects.get(object_id)
                if obj is not None:
                    obj.drop_at(node.node_id)

    def _churn(self) -> None:
        rng = self.sim.rng
        for node in sorted(self._alive_nodes(),
                           key=_node_id):
            if rng.random() >= self.config.churn_kill_probability:
                continue
            node.alive = False
            # hosted replicas vanish
            for object_id in list(node.hosted):
                self.objects[object_id].drop_at(node.node_id)
                node.drop(object_id)
            # its own objects survive only through committed replicas
            for obj in node.objects:
                if obj.replication_factor() == 0:
                    self.objects_lost += 1
                    del self.objects[obj.object_id]
                    # reclaim any pending replicas of the lost object
                    for host_id in list(obj.replicas):
                        holder = self.nodes.get(host_id)
                        if holder is not None:
                            holder.drop(obj.object_id)
            node.objects = [o for o in node.objects
                            if o.object_id in self.objects]
            self._obligations.pop(node.node_id, None)
            self._spawn_node(node.kind)

    # ------------------------------------------------------------------
    # Run + report
    # ------------------------------------------------------------------
    def run(self) -> ReplicationReport:
        """Run for the configured duration and report."""
        self.sim.run(until=self.config.duration_s)
        return self.report()

    def report(self) -> ReplicationReport:
        """Current durability/fairness snapshot."""
        compliant_objs, freerider_objs = [], []
        for obj in self.objects.values():
            owner = self.nodes.get(obj.owner_id)
            if owner is None:
                continue
            if owner.kind is NodeKind.FREERIDER:
                freerider_objs.append(obj)
            else:
                compliant_objs.append(obj)

        def durable(objs):
            return sum(1 for o in objs if o.replication_factor() >= 1)

        def mean_rf(objs):
            if not objs:
                return 0.0
            return sum(o.replication_factor()
                       for o in objs) / len(objs)

        fairness = {}
        for node in self._alive_nodes():
            hosted_for_me = sum(
                1 for obj in node.objects
                for state in obj.replicas.values()
                if state is ReplicaState.COMMITTED)
            fairness[node.node_id] = (
                hosted_for_me / max(1, node.stored_for_others))
        return ReplicationReport(
            compliant_objects=len(compliant_objs),
            compliant_durable=durable(compliant_objs),
            freerider_objects=len(freerider_objs),
            freerider_durable=durable(freerider_objs),
            objects_lost=self.objects_lost,
            mean_compliant_replication=mean_rf(compliant_objs),
            mean_freerider_replication=mean_rf(freerider_objs),
            storage_fairness=fairness,
        )
