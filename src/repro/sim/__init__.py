"""Discrete-event simulation engine.

This package is the bottom-most substrate of the reproduction: a small,
deterministic, seeded discrete-event simulator in the style of classic
network simulators.  Everything above it (the bandwidth model, the
BitTorrent swarm, the T-Chain protocol) is driven by :class:`Simulator`.

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator(seed=1)
>>> fired = []
>>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
>>> sim.run()
>>> fired
[5.0]
"""

from repro.sim.engine import EventHandle, Simulator, SimulatorError
from repro.sim.events import PeriodicTask
from repro.sim.randomness import SeedSequence

__all__ = [
    "EventHandle",
    "PeriodicTask",
    "SeedSequence",
    "Simulator",
    "SimulatorError",
]
