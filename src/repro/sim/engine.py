"""The discrete-event simulator core.

The engine keeps a heap of ``(time, sequence, handle)`` entries.  The
sequence number makes event ordering fully deterministic: two events
scheduled for the same instant fire in scheduling order, regardless of
heap internals.  Cancellation is O(1) (lazy deletion).

All randomness in a simulation flows through :attr:`Simulator.rng`, a
single seeded ``random.Random``; running the same scenario with the same
seed therefore reproduces the same event trace bit-for-bit.
"""

from __future__ import annotations

import heapq
from random import Random
from typing import Any, Callable, List, Optional


class SimulatorError(RuntimeError):
    """Raised on simulator misuse (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled callback; may be cancelled before it fires.

    Handles are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  They are single-shot: once fired or
    cancelled they are inert.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events do not pin object graphs
        # while they wait to be popped from the heap.
        self.callback = _noop
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled and self.callback is not _noop

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, seq={self.seq}, {state})"


def _noop() -> None:
    """Placeholder callback installed when a handle is cancelled."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Every
        stochastic decision made by the layers above (peer selection,
        arrival times, bandwidth draws, ...) must use :attr:`rng` so
        that runs are reproducible.
    sanitize:
        Attach a :class:`repro.devtools.sanitizer.SimulationSanitizer`
        that checks heap-time monotonicity, bandwidth/piece
        conservation and the fair-exchange invariant on every step,
        raising ``SanitizerError`` on violation.  Off by default (the
        checks cost a few percent of run time).
    """

    def __init__(self, seed: int = 0, sanitize: bool = False):
        self.now: float = 0.0
        self.rng = Random(seed)
        self.seed = seed
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._observers: List[Callable[[EventHandle], None]] = []
        self.sanitizer = None
        if sanitize:
            from repro.devtools.sanitizer import SimulationSanitizer
            self.sanitizer = SimulationSanitizer(self)

    def add_observer(self,
                     observer: Callable[[EventHandle], None]) -> None:
        """Register a callback invoked with every event handle just
        before it fires (trace capture, debugging, determinism
        harnesses).  Observers must not mutate simulation state."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` from now."""
        if delay < 0:
            raise SimulatorError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulatorError(
                f"cannot schedule at {time!r}, now is {self.now!r}")
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(handle)
        heapq.heappush(self._heap, handle)
        return handle

    def call_now(self, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule a callback for the current instant (after the
        currently-firing event completes)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when the event queue is exhausted.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if self.sanitizer is not None:
                self.sanitizer.on_event(handle)
            for observer in self._observers:
                observer(handle)
            self.now = handle.time
            callback, args = handle.callback, handle.args
            handle.cancel()  # mark consumed before user code runs
            callback(*args)
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier.
        """
        if self._running:
            raise SimulatorError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for h in self._heap if not h.cancelled)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Simulator(now={self.now:.6g}, pending="
                f"{self.pending_events}, fired={self._events_fired})")
