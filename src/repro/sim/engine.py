"""The discrete-event simulator core.

The engine keeps a heap of ``(time, sequence, handle)`` entries.  The
sequence number makes event ordering fully deterministic: two events
scheduled for the same instant fire in scheduling order, regardless of
heap internals — and because sequence numbers are unique, a heap
comparison never reaches the handle, so every sift is a C-speed tuple
comparison rather than a Python ``__lt__`` call.

Cancellation is O(1) (lazy deletion), and the engine *compacts* the
heap when dead entries dominate it: timer-churn-heavy workloads
(T-Chain retransmit timers are re-armed on every ack) would otherwise
pin thousands of cancelled handles until their nominal pop time,
inflating every ``heappush``/``heappop`` by log of the dead weight and
holding the memory hostage.  Compaction rebuilds the heap from live
entries only; pop order is a pure function of the ``(time, seq)``
total order, so a compaction can never change the event trace (the
determinism harness asserts exactly that by diffing traces with
compaction on and off).

All randomness in a simulation flows through :attr:`Simulator.rng`, a
single seeded ``random.Random``; running the same scenario with the same
seed therefore reproduces the same event trace bit-for-bit.
"""

from __future__ import annotations

import ast
import gc
import heapq
import json
import os
import sys
import tracemalloc
from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Compaction triggers when at least this many cancelled entries sit in
#: the heap...
COMPACT_MIN_DEAD = 256
#: ...and they outnumber the live ones (>50 % of the heap is dead).
COMPACT_DEAD_FRACTION = 0.5

#: Upper bound on the :class:`EventHandle` free-list; beyond this,
#: consumed handles are left to the garbage collector (the pool exists
#: to absorb steady-state churn, not peak backlog).
POOL_MAX = 1024


class SimulatorError(RuntimeError):
    """Raised on simulator misuse (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled callback; may be cancelled before it fires.

    Handles are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  They are single-shot: once fired or
    cancelled they are inert.  The two terminal states look the same to
    :attr:`pending` (both clear the callback); :attr:`fired`
    distinguishes a consumed event from a cancelled one, which the
    runtime race reporter and post-mortem tooling rely on.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "fired", "sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin object graphs
        # while they wait to be popped (or compacted) from the heap.
        self.callback = _noop
        self.args = ()
        if self.sim is not None:
            self.sim._on_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled and self.callback is not _noop

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return f"EventHandle(t={self.time:.6g}, seq={self.seq}, {state})"


def _noop() -> None:
    """Placeholder callback installed when a handle is cancelled."""


class AllocProfile:
    """Per-event-type allocation profile (``Simulator(profile="alloc")``).

    For every fired event the engine records the delta of
    ``tracemalloc``'s traced bytes and of the interpreter's live
    allocation-block count across the callback, keyed by the
    callback's ``__qualname__`` — the runtime ground truth the static
    simheat audit (SL301–SL304, docs/DEVTOOLS.md) is validated
    against.  Deltas can be negative (a callback that frees more than
    it allocates); sums are kept raw.

    The profile starts ``tracemalloc`` if it is not already tracing
    and remembers whether it owns the tracer; call :meth:`close` when
    done to stop an owned tracer (profiling roughly doubles event
    dispatch cost, which is why it is opt-in).

    The cyclic garbage collector is paused for the lifetime of the
    profile (restored by :meth:`close`): an opportunistic collection
    inside a measured callback frees an arbitrary batch of *other*
    events' garbage, turning that one delta hugely negative and making
    two runs incomparable.  Refcount frees — the overwhelming majority
    in the simulator — are unaffected.
    """

    __slots__ = ("by_event", "_owns_tracing", "_owns_gc", "_closed")

    def __init__(self) -> None:
        #: qualname -> [events fired, traced bytes delta, block delta]
        self.by_event: Dict[str, List[int]] = {}
        self._owns_tracing = not tracemalloc.is_tracing()
        self._owns_gc = gc.isenabled()
        self._closed = False
        if self._owns_tracing:
            tracemalloc.start()
        gc.disable()

    def record(self, name: str, d_bytes: int, d_blocks: int) -> None:
        row = self.by_event.get(name)
        if row is None:
            row = self.by_event[name] = [0, 0, 0]
        row[0] += 1
        row[1] += d_bytes
        row[2] += d_blocks

    @property
    def events(self) -> int:
        return sum(row[0] for row in self.by_event.values())

    @property
    def traced_bytes(self) -> int:
        return sum(row[1] for row in self.by_event.values())

    @property
    def blocks(self) -> int:
        return sum(row[2] for row in self.by_event.values())

    def bytes_per_event(self) -> float:
        events = self.events
        return self.traced_bytes / events if events else 0.0

    def allocs_per_event(self) -> float:
        events = self.events
        return self.blocks / events if events else 0.0

    def summary(self) -> Dict[str, object]:
        """JSON-friendly totals plus the per-event-type breakdown."""
        return {
            "events": self.events,
            "traced_bytes": self.traced_bytes,
            "blocks": self.blocks,
            "bytes_per_event": round(self.bytes_per_event(), 3),
            "allocs_per_event": round(self.allocs_per_event(), 3),
            "by_event": {name: {"events": row[0], "bytes": row[1],
                                "blocks": row[2]}
                         for name, row in sorted(self.by_event.items())},
        }

    def close(self) -> None:
        """Stop an owned tracemalloc tracer and restore the cyclic
        collector if it was enabled before profiling.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        if self._owns_gc:
            gc.enable()


#: One heap entry.  ``seq`` is unique, so tuple comparison terminates
#: there and the handle itself is never compared.
_Entry = Tuple[float, int, EventHandle]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.  Every
        stochastic decision made by the layers above (peer selection,
        arrival times, bandwidth draws, ...) must use :attr:`rng` so
        that runs are reproducible.
    sanitize:
        Attach a :class:`repro.devtools.sanitizer.SimulationSanitizer`
        that checks heap-time monotonicity, bandwidth/piece
        conservation and the fair-exchange invariant on every step,
        raising ``SanitizerError`` on violation.  Off by default (the
        checks cost a few percent of run time).  Pass the string
        ``"races"`` to additionally attach a
        :class:`repro.devtools.sanitizer.RaceReporter` that records
        per-event field-level read/write footprints within each
        timestamp batch and reports same-instant conflicting pairs
        (the dynamic counterpart of ``simlint``'s SL2xx rules).
    compact:
        Enable lazy-deletion heap compaction (default on; the
        determinism harness runs with it off to prove traces are
        unaffected — see docs/PERF.md).
    profile:
        Pass the string ``"alloc"`` to attach an :class:`AllocProfile`
        recording per-event-type allocation deltas (tracemalloc bytes
        + interpreter block counts) on every fired event — the runtime
        validation side of the simheat SL3xx static audit.  Off by
        default; profiling forces the instrumented step path.
    pool_events:
        Recycle consumed :class:`EventHandle` objects through a
        bounded free-list (default on).  A handle is only pooled when
        nothing outside the engine still references it (refcount
        guard), so handles callers retain for ``cancel()``/state
        checks are never reused under them.  Pop order is untouched —
        the alloc-audit harness asserts bit-identical traces with the
        pool on and off.
    """

    def __init__(self, seed: int = 0, sanitize: object = False,
                 compact: bool = True, profile: object = False,
                 pool_events: bool = True):
        if isinstance(sanitize, str) and sanitize != "races":
            raise SimulatorError(
                f"unknown sanitize mode {sanitize!r}; expected a bool "
                f"or the string 'races'")
        if profile not in (False, None, "alloc"):
            raise SimulatorError(
                f"unknown profile mode {profile!r}; expected False or "
                f"the string 'alloc'")
        self.now: float = 0.0
        self.rng = Random(seed)
        self.seed = seed
        self._heap: List[_Entry] = []
        self._seq = 0
        self._events_fired = 0
        self._cancelled_in_heap = 0
        self._compact_enabled = compact
        self._compactions = 0
        self._running = False
        self._observers: List[Callable[[EventHandle], None]] = []
        self._pool: Optional[List[EventHandle]] = \
            [] if pool_events else None
        self.sanitizer = None
        self.races = None
        self.profile: Optional[AllocProfile] = \
            AllocProfile() if profile == "alloc" else None
        if sanitize:
            from repro.devtools.sanitizer import SimulationSanitizer
            self.sanitizer = SimulationSanitizer(self)
            if sanitize == "races":
                from repro.devtools.sanitizer import RaceReporter
                self.races = RaceReporter(self)

    def add_observer(self,
                     observer: Callable[[EventHandle], None]) -> None:
        """Register a callback invoked with every event handle just
        before it fires (trace capture, debugging, determinism
        harnesses).  Observers must not mutate simulation state."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` from now.

        Duplicates :meth:`schedule_at`'s body rather than delegating:
        this is the hottest scheduling entry point, and ``delay >= 0``
        already guarantees the past-time check there can never fire.
        """
        if delay < 0:
            raise SimulatorError(f"negative delay: {delay!r}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            handle.fired = False
        else:
            handle = EventHandle(time, seq, callback, args, self)  # simlint: disable=SL304 -- this IS the pool: miss path when the free-list is empty or disabled
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(handle)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulatorError(
                f"cannot schedule at {time!r}, now is {self.now!r}")
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            handle.fired = False
        else:
            handle = EventHandle(time, seq, callback, args, self)
        if self.sanitizer is not None:
            self.sanitizer.on_schedule(handle)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def call_now(self, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule a callback for the current instant (after the
        currently-firing event completes)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        """A handle still in the heap was cancelled; maybe compact."""
        dead = self._cancelled_in_heap + 1
        self._cancelled_in_heap = dead
        if (dead >= COMPACT_MIN_DEAD and self._compact_enabled
                and dead > len(self._heap) * COMPACT_DEAD_FRACTION):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live entries only.

        Safe at any point: heap pop order is fully determined by the
        ``(time, seq)`` total order, so dropping dead entries and
        re-heapifying cannot reorder the live ones.  The rebuild is
        in place (slice assignment) because the run loop holds a local
        alias to the heap list across callbacks.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``False`` when no pending event remains (the heap is
        empty or holds only cancelled handles).
        """
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)[2]
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if self.sanitizer is not None:
                self.sanitizer.on_event(handle)
            races = self.races
            if races is not None:
                # Must see the handle before its callback is cleared so
                # the conflict provenance can name it.
                races.on_event_begin(handle)
            if self._observers:
                for observer in self._observers:
                    observer(handle)
            self.now = handle.time
            callback, args = handle.callback, handle.args
            # Mark consumed before user code runs (no cancellation
            # bookkeeping: the entry is already off the heap).
            handle.cancelled = True
            handle.callback = _noop
            handle.args = ()
            handle.fired = True
            profile = self.profile
            if profile is not None:
                name = getattr(callback, "__qualname__", repr(callback))
                before_bytes = tracemalloc.get_traced_memory()[0]
                before_blocks = sys.getallocatedblocks()
                callback(*args)
                profile.record(
                    name,
                    tracemalloc.get_traced_memory()[0] - before_bytes,
                    sys.getallocatedblocks() - before_blocks)
            else:
                callback(*args)
            if races is not None:
                races.on_event_end()
            elif self.sanitizer is None and self._pool is not None \
                    and len(self._pool) < POOL_MAX \
                    and sys.getrefcount(handle) == 2:
                # Only the local name + getrefcount's argument see the
                # handle: nothing can observe the reuse.  (Sanitizer /
                # race-reporter runs keep identity for post-mortems.)
                self._pool.append(handle)
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired.

        ``max_events`` counts events that actually fired; skipping
        cancelled handles does not consume the budget.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if
        the last event fires earlier.
        """
        if self._running:
            raise SimulatorError("run() is not reentrant")
        self._running = True
        fired = 0
        fast_fired = 0  # _events_fired owed by the inlined fast path
        heap = self._heap
        heappop = heapq.heappop
        observers = self._observers
        pool = self._pool
        getrefcount = sys.getrefcount
        try:
            while heap:
                head = heap[0]
                handle = head[2]
                if handle.cancelled:
                    heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and head[0] > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                if self.sanitizer is None and not observers \
                        and self.profile is None:
                    # Fast path: `head` is the verified-live heap top,
                    # so pop and fire inline, skipping instrumentation
                    # dispatch and the step() re-scan.
                    heappop(heap)
                    self.now = head[0]
                    callback, args = handle.callback, handle.args
                    handle.cancelled = True
                    handle.callback = _noop
                    handle.args = ()
                    handle.fired = True
                    callback(*args)
                    fast_fired += 1
                    fired += 1
                    if pool is not None and len(pool) < POOL_MAX \
                            and getrefcount(handle) == 3:
                        # `head`'s tuple slot + the local name +
                        # getrefcount's argument: no caller kept the
                        # handle, so reuse is unobservable.
                        pool.append(handle)
                elif self.step():
                    fired += 1
        finally:
            self._events_fired += fast_fired
            self._running = False
        if until is not None and self.now < until:
            self.now = until

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when drained.

        Pops dead (cancelled) heap heads as a side effect, so callers
        driving their own step loop never stall on lazy-deleted
        entries.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            if head[2].cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            return head[0]
        return None

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events (O(1): the
        engine maintains a count of dead entries awaiting lazy
        deletion instead of scanning the heap)."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def compactions(self) -> int:
        """Heap compactions performed so far (perf introspection)."""
        return self._compactions

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Simulator(now={self.now:.6g}, pending="
                f"{self.pending_events}, fired={self._events_fired})")


# ----------------------------------------------------------------------
# Timer coalescing (ROADMAP item 1): one batch timer for N same-interval
# handlers, gated by the SL203 do-not-coalesce inventory.
# ----------------------------------------------------------------------

class HerdMember:
    """One handler registered with a :class:`TimerHerd`.

    API-compatible with the subset of
    :class:`repro.sim.events.PeriodicTask` the call sites use
    (``stop()``, ``running``, ``fire_count``), so
    ``swarm.periodic(...) or PeriodicTask(...)`` yields a uniform
    handle either way.
    """

    __slots__ = ("herd", "key", "callback", "fire_count", "_stopped")

    def __init__(self, herd: "TimerHerd", key: str,
                 callback: Callable[[], Any]):
        self.herd = herd
        self.key = key
        self.callback = callback
        self.fire_count = 0
        self._stopped = False

    def stop(self) -> None:
        """Deregister from the herd; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self.herd._remove(self.key)

    @property
    def running(self) -> bool:
        return not self._stopped


class TimerHerd:
    """N same-interval periodic handlers behind ONE heap entry.

    Every ``interval`` the herd fires its members in deterministic
    sorted-key order (keys are caller-chosen strings, typically peer
    ids), replacing N ``PeriodicTask`` heap entries — and their N
    pushes/pops per period — with one.  Members added mid-cycle join
    the herd's phase: their first firing is the herd's next tick, not
    ``interval`` after registration.  That phase shift is why
    coalescing is an opt-in optimization
    (``extra={"coalesce_timers": True}``), not a trace-neutral default,
    and why only handlers *absent* from the SL203 same-instant
    order-dependence inventory may join (see :class:`CoalesceGate`).

    The herd stops its underlying timer when the last member leaves
    (so it cannot keep an otherwise-drained simulation alive) and
    restarts it on the next ``add``.
    """

    def __init__(self, sim: Simulator, interval: float,
                 first_delay: Optional[float] = None):
        if interval <= 0:
            raise ValueError(
                f"interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.first_delay = first_delay
        self._members: Dict[str, HerdMember] = {}
        self._handle: Optional[EventHandle] = None

    def add(self, key: str, callback: Callable[[], Any]) -> HerdMember:
        """Register a handler under ``key`` (must be unique)."""
        if key in self._members:
            raise SimulatorError(f"duplicate herd key {key!r}")
        member = HerdMember(self, key, callback)
        self._members[key] = member
        if self._handle is None:
            delay = (self.interval if self.first_delay is None
                     else self.first_delay)
            self._handle = self.sim.schedule(delay, self._fire)
        return member

    def _remove(self, key: str) -> None:
        self._members.pop(key, None)
        if not self._members and self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        # Sorted-key order makes the batch deterministic regardless of
        # registration order; the snapshot list tolerates members
        # stopping (their own or each other) mid-batch.
        for key in sorted(self._members):
            member = self._members.get(key)
            if member is not None and not member._stopped:
                member.fire_count += 1
                member.callback()
        if self._members:
            self._handle = self.sim.schedule(self.interval, self._fire)
        else:
            self._handle = None

    @property
    def size(self) -> int:
        """Current member count."""
        return len(self._members)


class CoalesceGate:
    """Decides which periodic handlers may join a :class:`TimerHerd`.

    The authority is the SL203 inventory in ``simlint-baseline.json``:
    every fingerprint ``SL203:<path>:<line>`` names a ``PeriodicTask``
    construction site whose handler simrace *proved unsafe to
    coalesce* (same-instant effects do not commute, see
    docs/DEVTOOLS.md).  The gate parses each flagged file and extracts
    the callback name at the flagged call, then refuses any callback
    whose ``__name__`` and defining file match an entry.  Failure
    modes all land conservative: a missing or unreadable baseline
    refuses everything, and an entry whose callback cannot be resolved
    refuses every callback defined in that file.
    """

    REFUSE_ALL = object()  #: sentinel name matching any callback

    def __init__(self, entries: Optional[List[Tuple[str, object]]],
                 refuse_all: bool = False):
        #: list of (posix path suffix, callback name | REFUSE_ALL)
        self._entries = entries or []
        self._refuse_all = refuse_all or entries is None

    @classmethod
    def from_baseline(cls, path: str) -> "CoalesceGate":
        """Build a gate from a simlint baseline file.

        Relative fingerprint paths are resolved against the baseline's
        own directory (the repo root for the checked-in file).
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            fingerprints = data["fingerprints"]
        except (OSError, ValueError, KeyError, TypeError):
            return cls(None, refuse_all=True)
        base_dir = os.path.dirname(os.path.abspath(path))
        entries: List[Tuple[str, object]] = []
        by_file: Dict[str, List[int]] = {}
        for fp in fingerprints:
            parts = str(fp).split(":")
            if len(parts) != 3 or parts[0] != "SL203":
                continue
            try:
                by_file.setdefault(parts[1], []).append(int(parts[2]))
            except ValueError:
                entries.append((parts[1], cls.REFUSE_ALL))
        for rel, lines in by_file.items():
            rel_posix = rel.replace(os.sep, "/")
            names = _callback_names_at(
                os.path.join(base_dir, *rel.split("/")), lines)
            if names is None:
                entries.append((rel_posix, cls.REFUSE_ALL))
            else:
                for name in names:
                    entries.append((rel_posix, name))
        return cls(entries)

    def permits(self, callback: Callable[..., Any]) -> bool:
        """True when ``callback`` is absent from the SL203 inventory."""
        if self._refuse_all:
            return False
        func = getattr(callback, "__func__", callback)
        code = getattr(func, "__code__", None)
        filename = "" if code is None \
            else code.co_filename.replace(os.sep, "/")
        name = getattr(callback, "__name__", None)
        for path, entry_name in self._entries:
            if not filename.endswith(path):
                continue
            if entry_name is self.REFUSE_ALL or entry_name == name:
                return False
        return True


def _callback_names_at(filename: str,
                       lines: List[int]) -> Optional[List[str]]:
    """Names of the ``PeriodicTask(...)`` callbacks constructed at the
    given source lines, or ``None`` when the file cannot be analyzed
    (the caller then refuses the whole file)."""
    try:
        with open(filename, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read())
    except (OSError, SyntaxError):
        return None
    wanted = set(lines)
    names: List[str] = []
    found = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if func_name != "PeriodicTask":
            continue
        end = getattr(node, "end_lineno", node.lineno)
        hits = [ln for ln in wanted if node.lineno <= ln <= end]
        if not hits:
            continue
        callback = None
        if len(node.args) >= 3:
            callback = node.args[2]
        else:
            for kw in node.keywords:
                if kw.arg == "callback":
                    callback = kw.value
        if isinstance(callback, ast.Attribute):
            names.append(callback.attr)
        elif isinstance(callback, ast.Name):
            names.append(callback.id)
        elif isinstance(callback, ast.Lambda):
            names.append("<lambda>")
        else:
            return None
        found.update(hits)
    if found != wanted:
        # A flagged line we could not pin to a PeriodicTask call —
        # the file drifted from the baseline; be conservative.
        return None
    return names
