"""Reusable event helpers built on the core engine.

The simulator itself only knows about one-shot callbacks.  Protocol
layers frequently need repeating timers (BitTorrent's 10-second rechoke,
T-Chain's chain-statistics sampler); :class:`PeriodicTask` provides that
without each layer reinventing rescheduling logic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class PeriodicTask:
    """A repeating timer.

    Calls ``callback()`` every ``interval`` simulated seconds until
    :meth:`stop` is called.  The first invocation happens after
    ``first_delay`` (defaults to ``interval``).

    The callback may call :meth:`stop` on its own task; the pending
    reschedule is cancelled cleanly.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], Any],
                 first_delay: Optional[float] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.fire_count = 0
        self._stopped = False
        delay = interval if first_delay is None else first_delay
        self._handle: Optional[EventHandle] = sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self.callback()
        if not self._stopped:
            self._handle = self.sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the timer; idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped
